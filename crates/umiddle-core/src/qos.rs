//! QoS control for message paths: translation buffers and rate limiting.
//!
//! The paper's §5.3 observes that when a path's consumer is slower than its
//! producer (a Java RMI sink behind a MediaBroker source, or any Bluetooth
//! device), data "accumulates in the uMiddle's translation buffer", and
//! concludes that "the universal interoperability layer should provide some
//! QoS control mechanism" — explicitly left as future work (§7). This
//! module implements that mechanism: each connection owns a
//! [`TranslationBuffer`] with a capacity, an overflow [`QosPolicy`], and an
//! optional token-bucket rate limit. The E5 ablation benchmark measures the
//! buffer-occupancy / drop-rate trade-off it buys.

use std::collections::VecDeque;
use std::fmt;

use simnet::{SimDuration, SimTime};

use crate::message::UMessage;

/// What to do when a translation buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Grow without bound (the paper's original behaviour — what made QoS
    /// necessary).
    #[default]
    Unbounded,
    /// Drop the newly arriving message.
    DropNewest,
    /// Drop the oldest queued message to make room (keeps the stream
    /// fresh — right for live media).
    DropOldest,
}

impl fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OverflowPolicy::Unbounded => "unbounded",
            OverflowPolicy::DropNewest => "drop-newest",
            OverflowPolicy::DropOldest => "drop-oldest",
        })
    }
}

/// Token-bucket rate limiter configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained rate in bytes per second.
    pub bytes_per_second: u64,
    /// Burst capacity in bytes.
    pub burst_bytes: u64,
}

/// Per-connection QoS configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QosPolicy {
    /// Buffer capacity in bytes; `None` means unbounded.
    pub capacity_bytes: Option<usize>,
    /// Overflow behaviour when `capacity_bytes` is exceeded.
    pub overflow: OverflowPolicy,
    /// Optional token-bucket limit on the drain rate.
    pub rate: Option<RateLimit>,
}

impl QosPolicy {
    /// The paper's original behaviour: no QoS at all.
    pub fn unbounded() -> QosPolicy {
        QosPolicy::default()
    }

    /// A bounded buffer that drops the oldest messages on overflow.
    pub fn bounded_drop_oldest(capacity_bytes: usize) -> QosPolicy {
        QosPolicy {
            capacity_bytes: Some(capacity_bytes),
            overflow: OverflowPolicy::DropOldest,
            rate: None,
        }
    }

    /// A bounded buffer that rejects new messages on overflow.
    pub fn bounded_drop_newest(capacity_bytes: usize) -> QosPolicy {
        QosPolicy {
            capacity_bytes: Some(capacity_bytes),
            overflow: OverflowPolicy::DropNewest,
            rate: None,
        }
    }

    /// Adds a token-bucket rate limit (builder style).
    pub fn with_rate(mut self, bytes_per_second: u64, burst_bytes: u64) -> QosPolicy {
        self.rate = Some(RateLimit {
            bytes_per_second,
            burst_bytes,
        });
        self
    }
}

/// Statistics accumulated by a translation buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Messages accepted into the buffer.
    pub enqueued: u64,
    /// Messages handed to the drain.
    pub dequeued: u64,
    /// Previously accepted messages evicted by [`OverflowPolicy::DropOldest`].
    pub evicted: u64,
    /// Offered messages rejected outright (never buffered).
    pub rejected: u64,
    /// High-water mark of buffered bytes.
    pub max_occupancy_bytes: usize,
}

impl BufferStats {
    /// Total messages discarded by the overflow policy.
    pub fn dropped(&self) -> u64 {
        self.evicted + self.rejected
    }
}

/// The buffer that sits between a source port and the (possibly slower or
/// remote) destination of a message path.
#[derive(Debug)]
pub struct TranslationBuffer {
    policy: QosPolicy,
    queue: VecDeque<UMessage>,
    bytes: usize,
    tokens: f64,
    last_refill: SimTime,
    stats: BufferStats,
}

impl TranslationBuffer {
    /// Creates a buffer with the given policy.
    pub fn new(policy: QosPolicy) -> TranslationBuffer {
        let tokens = policy.rate.map(|r| r.burst_bytes as f64).unwrap_or(0.0);
        TranslationBuffer {
            policy,
            queue: VecDeque::new(),
            bytes: 0,
            tokens,
            last_refill: SimTime::ZERO,
            stats: BufferStats::default(),
        }
    }

    /// Bytes currently buffered.
    pub fn occupancy_bytes(&self) -> usize {
        self.bytes
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// The active policy.
    pub fn policy(&self) -> &QosPolicy {
        &self.policy
    }

    /// Size of the next message to drain, if any. Used to check downstream
    /// capacity before committing to a [`TranslationBuffer::poll`].
    pub fn front_size(&self) -> Option<usize> {
        self.queue.front().map(UMessage::size)
    }

    /// Offers a message to the buffer. Returns `true` if it was accepted
    /// (possibly after evicting older messages), `false` if it was dropped.
    pub fn offer(&mut self, msg: UMessage) -> bool {
        let size = msg.size();
        if let Some(cap) = self.policy.capacity_bytes {
            match self.policy.overflow {
                OverflowPolicy::Unbounded => {}
                OverflowPolicy::DropNewest => {
                    if self.bytes + size > cap {
                        self.stats.rejected += 1;
                        return false;
                    }
                }
                OverflowPolicy::DropOldest => {
                    while !self.queue.is_empty() && self.bytes + size > cap {
                        if let Some(old) = self.queue.pop_front() {
                            self.bytes -= old.size();
                            self.stats.evicted += 1;
                        }
                    }
                    if self.queue.is_empty() && size > cap {
                        // The message alone exceeds capacity.
                        self.stats.rejected += 1;
                        return false;
                    }
                }
            }
        }
        self.bytes += size;
        self.queue.push_back(msg);
        self.stats.enqueued += 1;
        self.stats.max_occupancy_bytes = self.stats.max_occupancy_bytes.max(self.bytes);
        true
    }

    /// Refills rate-limit tokens up to `now`.
    fn refill(&mut self, now: SimTime) {
        if let Some(rate) = self.policy.rate {
            let elapsed = now.saturating_since(self.last_refill);
            self.tokens = (self.tokens + rate.bytes_per_second as f64 * elapsed.as_secs_f64())
                .min(rate.burst_bytes as f64);
        }
        self.last_refill = now;
    }

    /// Takes the next message if the rate limiter allows it.
    ///
    /// When rate-limited and a message is waiting, returns
    /// `Err(wait)` with the duration until enough tokens accrue.
    pub fn poll(&mut self, now: SimTime) -> Result<Option<UMessage>, SimDuration> {
        self.refill(now);
        let Some(front_size) = self.queue.front().map(UMessage::size) else {
            return Ok(None);
        };
        if let Some(rate) = self.policy.rate {
            if (self.tokens as u64) < front_size as u64 {
                let deficit = front_size as f64 - self.tokens;
                let wait = deficit / rate.bytes_per_second as f64;
                return Err(SimDuration::from_secs_f64(wait.max(1e-9)));
            }
            self.tokens -= front_size as f64;
        }
        let msg = self.queue.pop_front().expect("front checked above");
        self.bytes -= msg.size();
        self.stats.dequeued += 1;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> UMessage {
        UMessage::new("application/octet-stream".parse().unwrap(), vec![0u8; n])
    }

    #[test]
    fn unbounded_accepts_everything() {
        let mut b = TranslationBuffer::new(QosPolicy::unbounded());
        for _ in 0..100 {
            assert!(b.offer(msg(1000)));
        }
        assert_eq!(b.occupancy_bytes(), 100_000);
        assert_eq!(b.stats().dropped(), 0);
    }

    #[test]
    fn drop_newest_rejects_overflow() {
        let mut b = TranslationBuffer::new(QosPolicy::bounded_drop_newest(2500));
        assert!(b.offer(msg(1000)));
        assert!(b.offer(msg(1000)));
        assert!(!b.offer(msg(1000)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.stats().rejected, 1);
    }

    #[test]
    fn drop_oldest_evicts_to_make_room() {
        let mut b = TranslationBuffer::new(QosPolicy::bounded_drop_oldest(2500));
        for i in 0..4 {
            let m = msg(1000).with_meta("i", i.to_string());
            // Size includes metadata; keep payload dominant.
            assert!(b.offer(m), "message {i} accepted after eviction");
        }
        assert_eq!(b.stats().evicted, 2);
        let first = b.poll(SimTime::ZERO).unwrap().unwrap();
        assert_eq!(first.meta("i"), Some("2"));
    }

    #[test]
    fn oversized_message_dropped_even_when_empty() {
        let mut b = TranslationBuffer::new(QosPolicy::bounded_drop_oldest(100));
        assert!(!b.offer(msg(500)));
        assert!(b.is_empty());
    }

    #[test]
    fn token_bucket_paces_drain() {
        // 1000 B/s, burst 1000 B; three 1000 B messages take ~2 s to drain.
        let mut b = TranslationBuffer::new(QosPolicy::unbounded().with_rate(1000, 1000));
        for _ in 0..3 {
            assert!(b.offer(msg(1000)));
        }
        let t0 = SimTime::ZERO;
        assert!(b.poll(t0).unwrap().is_some(), "burst allows the first");
        let wait = b.poll(t0).unwrap_err();
        assert_eq!(wait, SimDuration::from_secs(1));
        let t1 = t0 + wait;
        assert!(b.poll(t1).unwrap().is_some());
        let wait2 = b.poll(t1).unwrap_err();
        let t2 = t1 + wait2;
        assert!(b.poll(t2).unwrap().is_some());
        assert!(b.poll(t2).unwrap().is_none());
    }

    /// Conservation: enqueued = dequeued + dropped + still queued,
    /// under any interleaving of offers and polls.
    #[test]
    fn conservation() {
        simnet::check_cases("qos_conservation", 256, |_, rng| {
            let n_ops = rng.gen_range(1usize..200);
            let cap = if rng.gen_bool(0.5) {
                Some(rng.gen_range(100usize..5000))
            } else {
                None
            };
            let policy = QosPolicy {
                capacity_bytes: cap,
                overflow: OverflowPolicy::DropOldest,
                rate: None,
            };
            let mut b = TranslationBuffer::new(policy);
            let mut t = SimTime::ZERO;
            for _ in 0..n_ops {
                if rng.gen_bool(0.5) {
                    let size = rng.gen_range(1usize..2000);
                    b.offer(msg(size));
                } else {
                    t += SimDuration::from_millis(1);
                    let _ = b.poll(t);
                }
            }
            let s = b.stats();
            // Conservation: everything accepted is either delivered,
            // evicted, or still queued.
            assert_eq!(s.enqueued, s.dequeued + s.evicted + b.len() as u64);
            if let Some(cap) = cap {
                assert!(b.occupancy_bytes() <= cap || b.len() == 1);
            }
        });
    }

    /// Occupancy never exceeds the high-water mark.
    #[test]
    fn high_water_mark() {
        simnet::check_cases("qos_high_water_mark", 256, |_, rng| {
            let n_ops = rng.gen_range(1usize..50);
            let mut b = TranslationBuffer::new(QosPolicy::unbounded());
            for _ in 0..n_ops {
                let size = rng.gen_range(1usize..500);
                b.offer(msg(size));
                assert!(b.occupancy_bytes() <= b.stats().max_occupancy_bytes);
            }
        });
    }
}
