//! The directory replica each runtime maintains.
//!
//! "The uMiddle directory module handles the exchange of device
//! advertisements among hosts" (paper §3.2). Each runtime keeps a full
//! replica of the federation's translator profiles, refreshed by periodic
//! advertisements with a TTL and pruned on expiry or explicit byes. The
//! replica serves `lookup(Query)` locally and feeds directory listeners.

use std::collections::BTreeMap;

use simnet::{Addr, SimTime};

use crate::id::TranslatorId;
use crate::profile::TranslatorProfile;
use crate::query::Query;

/// One replica entry: a profile plus liveness bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectoryEntry {
    /// The advertised profile.
    pub profile: TranslatorProfile,
    /// Transport address of the hosting runtime.
    pub home: Addr,
    /// When the entry expires unless refreshed.
    pub expires: SimTime,
    /// `true` if the translator is hosted by this runtime (local entries
    /// never expire).
    pub local: bool,
}

/// Effect of applying an advertisement to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertEffect {
    /// The translator was not known before.
    Appeared,
    /// The entry was refreshed (TTL extended, profile possibly updated).
    Refreshed,
}

/// The in-memory directory replica.
#[derive(Debug, Default)]
pub struct DirectoryTable {
    entries: BTreeMap<TranslatorId, DirectoryEntry>,
}

impl DirectoryTable {
    /// Creates an empty table.
    pub fn new() -> DirectoryTable {
        DirectoryTable::default()
    }

    /// Applies an advertisement.
    pub fn upsert(
        &mut self,
        profile: TranslatorProfile,
        home: Addr,
        expires: SimTime,
        local: bool,
    ) -> UpsertEffect {
        let id = profile.id();
        let effect = if self.entries.contains_key(&id) {
            UpsertEffect::Refreshed
        } else {
            UpsertEffect::Appeared
        };
        self.entries.insert(
            id,
            DirectoryEntry {
                profile,
                home,
                expires,
                local,
            },
        );
        effect
    }

    /// Removes an entry (explicit bye). Returns it if present.
    pub fn remove(&mut self, id: TranslatorId) -> Option<DirectoryEntry> {
        self.entries.remove(&id)
    }

    /// Drops remote entries whose TTL lapsed; returns the expired ids.
    pub fn expire(&mut self, now: SimTime) -> Vec<TranslatorId> {
        let dead: Vec<TranslatorId> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.local && e.expires <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in &dead {
            self.entries.remove(id);
        }
        dead
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: TranslatorId) -> Option<&DirectoryEntry> {
        self.entries.get(&id)
    }

    /// Serves the paper's `lookup(Query)`: profiles matching the query.
    pub fn lookup(&self, query: &Query) -> Vec<&TranslatorProfile> {
        self.entries
            .values()
            .map(|e| &e.profile)
            .filter(|p| query.matches(p))
            .collect()
    }

    /// All entries, ordered by translator id.
    pub fn iter(&self) -> impl Iterator<Item = &DirectoryEntry> {
        self.entries.values()
    }

    /// Entries hosted by this runtime.
    pub fn local_entries(&self) -> impl Iterator<Item = &DirectoryEntry> {
        self.entries.values().filter(|e| e.local)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::RuntimeId;
    use simnet::NodeId;

    fn profile(local: u32, name: &str) -> TranslatorProfile {
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), local), name).build()
    }

    fn addr() -> Addr {
        Addr::new(NodeId::from_index(0), 47_001)
    }

    #[test]
    fn upsert_reports_appearance_then_refresh() {
        let mut t = DirectoryTable::new();
        let p = profile(1, "cam");
        assert_eq!(
            t.upsert(p.clone(), addr(), SimTime::from_secs(15), false),
            UpsertEffect::Appeared
        );
        assert_eq!(
            t.upsert(p, addr(), SimTime::from_secs(30), false),
            UpsertEffect::Refreshed
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_skips_local_entries() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "remote"), addr(), SimTime::from_secs(10), false);
        t.upsert(profile(2, "local"), addr(), SimTime::from_secs(10), true);
        let dead = t.expire(SimTime::from_secs(20));
        assert_eq!(dead, vec![TranslatorId::new(RuntimeId(0), 1)]);
        assert_eq!(t.len(), 1);
        assert!(t.get(TranslatorId::new(RuntimeId(0), 2)).is_some());
    }

    #[test]
    fn refresh_extends_ttl() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "x"), addr(), SimTime::from_secs(10), false);
        t.upsert(profile(1, "x"), addr(), SimTime::from_secs(25), false);
        assert!(t.expire(SimTime::from_secs(20)).is_empty());
        assert_eq!(t.expire(SimTime::from_secs(25)).len(), 1);
    }

    #[test]
    fn lookup_filters() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "Camera"), addr(), SimTime::MAX, true);
        t.upsert(profile(2, "Printer"), addr(), SimTime::MAX, true);
        let q = Query::NameContains("cam".to_owned());
        let hits = t.lookup(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name(), "Camera");
        assert_eq!(t.lookup(&Query::All).len(), 2);
        assert!(t.lookup(&Query::None).is_empty());
    }

    #[test]
    fn remove_returns_entry() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "x"), addr(), SimTime::MAX, false);
        let e = t.remove(TranslatorId::new(RuntimeId(0), 1)).unwrap();
        assert_eq!(e.profile.name(), "x");
        assert!(t.is_empty());
        assert!(t.remove(TranslatorId::new(RuntimeId(0), 1)).is_none());
    }
}
