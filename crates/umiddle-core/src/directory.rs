//! The directory replica each runtime maintains.
//!
//! "The uMiddle directory module handles the exchange of device
//! advertisements among hosts" (paper §3.2). Each runtime keeps a full
//! replica of the federation's translator profiles, kept in sync by the
//! delta-gossip plane (see [`crate::replica`]) or, in the legacy
//! full-refresh mode, by periodic advertisements with a TTL. The replica
//! serves `lookup(Query)` locally and feeds directory listeners.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use simnet::{Addr, SimTime};

use crate::id::{RuntimeId, TranslatorId};
use crate::mime::MimeType;
use crate::profile::TranslatorProfile;
use crate::query::Query;
use crate::shape::{Direction, PortKind};

/// One replica entry: a profile plus liveness bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectoryEntry {
    /// The advertised profile.
    pub profile: TranslatorProfile,
    /// Transport address of the hosting runtime.
    pub home: Addr,
    /// When the entry expires unless refreshed ([`SimTime::MAX`] for
    /// entries whose liveness is tracked elsewhere — local entries, and
    /// remote entries under origin-level delta-gossip liveness).
    pub expires: SimTime,
    /// `true` if the translator is hosted by this runtime (local entries
    /// never expire).
    pub local: bool,
}

/// Effect of applying an advertisement to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertEffect {
    /// The translator was not known before.
    Appeared,
    /// The entry was refreshed (TTL extended, profile possibly updated).
    Refreshed,
}

/// How a lookup can use the secondary indexes.
enum IndexPlan<'a> {
    /// The query demands a port with a concrete digital type: candidates
    /// are the exact `(direction, mime)` posting plus wildcard-typed ports
    /// in that direction.
    Concrete(Direction, &'a MimeType),
    /// The query demands *some* digital port in a direction (its type is
    /// a wildcard pattern): candidates are every entry with a digital port
    /// in that direction — the double-wildcard side list.
    AnyDigital(Direction),
}

/// The in-memory directory replica.
///
/// Besides the id-ordered entry map, the table keeps secondary indexes so
/// `lookup` never scans the whole federation for port-shaped queries:
///
/// * `(direction, concrete port MIME type)` → translator ids, serving the
///   hot [`Query::HasPort`] shape issued on every dynamic binding attempt;
/// * a per-direction side set of *all* entries with a digital port, so
///   even double-wildcard queries (`*/*`, `image/*`) visit only candidate
///   entries — O(candidates), not O(table).
///
/// Queries neither index can serve (name/attribute predicates, `Or`/`Not`
/// roots) fall back to the full scan and bump [`Self::scan_fallbacks`];
/// indexed candidates are re-checked with [`Query::matches`] — except
/// exact postings for a bare concrete-port query, which satisfy it by the
/// index invariant — so every path agrees with the scan.
#[derive(Debug, Default)]
pub struct DirectoryTable {
    entries: BTreeMap<TranslatorId, DirectoryEntry>,
    /// `(direction, concrete mime)` → ids of profiles with such a port.
    mime_index: HashMap<(Direction, MimeType), BTreeSet<TranslatorId>>,
    /// Ids of profiles with a wildcard-typed digital port, per direction.
    pattern_ports: HashMap<Direction, BTreeSet<TranslatorId>>,
    /// Ids of profiles with *any* digital port, per direction: the
    /// candidate list for pattern-typed port queries.
    digital_by_direction: HashMap<Direction, BTreeSet<TranslatorId>>,
    /// Expiry dirty-set: `(expires, id)` min-heap, pushed on every remote
    /// upsert that carries a finite TTL. Entries are checked lazily
    /// against the live table, so a refresh simply leaves a stale heap
    /// entry behind; [`Self::expire_into`] pops only what is due instead
    /// of scanning the whole replica. Entries with `expires == MAX`
    /// (delta-gossip liveness) never enter the heap.
    expiry: BinaryHeap<Reverse<(SimTime, TranslatorId)>>,
    /// How many lookups fell back to the full scan (interior mutability:
    /// `lookup` takes `&self`). Pinned by the index regression tests.
    scan_fallbacks: Cell<u64>,
}

impl DirectoryTable {
    /// Creates an empty table.
    pub fn new() -> DirectoryTable {
        DirectoryTable::default()
    }

    /// Applies an advertisement.
    pub fn upsert(
        &mut self,
        profile: TranslatorProfile,
        home: Addr,
        expires: SimTime,
        local: bool,
    ) -> UpsertEffect {
        let id = profile.id();
        let effect = if let Some(old) = self.entries.get(&id) {
            // A refresh may carry a changed shape; drop the stale index
            // entries before re-indexing.
            let old_profile = old.profile.clone();
            self.deindex(id, &old_profile);
            UpsertEffect::Refreshed
        } else {
            UpsertEffect::Appeared
        };
        self.index(id, &profile);
        if !local && expires != SimTime::MAX {
            self.expiry.push(Reverse((expires, id)));
        }
        self.entries.insert(
            id,
            DirectoryEntry {
                profile,
                home,
                expires,
                local,
            },
        );
        effect
    }

    /// Removes an entry (explicit bye). Returns it if present.
    pub fn remove(&mut self, id: TranslatorId) -> Option<DirectoryEntry> {
        let entry = self.entries.remove(&id);
        if let Some(e) = &entry {
            self.deindex(id, &e.profile);
        }
        entry
    }

    /// Removes every entry originating at `origin`, appending the removed
    /// ids to `removed` in ascending order (origin-level liveness eviction
    /// in the delta-gossip plane).
    pub fn remove_origin(&mut self, origin: RuntimeId, removed: &mut Vec<TranslatorId>) {
        let from = removed.len();
        removed.extend(
            self.entries
                .range(TranslatorId::new(origin, 0)..=TranslatorId::new(origin, u32::MAX))
                .map(|(id, _)| *id),
        );
        // Indexed loop (not an iterator) because `self.remove` needs
        // `&mut self` while `removed` stays borrowed by an iterator.
        let mut i = from;
        while i < removed.len() {
            self.remove(removed[i]);
            i += 1;
        }
    }

    /// Entries originating at `origin`, in ascending id order.
    pub fn origin_entries(&self, origin: RuntimeId) -> impl Iterator<Item = &DirectoryEntry> {
        self.entries
            .range(TranslatorId::new(origin, 0)..=TranslatorId::new(origin, u32::MAX))
            .map(|(_, e)| e)
    }

    fn index(&mut self, id: TranslatorId, profile: &TranslatorProfile) {
        for port in profile.shape().ports() {
            if let PortKind::Digital(mime) = &port.kind {
                self.digital_by_direction
                    .entry(port.direction)
                    .or_default()
                    .insert(id);
                if mime.is_pattern() {
                    self.pattern_ports
                        .entry(port.direction)
                        .or_default()
                        .insert(id);
                } else {
                    self.mime_index
                        .entry((port.direction, mime.clone()))
                        .or_default()
                        .insert(id);
                }
            }
        }
    }

    fn deindex(&mut self, id: TranslatorId, profile: &TranslatorProfile) {
        for port in profile.shape().ports() {
            if let PortKind::Digital(mime) = &port.kind {
                if let Some(ids) = self.digital_by_direction.get_mut(&port.direction) {
                    ids.remove(&id);
                    if ids.is_empty() {
                        self.digital_by_direction.remove(&port.direction);
                    }
                }
                if mime.is_pattern() {
                    if let Some(ids) = self.pattern_ports.get_mut(&port.direction) {
                        ids.remove(&id);
                        if ids.is_empty() {
                            self.pattern_ports.remove(&port.direction);
                        }
                    }
                } else {
                    let key = (port.direction, mime.clone());
                    if let Some(ids) = self.mime_index.get_mut(&key) {
                        ids.remove(&id);
                        if ids.is_empty() {
                            self.mime_index.remove(&key);
                        }
                    }
                }
            }
        }
    }

    /// Drops remote entries whose TTL lapsed, appending the expired ids
    /// to `dead` (cleared first) in ascending id order.
    ///
    /// Only heap entries that are due are examined — `O(due log n)`
    /// rather than a full-table scan. A popped entry whose table row was
    /// refreshed (later `expires`) or removed is simply discarded. The
    /// caller-supplied buffer makes the steady state (nothing due)
    /// allocation-free; see [`Self::expire`] for the allocating wrapper.
    pub fn expire_into(&mut self, now: SimTime, dead: &mut Vec<TranslatorId>) {
        dead.clear();
        while let Some(Reverse((at, id))) = self.expiry.peek().copied() {
            if at > now {
                break;
            }
            self.expiry.pop();
            let due = self
                .entries
                .get(&id)
                .is_some_and(|e| !e.local && e.expires <= now);
            if due {
                self.remove(id);
                dead.push(id);
            }
        }
        dead.sort_unstable();
    }

    /// Allocating convenience wrapper around [`Self::expire_into`].
    pub fn expire(&mut self, now: SimTime) -> Vec<TranslatorId> {
        let mut dead = Vec::new();
        self.expire_into(now, &mut dead);
        dead
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: TranslatorId) -> Option<&DirectoryEntry> {
        self.entries.get(&id)
    }

    /// Serves the paper's `lookup(Query)`: profiles matching the query.
    ///
    /// When the query (or one conjunct of an `And` chain) demands a
    /// digital port, only entries the indexes nominate are visited —
    /// the `(direction, mime)` posting for concrete types, the
    /// per-direction digital side list for wildcard patterns; candidates
    /// are checked against the full query (skipped only where the index
    /// invariant already guarantees a match), so the result is identical
    /// to a table scan.
    pub fn lookup(&self, query: &Query) -> Vec<&TranslatorProfile> {
        match Self::index_plan(query) {
            Some(IndexPlan::Concrete(direction, mime)) => {
                // When the whole query *is* the concrete port demand (the
                // federation hot path — every dynamic binding attempt),
                // exact postings satisfy it by the index invariant: the
                // posting is keyed on precisely the queried
                // `(direction, mime)`. Skipping the per-candidate
                // re-check matters at scale — `Query::matches` walks
                // every port of the profile, turning O(results) into
                // O(results * ports-per-profile).
                let root_is_plan = matches!(query, Query::HasPort { .. });
                let exact = self.mime_index.get(&(direction, mime.clone()));
                // Wildcard-typed ports match any concrete query type.
                let patterns = self.pattern_ports.get(&direction);
                if root_is_plan && patterns.is_none() {
                    return exact
                        .into_iter()
                        .flatten()
                        .filter_map(|id| self.entries.get(id))
                        .map(|e| &e.profile)
                        .collect();
                }
                let mut ids: BTreeSet<TranslatorId> = BTreeSet::new();
                ids.extend(exact.into_iter().flatten().copied());
                ids.extend(patterns.into_iter().flatten().copied());
                ids.iter()
                    .filter_map(|id| self.entries.get(id).map(|e| (id, &e.profile)))
                    .filter(|(id, p)| {
                        (root_is_plan && exact.is_some_and(|s| s.contains(id))) || query.matches(p)
                    })
                    .map(|(_, p)| p)
                    .collect()
            }
            Some(IndexPlan::AnyDigital(direction)) => self
                .digital_by_direction
                .get(&direction)
                .into_iter()
                .flatten()
                .filter_map(|id| self.entries.get(id))
                .map(|e| &e.profile)
                .filter(|p| query.matches(p))
                .collect(),
            None => {
                self.scan_fallbacks.set(self.scan_fallbacks.get() + 1);
                self.entries
                    .values()
                    .map(|e| &e.profile)
                    .filter(|p| query.matches(p))
                    .collect()
            }
        }
    }

    /// How many lookups have fallen back to the full table scan (queries
    /// no index can narrow: name/attribute predicates, `Or`/`Not` roots).
    pub fn scan_fallbacks(&self) -> u64 {
        self.scan_fallbacks.get()
    }

    /// Finds a digital-port demand the indexes can serve: the query
    /// itself, or any conjunct of a top-level `And` chain (every match of
    /// the conjunction also matches the conjunct, so its candidate set is
    /// a safe superset). A concrete plan is preferred over a wildcard one
    /// — its candidate list is narrower. `Or`/`Not` roots cannot narrow
    /// the scan and fall through to `None`.
    fn index_plan(query: &Query) -> Option<IndexPlan<'_>> {
        match query {
            Query::HasPort {
                direction,
                kind: PortKind::Digital(mime),
            } => {
                if mime.is_pattern() {
                    Some(IndexPlan::AnyDigital(*direction))
                } else {
                    Some(IndexPlan::Concrete(*direction, mime))
                }
            }
            Query::And(a, b) => match (Self::index_plan(a), Self::index_plan(b)) {
                (Some(c @ IndexPlan::Concrete(..)), _) => Some(c),
                (_, Some(c @ IndexPlan::Concrete(..))) => Some(c),
                (a, b) => a.or(b),
            },
            _ => None,
        }
    }

    /// A canonical FNV-1a digest of the replicated content: entry ids,
    /// profiles and home addresses, in id order. TTL bookkeeping
    /// (`expires`) and the observer-relative `local` flag are excluded,
    /// so two replicas that agree on the federation's state produce the
    /// same fingerprint regardless of which runtime computed it. The
    /// convergence battery and anti-entropy tests compare these.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (id, e) in &self.entries {
            fnv_u64(&mut h, ((id.runtime.0 as u64) << 32) | id.local as u64);
            fnv_str(&mut h, e.profile.name());
            fnv_str(&mut h, e.profile.platform());
            fnv_u64(&mut h, e.profile.shape().ports().len() as u64);
            for port in e.profile.shape().ports() {
                fnv_str(&mut h, &port.name);
                fnv_u64(&mut h, port.direction as u64);
                match &port.kind {
                    PortKind::Digital(mime) => {
                        fnv_u64(&mut h, 0);
                        fnv_str(&mut h, mime.ty());
                        fnv_str(&mut h, mime.subtype());
                    }
                    PortKind::Physical { perception, media } => {
                        fnv_u64(&mut h, 1);
                        fnv_u64(&mut h, *perception as u64);
                        fnv_str(&mut h, media);
                    }
                }
            }
            let mut attrs = 0u64;
            for (k, v) in e.profile.attrs() {
                fnv_str(&mut h, k);
                fnv_str(&mut h, v);
                attrs += 1;
            }
            fnv_u64(&mut h, attrs);
            fnv_u64(&mut h, e.home.node.index() as u64);
            fnv_u64(&mut h, e.home.port as u64);
        }
        h
    }

    /// All entries, ordered by translator id.
    pub fn iter(&self) -> impl Iterator<Item = &DirectoryEntry> {
        self.entries.values()
    }

    /// Entries hosted by this runtime.
    pub fn local_entries(&self) -> impl Iterator<Item = &DirectoryEntry> {
        self.entries.values().filter(|e| e.local)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn fnv_str(h: &mut u64, s: &str) {
    fnv_u64(h, s.len() as u64);
    for b in s.as_bytes() {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::RuntimeId;
    use simnet::NodeId;

    fn profile(local: u32, name: &str) -> TranslatorProfile {
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), local), name).build()
    }

    fn addr() -> Addr {
        Addr::new(NodeId::from_index(0), 47_001)
    }

    #[test]
    fn upsert_reports_appearance_then_refresh() {
        let mut t = DirectoryTable::new();
        let p = profile(1, "cam");
        assert_eq!(
            t.upsert(p.clone(), addr(), SimTime::from_secs(15), false),
            UpsertEffect::Appeared
        );
        assert_eq!(
            t.upsert(p, addr(), SimTime::from_secs(30), false),
            UpsertEffect::Refreshed
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_skips_local_entries() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "remote"), addr(), SimTime::from_secs(10), false);
        t.upsert(profile(2, "local"), addr(), SimTime::from_secs(10), true);
        let dead = t.expire(SimTime::from_secs(20));
        assert_eq!(dead, vec![TranslatorId::new(RuntimeId(0), 1)]);
        assert_eq!(t.len(), 1);
        assert!(t.get(TranslatorId::new(RuntimeId(0), 2)).is_some());
    }

    #[test]
    fn refresh_extends_ttl() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "x"), addr(), SimTime::from_secs(10), false);
        t.upsert(profile(1, "x"), addr(), SimTime::from_secs(25), false);
        assert!(t.expire(SimTime::from_secs(20)).is_empty());
        assert_eq!(t.expire(SimTime::from_secs(25)).len(), 1);
    }

    #[test]
    fn expire_into_reuses_the_caller_buffer() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "a"), addr(), SimTime::from_secs(10), false);
        t.upsert(profile(2, "b"), addr(), SimTime::from_secs(40), false);
        let mut scratch = Vec::new();
        t.expire_into(SimTime::from_secs(20), &mut scratch);
        assert_eq!(scratch, vec![TranslatorId::new(RuntimeId(0), 1)]);
        // A quiet tick clears the buffer but keeps its capacity.
        let cap = scratch.capacity();
        t.expire_into(SimTime::from_secs(25), &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn max_ttl_entries_never_enter_the_expiry_heap() {
        let mut t = DirectoryTable::new();
        // Delta-gossip remotes carry MAX expiry (origin-level liveness);
        // the heap must stay empty so a million-entry table doesn't drag
        // a million dead weights through every tick.
        t.upsert(profile(1, "remote"), addr(), SimTime::MAX, false);
        assert!(t.expiry.is_empty());
        assert!(t.expire(SimTime::from_secs(1_000_000)).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_filters() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "Camera"), addr(), SimTime::MAX, true);
        t.upsert(profile(2, "Printer"), addr(), SimTime::MAX, true);
        let q = Query::NameContains("cam".to_owned());
        let hits = t.lookup(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name(), "Camera");
        assert_eq!(t.lookup(&Query::All).len(), 2);
        assert!(t.lookup(&Query::None).is_empty());
    }

    fn shaped_profile(
        local: u32,
        name: &str,
        ports: &[(&str, Direction, &str)],
    ) -> TranslatorProfile {
        let mut b = crate::shape::Shape::builder();
        for (pname, dir, mime) in ports {
            b = b.digital(pname, *dir, mime.parse().expect("test mime"));
        }
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), local), name)
            .shape(b.build().expect("test shape"))
            .build()
    }

    /// A table mixing concrete, wildcard, and port-less profiles, for the
    /// index/scan agreement battery.
    fn mixed_table() -> DirectoryTable {
        let mut t = DirectoryTable::new();
        t.upsert(
            shaped_profile(
                1,
                "Camera",
                &[("image-out", Direction::Output, "image/jpeg")],
            ),
            addr(),
            SimTime::MAX,
            true,
        );
        t.upsert(
            shaped_profile(
                2,
                "Printer",
                &[("image-in", Direction::Input, "image/jpeg")],
            ),
            addr(),
            SimTime::MAX,
            true,
        );
        t.upsert(
            shaped_profile(3, "Display", &[("media-in", Direction::Input, "image/*")]),
            addr(),
            SimTime::MAX,
            false,
        );
        t.upsert(
            shaped_profile(
                4,
                "Recorder",
                &[
                    ("audio-in", Direction::Input, "audio/pcm"),
                    ("audio-out", Direction::Output, "audio/pcm"),
                ],
            ),
            addr(),
            SimTime::MAX,
            false,
        );
        t.upsert(profile(5, "Plain"), addr(), SimTime::MAX, false);
        t
    }

    /// Reference implementation: the pre-index full scan.
    fn scan<'a>(t: &'a DirectoryTable, q: &Query) -> Vec<&'a TranslatorProfile> {
        t.iter()
            .map(|e| &e.profile)
            .filter(|p| q.matches(p))
            .collect()
    }

    #[test]
    fn indexed_lookup_agrees_with_scan() {
        let t = mixed_table();
        let jpeg_in = Query::has_port(
            Direction::Input,
            PortKind::Digital("image/jpeg".parse().expect("mime")),
        );
        let queries = vec![
            Query::All,
            Query::None,
            jpeg_in.clone(),
            Query::has_port(
                Direction::Output,
                PortKind::Digital("image/jpeg".parse().expect("mime")),
            ),
            Query::has_port(
                Direction::Input,
                PortKind::Digital("audio/pcm".parse().expect("mime")),
            ),
            // Pattern queries: served from the per-direction side list.
            Query::has_port(
                Direction::Input,
                PortKind::Digital("image/*".parse().expect("mime")),
            ),
            Query::has_port(Direction::Input, PortKind::Digital(MimeType::any())),
            Query::has_port(Direction::Output, PortKind::Digital(MimeType::any())),
            // Unknown type: indexed path returns only wildcard candidates.
            Query::has_port(
                Direction::Input,
                PortKind::Digital("image/png".parse().expect("mime")),
            ),
            // Conjunctions pick the indexable conjunct from either side.
            jpeg_in.clone().and(Query::NameContains("print".to_owned())),
            Query::NameContains("disp".to_owned()).and(jpeg_in.clone()),
            // A concrete conjunct beats a pattern conjunct.
            Query::has_port(Direction::Input, PortKind::Digital(MimeType::any()))
                .and(jpeg_in.clone()),
            // Disjunction and negation stay on the scan path.
            jpeg_in.clone().or(Query::NameIs("Plain".to_owned())),
            jpeg_in.clone().not(),
        ];
        for q in &queries {
            assert_eq!(t.lookup(q), scan(&t, q), "index/scan disagree on {q:?}");
        }
    }

    #[test]
    fn port_queries_never_fall_back_to_the_scan() {
        let t = mixed_table();
        let port_queries = vec![
            Query::has_port(
                Direction::Input,
                PortKind::Digital("image/jpeg".parse().expect("mime")),
            ),
            // Double-wildcard and half-wildcard patterns: the side list
            // serves them without touching non-digital entries.
            Query::has_port(Direction::Input, PortKind::Digital(MimeType::any())),
            Query::has_port(Direction::Output, PortKind::Digital(MimeType::any())),
            Query::has_port(
                Direction::Input,
                PortKind::Digital("image/*".parse().expect("mime")),
            ),
            Query::has_port(
                Direction::Output,
                PortKind::Digital("*/pcm".parse().expect("mime")),
            ),
            Query::has_port(Direction::Input, PortKind::Digital(MimeType::any()))
                .and(Query::NameContains("disp".to_owned())),
        ];
        for q in &port_queries {
            assert_eq!(t.lookup(q), scan(&t, q), "index/scan disagree on {q:?}");
        }
        assert_eq!(
            t.scan_fallbacks(),
            0,
            "digital port queries must be index-served"
        );
        // Non-port predicates legitimately scan.
        t.lookup(&Query::NameContains("cam".to_owned()));
        assert_eq!(t.scan_fallbacks(), 1);
    }

    #[test]
    fn index_follows_refresh_remove_and_expiry() {
        let mut t = mixed_table();
        let jpeg_in = Query::has_port(
            Direction::Input,
            PortKind::Digital("image/jpeg".parse().expect("mime")),
        );
        // Printer (concrete) + Display (wildcard) match.
        assert_eq!(t.lookup(&jpeg_in).len(), 2);

        // A refresh that changes the shape must re-index: the printer now
        // only takes PostScript.
        t.upsert(
            shaped_profile(
                2,
                "Printer",
                &[("ps-in", Direction::Input, "application/postscript")],
            ),
            addr(),
            SimTime::MAX,
            true,
        );
        assert_eq!(t.lookup(&jpeg_in), scan(&t, &jpeg_in));
        assert_eq!(t.lookup(&jpeg_in).len(), 1);

        // Explicit bye for the wildcard display.
        t.remove(TranslatorId::new(RuntimeId(0), 3));
        assert!(t.lookup(&jpeg_in).is_empty());
        assert_eq!(t.lookup(&jpeg_in), scan(&t, &jpeg_in));

        // Expiry deindexes too: re-add the display with a short TTL.
        t.upsert(
            shaped_profile(3, "Display", &[("media-in", Direction::Input, "image/*")]),
            addr(),
            SimTime::from_secs(5),
            false,
        );
        assert_eq!(t.lookup(&jpeg_in).len(), 1);
        t.expire(SimTime::from_secs(10));
        assert!(t.lookup(&jpeg_in).is_empty());
        assert_eq!(t.lookup(&jpeg_in), scan(&t, &jpeg_in));

        // The wildcard side list follows as well.
        let any_in = Query::has_port(Direction::Input, PortKind::Digital(MimeType::any()));
        assert_eq!(t.lookup(&any_in), scan(&t, &any_in));
    }

    #[test]
    fn remove_origin_drops_exactly_that_origin() {
        let mut t = DirectoryTable::new();
        for (rt, local, name) in [(1, 0, "a"), (1, 7, "b"), (2, 0, "c"), (3, 1, "d")] {
            t.upsert(
                shaped_profile(local, name, &[("o", Direction::Output, "x/y")])
                    .with_id(TranslatorId::new(RuntimeId(rt), local)),
                addr(),
                SimTime::MAX,
                false,
            );
        }
        let mut gone = Vec::new();
        t.remove_origin(RuntimeId(1), &mut gone);
        assert_eq!(
            gone,
            vec![
                TranslatorId::new(RuntimeId(1), 0),
                TranslatorId::new(RuntimeId(1), 7)
            ]
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.origin_entries(RuntimeId(1)).count(), 0);
        assert_eq!(t.origin_entries(RuntimeId(2)).count(), 1);
        // The index dropped the removed origin's postings.
        let q = Query::has_port(
            Direction::Output,
            PortKind::Digital("x/y".parse().expect("mime")),
        );
        assert_eq!(t.lookup(&q), scan(&t, &q));
        assert_eq!(t.lookup(&q).len(), 2);
    }

    #[test]
    fn fingerprint_tracks_replicated_content_only() {
        let build = |local_flag: bool, ttl: SimTime| {
            let mut t = DirectoryTable::new();
            t.upsert(
                shaped_profile(1, "Cam", &[("o", Direction::Output, "image/jpeg")]),
                addr(),
                ttl,
                local_flag,
            );
            t.upsert(profile(2, "Plain"), addr(), ttl, false);
            t
        };
        // Observer-relative liveness bookkeeping must not change the
        // digest; content must.
        let a = build(true, SimTime::MAX);
        let b = build(false, SimTime::from_secs(15));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = build(true, SimTime::MAX);
        c.upsert(profile(3, "Extra"), addr(), SimTime::MAX, false);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = build(true, SimTime::MAX);
        d.remove(TranslatorId::new(RuntimeId(0), 2));
        d.upsert(profile(2, "Plain2"), addr(), SimTime::MAX, false);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn remove_returns_entry() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "x"), addr(), SimTime::MAX, false);
        let e = t.remove(TranslatorId::new(RuntimeId(0), 1)).unwrap();
        assert_eq!(e.profile.name(), "x");
        assert!(t.is_empty());
        assert!(t.remove(TranslatorId::new(RuntimeId(0), 1)).is_none());
    }
}
