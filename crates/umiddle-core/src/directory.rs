//! The directory replica each runtime maintains.
//!
//! "The uMiddle directory module handles the exchange of device
//! advertisements among hosts" (paper §3.2). Each runtime keeps a full
//! replica of the federation's translator profiles, refreshed by periodic
//! advertisements with a TTL and pruned on expiry or explicit byes. The
//! replica serves `lookup(Query)` locally and feeds directory listeners.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use simnet::{Addr, SimTime};

use crate::id::TranslatorId;
use crate::mime::MimeType;
use crate::profile::TranslatorProfile;
use crate::query::Query;
use crate::shape::{Direction, PortKind};

/// One replica entry: a profile plus liveness bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectoryEntry {
    /// The advertised profile.
    pub profile: TranslatorProfile,
    /// Transport address of the hosting runtime.
    pub home: Addr,
    /// When the entry expires unless refreshed.
    pub expires: SimTime,
    /// `true` if the translator is hosted by this runtime (local entries
    /// never expire).
    pub local: bool,
}

/// Effect of applying an advertisement to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertEffect {
    /// The translator was not known before.
    Appeared,
    /// The entry was refreshed (TTL extended, profile possibly updated).
    Refreshed,
}

/// The in-memory directory replica.
///
/// Besides the id-ordered entry map, the table keeps a secondary index
/// from `(direction, concrete port MIME type)` to translator ids, so the
/// hot `lookup` shape — a [`Query::HasPort`] on a concrete digital type,
/// issued on every dynamic binding attempt — touches only candidate
/// entries instead of scanning the whole federation. Profiles whose
/// ports carry wildcard types land in a per-direction side set (they can
/// match any concrete query type). Queries the index cannot serve fall
/// back to the full scan, and indexed candidates are still re-checked
/// with [`Query::matches`], so both paths always agree.
#[derive(Debug, Default)]
pub struct DirectoryTable {
    entries: BTreeMap<TranslatorId, DirectoryEntry>,
    /// `(direction, concrete mime)` → ids of profiles with such a port.
    mime_index: HashMap<(Direction, MimeType), BTreeSet<TranslatorId>>,
    /// Ids of profiles with a wildcard-typed digital port, per direction.
    pattern_ports: HashMap<Direction, BTreeSet<TranslatorId>>,
    /// Expiry dirty-set: `(expires, id)` min-heap, pushed on every remote
    /// upsert. Entries are checked lazily against the live table, so a
    /// refresh simply leaves a stale heap entry behind; [`Self::expire`]
    /// pops only what is due instead of scanning the whole replica.
    expiry: BinaryHeap<Reverse<(SimTime, TranslatorId)>>,
}

impl DirectoryTable {
    /// Creates an empty table.
    pub fn new() -> DirectoryTable {
        DirectoryTable::default()
    }

    /// Applies an advertisement.
    pub fn upsert(
        &mut self,
        profile: TranslatorProfile,
        home: Addr,
        expires: SimTime,
        local: bool,
    ) -> UpsertEffect {
        let id = profile.id();
        let effect = if let Some(old) = self.entries.get(&id) {
            // A refresh may carry a changed shape; drop the stale index
            // entries before re-indexing.
            let old_profile = old.profile.clone();
            self.deindex(id, &old_profile);
            UpsertEffect::Refreshed
        } else {
            UpsertEffect::Appeared
        };
        self.index(id, &profile);
        if !local {
            self.expiry.push(Reverse((expires, id)));
        }
        self.entries.insert(
            id,
            DirectoryEntry {
                profile,
                home,
                expires,
                local,
            },
        );
        effect
    }

    /// Removes an entry (explicit bye). Returns it if present.
    pub fn remove(&mut self, id: TranslatorId) -> Option<DirectoryEntry> {
        let entry = self.entries.remove(&id);
        if let Some(e) = &entry {
            self.deindex(id, &e.profile);
        }
        entry
    }

    fn index(&mut self, id: TranslatorId, profile: &TranslatorProfile) {
        for port in profile.shape().ports() {
            if let PortKind::Digital(mime) = &port.kind {
                if mime.is_pattern() {
                    self.pattern_ports
                        .entry(port.direction)
                        .or_default()
                        .insert(id);
                } else {
                    self.mime_index
                        .entry((port.direction, mime.clone()))
                        .or_default()
                        .insert(id);
                }
            }
        }
    }

    fn deindex(&mut self, id: TranslatorId, profile: &TranslatorProfile) {
        for port in profile.shape().ports() {
            if let PortKind::Digital(mime) = &port.kind {
                if mime.is_pattern() {
                    if let Some(ids) = self.pattern_ports.get_mut(&port.direction) {
                        ids.remove(&id);
                        if ids.is_empty() {
                            self.pattern_ports.remove(&port.direction);
                        }
                    }
                } else {
                    let key = (port.direction, mime.clone());
                    if let Some(ids) = self.mime_index.get_mut(&key) {
                        ids.remove(&id);
                        if ids.is_empty() {
                            self.mime_index.remove(&key);
                        }
                    }
                }
            }
        }
    }

    /// Drops remote entries whose TTL lapsed; returns the expired ids
    /// in ascending id order.
    ///
    /// Only heap entries that are due are examined — `O(due log n)`
    /// rather than a full-table scan. A popped entry whose table row was
    /// refreshed (later `expires`) or removed is simply discarded.
    pub fn expire(&mut self, now: SimTime) -> Vec<TranslatorId> {
        let mut dead = Vec::new();
        while let Some(Reverse((at, id))) = self.expiry.peek().copied() {
            if at > now {
                break;
            }
            self.expiry.pop();
            let due = self
                .entries
                .get(&id)
                .is_some_and(|e| !e.local && e.expires <= now);
            if due {
                self.remove(id);
                dead.push(id);
            }
        }
        dead.sort_unstable();
        dead
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: TranslatorId) -> Option<&DirectoryEntry> {
        self.entries.get(&id)
    }

    /// Serves the paper's `lookup(Query)`: profiles matching the query.
    ///
    /// When the query (or one conjunct of an `And` chain) demands a port
    /// with a concrete digital type, only entries the MIME index nominates
    /// are visited; every candidate is still checked against the full
    /// query, so the result is identical to a table scan.
    pub fn lookup(&self, query: &Query) -> Vec<&TranslatorProfile> {
        if let Some((direction, mime)) = Self::indexable_port(query) {
            let mut ids: BTreeSet<TranslatorId> = BTreeSet::new();
            if let Some(exact) = self.mime_index.get(&(direction, mime.clone())) {
                ids.extend(exact.iter().copied());
            }
            // Wildcard-typed ports match any concrete query type.
            if let Some(patterns) = self.pattern_ports.get(&direction) {
                ids.extend(patterns.iter().copied());
            }
            return ids
                .iter()
                .filter_map(|id| self.entries.get(id))
                .map(|e| &e.profile)
                .filter(|p| query.matches(p))
                .collect();
        }
        self.entries
            .values()
            .map(|e| &e.profile)
            .filter(|p| query.matches(p))
            .collect()
    }

    /// Finds a concrete digital-port demand the index can serve: the
    /// query itself, or any conjunct of a top-level `And` chain (every
    /// match of the conjunction also matches the conjunct, so its
    /// candidate set is a safe superset). `Or`/`Not` roots cannot narrow
    /// the scan and fall through to `None`.
    fn indexable_port(query: &Query) -> Option<(Direction, &MimeType)> {
        match query {
            Query::HasPort {
                direction,
                kind: PortKind::Digital(mime),
            } if !mime.is_pattern() => Some((*direction, mime)),
            Query::And(a, b) => Self::indexable_port(a).or_else(|| Self::indexable_port(b)),
            _ => None,
        }
    }

    /// All entries, ordered by translator id.
    pub fn iter(&self) -> impl Iterator<Item = &DirectoryEntry> {
        self.entries.values()
    }

    /// Entries hosted by this runtime.
    pub fn local_entries(&self) -> impl Iterator<Item = &DirectoryEntry> {
        self.entries.values().filter(|e| e.local)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::RuntimeId;
    use simnet::NodeId;

    fn profile(local: u32, name: &str) -> TranslatorProfile {
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), local), name).build()
    }

    fn addr() -> Addr {
        Addr::new(NodeId::from_index(0), 47_001)
    }

    #[test]
    fn upsert_reports_appearance_then_refresh() {
        let mut t = DirectoryTable::new();
        let p = profile(1, "cam");
        assert_eq!(
            t.upsert(p.clone(), addr(), SimTime::from_secs(15), false),
            UpsertEffect::Appeared
        );
        assert_eq!(
            t.upsert(p, addr(), SimTime::from_secs(30), false),
            UpsertEffect::Refreshed
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_skips_local_entries() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "remote"), addr(), SimTime::from_secs(10), false);
        t.upsert(profile(2, "local"), addr(), SimTime::from_secs(10), true);
        let dead = t.expire(SimTime::from_secs(20));
        assert_eq!(dead, vec![TranslatorId::new(RuntimeId(0), 1)]);
        assert_eq!(t.len(), 1);
        assert!(t.get(TranslatorId::new(RuntimeId(0), 2)).is_some());
    }

    #[test]
    fn refresh_extends_ttl() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "x"), addr(), SimTime::from_secs(10), false);
        t.upsert(profile(1, "x"), addr(), SimTime::from_secs(25), false);
        assert!(t.expire(SimTime::from_secs(20)).is_empty());
        assert_eq!(t.expire(SimTime::from_secs(25)).len(), 1);
    }

    #[test]
    fn lookup_filters() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "Camera"), addr(), SimTime::MAX, true);
        t.upsert(profile(2, "Printer"), addr(), SimTime::MAX, true);
        let q = Query::NameContains("cam".to_owned());
        let hits = t.lookup(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name(), "Camera");
        assert_eq!(t.lookup(&Query::All).len(), 2);
        assert!(t.lookup(&Query::None).is_empty());
    }

    fn shaped_profile(
        local: u32,
        name: &str,
        ports: &[(&str, Direction, &str)],
    ) -> TranslatorProfile {
        let mut b = crate::shape::Shape::builder();
        for (pname, dir, mime) in ports {
            b = b.digital(pname, *dir, mime.parse().expect("test mime"));
        }
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), local), name)
            .shape(b.build().expect("test shape"))
            .build()
    }

    /// A table mixing concrete, wildcard, and port-less profiles, for the
    /// index/scan agreement battery.
    fn mixed_table() -> DirectoryTable {
        let mut t = DirectoryTable::new();
        t.upsert(
            shaped_profile(
                1,
                "Camera",
                &[("image-out", Direction::Output, "image/jpeg")],
            ),
            addr(),
            SimTime::MAX,
            true,
        );
        t.upsert(
            shaped_profile(
                2,
                "Printer",
                &[("image-in", Direction::Input, "image/jpeg")],
            ),
            addr(),
            SimTime::MAX,
            true,
        );
        t.upsert(
            shaped_profile(3, "Display", &[("media-in", Direction::Input, "image/*")]),
            addr(),
            SimTime::MAX,
            false,
        );
        t.upsert(
            shaped_profile(
                4,
                "Recorder",
                &[
                    ("audio-in", Direction::Input, "audio/pcm"),
                    ("audio-out", Direction::Output, "audio/pcm"),
                ],
            ),
            addr(),
            SimTime::MAX,
            false,
        );
        t.upsert(profile(5, "Plain"), addr(), SimTime::MAX, false);
        t
    }

    /// Reference implementation: the pre-index full scan.
    fn scan<'a>(t: &'a DirectoryTable, q: &Query) -> Vec<&'a TranslatorProfile> {
        t.iter()
            .map(|e| &e.profile)
            .filter(|p| q.matches(p))
            .collect()
    }

    #[test]
    fn indexed_lookup_agrees_with_scan() {
        let t = mixed_table();
        let jpeg_in = Query::has_port(
            Direction::Input,
            PortKind::Digital("image/jpeg".parse().expect("mime")),
        );
        let queries = vec![
            Query::All,
            Query::None,
            jpeg_in.clone(),
            Query::has_port(
                Direction::Output,
                PortKind::Digital("image/jpeg".parse().expect("mime")),
            ),
            Query::has_port(
                Direction::Input,
                PortKind::Digital("audio/pcm".parse().expect("mime")),
            ),
            // Pattern query: not indexable, must fall back to the scan.
            Query::has_port(
                Direction::Input,
                PortKind::Digital("image/*".parse().expect("mime")),
            ),
            // Unknown type: indexed path returns only wildcard candidates.
            Query::has_port(
                Direction::Input,
                PortKind::Digital("image/png".parse().expect("mime")),
            ),
            // Conjunctions pick the indexable conjunct from either side.
            jpeg_in.clone().and(Query::NameContains("print".to_owned())),
            Query::NameContains("disp".to_owned()).and(jpeg_in.clone()),
            // Disjunction and negation stay on the scan path.
            jpeg_in.clone().or(Query::NameIs("Plain".to_owned())),
            jpeg_in.clone().not(),
        ];
        for q in &queries {
            assert_eq!(t.lookup(q), scan(&t, q), "index/scan disagree on {q:?}");
        }
    }

    #[test]
    fn index_follows_refresh_remove_and_expiry() {
        let mut t = mixed_table();
        let jpeg_in = Query::has_port(
            Direction::Input,
            PortKind::Digital("image/jpeg".parse().expect("mime")),
        );
        // Printer (concrete) + Display (wildcard) match.
        assert_eq!(t.lookup(&jpeg_in).len(), 2);

        // A refresh that changes the shape must re-index: the printer now
        // only takes PostScript.
        t.upsert(
            shaped_profile(
                2,
                "Printer",
                &[("ps-in", Direction::Input, "application/postscript")],
            ),
            addr(),
            SimTime::MAX,
            true,
        );
        assert_eq!(t.lookup(&jpeg_in), scan(&t, &jpeg_in));
        assert_eq!(t.lookup(&jpeg_in).len(), 1);

        // Explicit bye for the wildcard display.
        t.remove(TranslatorId::new(RuntimeId(0), 3));
        assert!(t.lookup(&jpeg_in).is_empty());
        assert_eq!(t.lookup(&jpeg_in), scan(&t, &jpeg_in));

        // Expiry deindexes too: re-add the display with a short TTL.
        t.upsert(
            shaped_profile(3, "Display", &[("media-in", Direction::Input, "image/*")]),
            addr(),
            SimTime::from_secs(5),
            false,
        );
        assert_eq!(t.lookup(&jpeg_in).len(), 1);
        t.expire(SimTime::from_secs(10));
        assert!(t.lookup(&jpeg_in).is_empty());
        assert_eq!(t.lookup(&jpeg_in), scan(&t, &jpeg_in));
    }

    #[test]
    fn remove_returns_entry() {
        let mut t = DirectoryTable::new();
        t.upsert(profile(1, "x"), addr(), SimTime::MAX, false);
        let e = t.remove(TranslatorId::new(RuntimeId(0), 1)).unwrap();
        assert_eq!(e.profile.name(), "x");
        assert!(t.is_empty());
        assert!(t.remove(TranslatorId::new(RuntimeId(0), 1)).is_none());
    }
}
