//! Error types for the uMiddle core.

use std::error::Error;
use std::fmt;

use crate::id::{ConnectionId, PortRef, TranslatorId};

/// Errors produced by the uMiddle core library.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A string did not parse as a MIME type, or its components were
    /// malformed.
    InvalidMime(String),
    /// A shape declared two ports with the same name.
    DuplicatePort(String),
    /// A referenced translator is not in the directory.
    UnknownTranslator(TranslatorId),
    /// A referenced port does not exist on its translator.
    UnknownPort(PortRef),
    /// A referenced connection does not exist.
    UnknownConnection(ConnectionId),
    /// A connection was requested between incompatible ports (direction or
    /// data-type mismatch); the message explains which check failed.
    Incompatible(String),
    /// A wire message failed to decode.
    Decode(String),
    /// A USDL or shape validation failure.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidMime(s) => write!(f, "invalid MIME type: {s:?}"),
            CoreError::DuplicatePort(name) => write!(f, "duplicate port name {name:?}"),
            CoreError::UnknownTranslator(id) => write!(f, "unknown translator {id}"),
            CoreError::UnknownPort(port) => write!(f, "unknown port {port}"),
            CoreError::UnknownConnection(id) => write!(f, "unknown connection {id}"),
            CoreError::Incompatible(why) => write!(f, "incompatible ports: {why}"),
            CoreError::Decode(why) => write!(f, "wire decode failed: {why}"),
            CoreError::Invalid(why) => write!(f, "invalid description: {why}"),
        }
    }
}

impl Error for CoreError {}

/// Convenience alias for core results.
pub type CoreResult<T> = Result<T, CoreError>;
