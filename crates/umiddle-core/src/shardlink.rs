//! Cross-shard hand-off encoding for [`UMessage`]s.
//!
//! In a sharded simulation ([`simnet::shard`]) each shard is a separate
//! `World`: a message crossing a shard boundary travels as raw bytes
//! over the conductor's inter-shard link, not as an in-process value.
//! This module is the hand-off codec — a small self-describing frame
//! that carries a `UMessage` (MIME type, metadata, body) across the
//! boundary so the receiving shard's runtime can re-inject it into its
//! own semantic space.
//!
//! The layout is little-endian and length-prefixed throughout:
//!
//! ```text
//! [u8 version=2]
//! [u8 trace_flag] (1 → [u64 corr][u64 span][u16 src_shard])
//! [u16 mime_len][mime bytes]
//! [u16 meta_count] ([u16 key_len][key][u16 val_len][val])*
//! [u32 body_len][body bytes]
//! ```
//!
//! Metadata keys are written in sorted order (the `UMessage` map is a
//! `BTreeMap`), so encoding is deterministic: the same message always
//! produces the same bytes, which keeps sharded runs byte-diffable.
//!
//! Version 2 added the optional **trace context** — the correlation id
//! of the causal path the message is riding, the id of the
//! `shard.xfer.egress` span opened on the sending shard, and the
//! sending shard itself. The receiving shard replays it as a
//! `shard.xfer.ingress` span, which
//! [`simnet::merge_shard_spans`] uses to stitch per-shard traces into
//! one federation-wide journey. The codec is internal to a single
//! simulation binary, so no cross-version compatibility is kept:
//! version 1 frames are rejected like any other unknown version.

use simnet::{Payload, PayloadBuilder, SpanId};

use crate::error::{CoreError, CoreResult};
use crate::message::UMessage;

/// Current hand-off frame version.
const VERSION: u8 = 2;

/// The causal trace context a hand-off frame can carry across the
/// shard boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffTrace {
    /// Correlation id of the path on the sending shard (globally unique
    /// — corr ids embed the minting runtime's id).
    pub corr: u64,
    /// The `shard.xfer.egress` span recorded by the sending shard.
    pub span: SpanId,
    /// The sending shard.
    pub src_shard: u16,
}

/// Encodes a message into one hand-off frame (single allocation).
pub fn encode_handoff(msg: &UMessage) -> Payload {
    encode_handoff_traced(msg, None)
}

/// Encodes a message plus optional cross-shard trace context.
pub fn encode_handoff_traced(msg: &UMessage, trace: Option<HandoffTrace>) -> Payload {
    let mime = msg.mime().to_string();
    let mut b = PayloadBuilder::with_capacity(34 + mime.len() + msg.size());
    b.push(VERSION);
    match trace {
        Some(t) => {
            b.push(1);
            b.extend_from_slice(&t.corr.to_le_bytes());
            b.extend_from_slice(&t.span.0.to_le_bytes());
            b.u16_le(t.src_shard);
        }
        None => b.push(0),
    }
    b.u16_le(mime.len() as u16);
    b.extend_from_slice(mime.as_bytes());
    let metas: Vec<(&str, &str)> = msg.metas().collect();
    b.u16_le(metas.len() as u16);
    for (k, v) in metas {
        b.u16_le(k.len() as u16);
        b.extend_from_slice(k.as_bytes());
        b.u16_le(v.len() as u16);
        b.extend_from_slice(v.as_bytes());
    }
    let body = msg.body();
    b.u32_le(body.len() as u32);
    b.extend_from_slice(body);
    b.freeze()
}

/// Decodes a hand-off frame back into a [`UMessage`], discarding any
/// trace context.
///
/// # Errors
///
/// Returns [`CoreError::Decode`] for a truncated frame, an unknown
/// version, a malformed MIME type, or non-UTF-8 metadata.
pub fn decode_handoff(frame: &Payload) -> CoreResult<UMessage> {
    decode_handoff_traced(frame).map(|(msg, _)| msg)
}

/// Decodes a hand-off frame plus the trace context it carries, if any.
///
/// # Errors
///
/// Returns [`CoreError::Decode`] for a truncated frame, an unknown
/// version, a malformed trace flag, a malformed MIME type, or
/// non-UTF-8 metadata.
pub fn decode_handoff_traced(frame: &Payload) -> CoreResult<(UMessage, Option<HandoffTrace>)> {
    let bytes: &[u8] = frame;
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> CoreResult<&[u8]> {
        let end = at
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| CoreError::Decode("truncated shard hand-off frame".into()))?;
        let s = &bytes[*at..end];
        *at = end;
        Ok(s)
    };
    let version = take(&mut at, 1)?[0];
    if version != VERSION {
        return Err(CoreError::Decode(format!(
            "unknown shard hand-off version {version}"
        )));
    }
    let trace = match take(&mut at, 1)?[0] {
        0 => None,
        1 => {
            let corr = {
                let s = take(&mut at, 8)?;
                u64::from_le_bytes(s.try_into().expect("8-byte slice"))
            };
            let span = {
                let s = take(&mut at, 8)?;
                SpanId(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
            };
            let src_shard = {
                let s = take(&mut at, 2)?;
                u16::from_le_bytes([s[0], s[1]])
            };
            Some(HandoffTrace {
                corr,
                span,
                src_shard,
            })
        }
        flag => {
            return Err(CoreError::Decode(format!(
                "unknown shard hand-off trace flag {flag}"
            )))
        }
    };
    let take_u16 = |at: &mut usize| -> CoreResult<usize> {
        let s = take(at, 2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]) as usize)
    };
    let take_str = |at: &mut usize| -> CoreResult<String> {
        let n = take_u16(at)?;
        String::from_utf8(take(at, n)?.to_vec())
            .map_err(|_| CoreError::Decode("non-UTF-8 string in shard hand-off".into()))
    };

    let mime = take_str(&mut at)?.parse()?;
    let meta_count = take_u16(&mut at)?;
    let mut metas = Vec::with_capacity(meta_count);
    for _ in 0..meta_count {
        let k = take_str(&mut at)?;
        let v = take_str(&mut at)?;
        metas.push((k, v));
    }
    let body_len = {
        let s = take(&mut at, 4)?;
        u32::from_le_bytes([s[0], s[1], s[2], s[3]]) as usize
    };
    if at + body_len != bytes.len() {
        return Err(CoreError::Decode(format!(
            "shard hand-off body length {body_len} does not match frame ({} bytes left)",
            bytes.len() - at
        )));
    }
    // O(1) slice of the arriving payload: the body crosses the shard
    // boundary without a copy.
    let body = frame.slice(at..at + body_len);
    let mut msg = UMessage::new(mime, body);
    for (k, v) in metas {
        msg = msg.with_meta(k, v);
    }
    Ok((msg, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_round_trips_and_is_deterministic() {
        let msg = UMessage::new(
            "application/json".parse().unwrap(),
            br#"{"t":21.5}"#.to_vec(),
        )
        .with_meta("src", "mote-7")
        .with_meta("seq", "42")
        .with_meta("unit", "celsius");
        let f1 = encode_handoff(&msg);
        let f2 = encode_handoff(&msg);
        assert_eq!(&f1[..], &f2[..], "encoding must be deterministic");
        let back = decode_handoff(&f1).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn handoff_body_is_zero_copy() {
        let body = vec![7u8; 4096];
        let msg = UMessage::new("application/octet-stream".parse().unwrap(), body);
        let frame = encode_handoff(&msg);
        let _ = simnet::payload::take_stats();
        let back = decode_handoff(&frame).unwrap();
        let during = simnet::payload::take_stats();
        assert_eq!(back.body().len(), 4096);
        assert_eq!(during.bytes_copied, 0, "decoding must not copy the body");
    }

    #[test]
    fn handoff_rejects_garbage() {
        assert!(decode_handoff(&Payload::from_vec(vec![])).is_err());
        assert!(decode_handoff(&Payload::from_vec(vec![9, 0, 0])).is_err());
        // Unknown trace flag.
        assert!(decode_handoff(&Payload::from_vec(vec![VERSION, 7, 0, 0])).is_err());
        // Trace flag set but context truncated.
        assert!(decode_handoff(&Payload::from_vec(vec![VERSION, 1, 0xAA, 0xBB])).is_err());
        let mut good = encode_handoff(&UMessage::text("hi")).to_vec();
        good.push(0xFF); // trailing byte: length mismatch
        assert!(decode_handoff(&Payload::from_vec(good)).is_err());
    }

    #[test]
    fn handoff_trace_context_round_trips() {
        let msg = UMessage::text("click").with_meta("seq", "3");
        let trace = HandoffTrace {
            corr: (9u64 << 32) | 17,
            span: SpanId(42),
            src_shard: 1,
        };
        let frame = encode_handoff_traced(&msg, Some(trace));
        let (back, got) = decode_handoff_traced(&frame).unwrap();
        assert_eq!(back, msg);
        assert_eq!(got, Some(trace));

        // Untraced frames decode with no context, and the traced frame
        // is strictly larger by the 18-byte context.
        let plain = encode_handoff(&msg);
        let (back2, none) = decode_handoff_traced(&plain).unwrap();
        assert_eq!(back2, msg);
        assert_eq!(none, None);
        assert_eq!(frame.len(), plain.len() + 18);
    }

    #[test]
    fn empty_message_round_trips() {
        let msg = UMessage::text("");
        let back = decode_handoff(&encode_handoff(&msg)).unwrap();
        assert_eq!(back, msg);
    }
}
