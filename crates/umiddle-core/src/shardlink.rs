//! Cross-shard hand-off encoding for [`UMessage`]s.
//!
//! In a sharded simulation ([`simnet::shard`]) each shard is a separate
//! `World`: a message crossing a shard boundary travels as raw bytes
//! over the conductor's inter-shard link, not as an in-process value.
//! This module is the hand-off codec — a small self-describing frame
//! that carries a `UMessage` (MIME type, metadata, body) across the
//! boundary so the receiving shard's runtime can re-inject it into its
//! own semantic space.
//!
//! The layout is little-endian and length-prefixed throughout:
//!
//! ```text
//! [u8 version=1]
//! [u16 mime_len][mime bytes]
//! [u16 meta_count] ([u16 key_len][key][u16 val_len][val])*
//! [u32 body_len][body bytes]
//! ```
//!
//! Metadata keys are written in sorted order (the `UMessage` map is a
//! `BTreeMap`), so encoding is deterministic: the same message always
//! produces the same bytes, which keeps sharded runs byte-diffable.

use simnet::{Payload, PayloadBuilder};

use crate::error::{CoreError, CoreResult};
use crate::message::UMessage;

/// Current hand-off frame version.
const VERSION: u8 = 1;

/// Encodes a message into one hand-off frame (single allocation).
pub fn encode_handoff(msg: &UMessage) -> Payload {
    let mime = msg.mime().to_string();
    let mut b = PayloadBuilder::with_capacity(16 + mime.len() + msg.size());
    b.push(VERSION);
    b.u16_le(mime.len() as u16);
    b.extend_from_slice(mime.as_bytes());
    let metas: Vec<(&str, &str)> = msg.metas().collect();
    b.u16_le(metas.len() as u16);
    for (k, v) in metas {
        b.u16_le(k.len() as u16);
        b.extend_from_slice(k.as_bytes());
        b.u16_le(v.len() as u16);
        b.extend_from_slice(v.as_bytes());
    }
    let body = msg.body();
    b.u32_le(body.len() as u32);
    b.extend_from_slice(body);
    b.freeze()
}

/// Decodes a hand-off frame back into a [`UMessage`].
///
/// # Errors
///
/// Returns [`CoreError::Decode`] for a truncated frame, an unknown
/// version, a malformed MIME type, or non-UTF-8 metadata.
pub fn decode_handoff(frame: &Payload) -> CoreResult<UMessage> {
    let bytes: &[u8] = frame;
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> CoreResult<&[u8]> {
        let end = at
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| CoreError::Decode("truncated shard hand-off frame".into()))?;
        let s = &bytes[*at..end];
        *at = end;
        Ok(s)
    };
    let version = take(&mut at, 1)?[0];
    if version != VERSION {
        return Err(CoreError::Decode(format!(
            "unknown shard hand-off version {version}"
        )));
    }
    let take_u16 = |at: &mut usize| -> CoreResult<usize> {
        let s = take(at, 2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]) as usize)
    };
    let take_str = |at: &mut usize| -> CoreResult<String> {
        let n = take_u16(at)?;
        String::from_utf8(take(at, n)?.to_vec())
            .map_err(|_| CoreError::Decode("non-UTF-8 string in shard hand-off".into()))
    };

    let mime = take_str(&mut at)?.parse()?;
    let meta_count = take_u16(&mut at)?;
    let mut metas = Vec::with_capacity(meta_count);
    for _ in 0..meta_count {
        let k = take_str(&mut at)?;
        let v = take_str(&mut at)?;
        metas.push((k, v));
    }
    let body_len = {
        let s = take(&mut at, 4)?;
        u32::from_le_bytes([s[0], s[1], s[2], s[3]]) as usize
    };
    if at + body_len != bytes.len() {
        return Err(CoreError::Decode(format!(
            "shard hand-off body length {body_len} does not match frame ({} bytes left)",
            bytes.len() - at
        )));
    }
    // O(1) slice of the arriving payload: the body crosses the shard
    // boundary without a copy.
    let body = frame.slice(at..at + body_len);
    let mut msg = UMessage::new(mime, body);
    for (k, v) in metas {
        msg = msg.with_meta(k, v);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_round_trips_and_is_deterministic() {
        let msg = UMessage::new(
            "application/json".parse().unwrap(),
            br#"{"t":21.5}"#.to_vec(),
        )
        .with_meta("src", "mote-7")
        .with_meta("seq", "42")
        .with_meta("unit", "celsius");
        let f1 = encode_handoff(&msg);
        let f2 = encode_handoff(&msg);
        assert_eq!(&f1[..], &f2[..], "encoding must be deterministic");
        let back = decode_handoff(&f1).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn handoff_body_is_zero_copy() {
        let body = vec![7u8; 4096];
        let msg = UMessage::new("application/octet-stream".parse().unwrap(), body);
        let frame = encode_handoff(&msg);
        let _ = simnet::payload::take_stats();
        let back = decode_handoff(&frame).unwrap();
        let during = simnet::payload::take_stats();
        assert_eq!(back.body().len(), 4096);
        assert_eq!(during.bytes_copied, 0, "decoding must not copy the body");
    }

    #[test]
    fn handoff_rejects_garbage() {
        assert!(decode_handoff(&Payload::from_vec(vec![])).is_err());
        assert!(decode_handoff(&Payload::from_vec(vec![9, 0, 0])).is_err());
        let mut good = encode_handoff(&UMessage::text("hi")).to_vec();
        good.push(0xFF); // trailing byte: length mismatch
        assert!(decode_handoff(&Payload::from_vec(good)).is_err());
    }

    #[test]
    fn empty_message_round_trips() {
        let msg = UMessage::text("");
        let back = decode_handoff(&encode_handoff(&msg)).unwrap();
        assert_eq!(back, msg);
    }
}
