//! Sharded-kernel equivalence and safety battery.
//!
//! The core property mirrors PR 6's batched-vs-unbatched battery: for a
//! random multi-wing topology, running the federation on 1, 2 or 4
//! shards produces byte-identical per-wing observations — every
//! delivery (times included), every wing-scoped trace line, every
//! wing-scoped span record, every wing-scoped counter. The partitioning
//! is allowed to change *where* work runs, never *what* happens or
//! *when*. The incident plane rides the same property: bundles the
//! trigger plane snapshots must be byte-identical across runs at any
//! shard count.

use simnet::shard::{run_sharded, ShardPlan};
use simnet::{
    check_cases, Addr, BurnRateRule, Ctx, Datagram, IncidentConfig, Objective, Process,
    SamplerConfig, SegmentConfig, ShardConfig, SimDuration, SimError, SimTime, SloKind,
    TelemetryConfig, World,
};

/// Port the local sink listens on inside each wing.
const SINK_PORT: u16 = 9;
/// Port the cross-shard ingress binds inside each wing.
const INGRESS_PORT: u16 = 41;

/// One randomly-drawn wing of the federation.
#[derive(Clone)]
struct WingSpec {
    per_burst: u32,
    bursts: u32,
    size: usize,
    interval: SimDuration,
    sink_cost: SimDuration,
}

/// Sends `per_burst` local datagrams plus one cross-shard message per
/// timer firing, `bursts` times, logging everything wing-scoped.
struct WingSender {
    wing: usize,
    spec: WingSpec,
    local: Addr,
    dst_shard: u16,
    dst_inlet: u16,
    seq: u8,
}

impl Process for WingSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(7).unwrap();
        let interval = self.spec.interval;
        ctx.set_timer(interval, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        for _ in 0..self.spec.per_burst {
            ctx.send_to(7, self.local, vec![self.seq; self.spec.size])
                .unwrap();
            self.seq = self.seq.wrapping_add(1);
        }
        ctx.send_shard(self.dst_shard, self.dst_inlet, vec![self.seq; 4])
            .unwrap();
        ctx.bump(&format!("wing{}.sent", self.wing), 1);
        self.spec.bursts -= 1;
        if self.spec.bursts > 0 {
            let interval = self.spec.interval;
            ctx.set_timer(interval, 0);
        }
    }
}

/// Records local deliveries; the optional CPU cost exercises the
/// busy-deferral path inside a shard's window.
struct WingSink {
    wing: usize,
    name: String,
    cost: SimDuration,
}

impl Process for WingSink {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(SINK_PORT).unwrap();
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
        ctx.bump(&format!("wing{}.local_recv", self.wing), 1);
        ctx.trace(format!("local {} {}", d.data[0], d.data.len()));
        // Correlate on the payload sequence byte: span records become
        // part of the per-wing history the battery diffs across shard
        // counts.
        ctx.span(
            1 + u64::from(d.data[0]),
            "wing.local.recv",
            format!("bytes={}", d.data.len()),
        );
        if !self.cost.is_zero() {
            ctx.busy(self.cost);
        }
    }
}

/// Receives the ring's cross-shard traffic for one wing. Deliberately
/// does not record the source address: a cross arrival's source port
/// encodes the sending shard id, which legitimately differs across
/// shard counts.
struct WingIngress {
    wing: usize,
    name: String,
}

impl Process for WingIngress {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.register_shard_inlet(self.wing as u16, INGRESS_PORT)
            .unwrap();
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
        ctx.bump(&format!("wing{}.cross_recv", self.wing), 1);
        ctx.trace(format!("cross {} {}", d.data[0], d.data.len()));
        ctx.span(
            1 + u64::from(d.data[0]),
            "wing.cross.recv",
            format!("bytes={}", d.data.len()),
        );
    }
}

/// Adds wing `w` to a world: a switched segment, a sink, a cross-shard
/// ingress, and a sender that feeds the local sink and the next wing in
/// the ring. Full-duplex, lossless media only: contention backoff and
/// loss draw from the world RNG, whose stream is deliberately per-shard.
fn add_wing(world: &mut World, w: usize, spec: &WingSpec, dst_shard: u16, dst_inlet: u16) {
    let seg = world.add_segment(SegmentConfig::ethernet_100mbps_switch());
    let sink_node = world.add_node(format!("w{w}.sink-host"));
    let send_node = world.add_node(format!("w{w}.send-host"));
    world.attach(sink_node, seg).unwrap();
    world.attach(send_node, seg).unwrap();
    world.add_process(
        sink_node,
        Box::new(WingSink {
            wing: w,
            name: format!("w{w}.sink"),
            cost: spec.sink_cost,
        }),
    );
    world.add_process(
        sink_node,
        Box::new(WingIngress {
            wing: w,
            name: format!("w{w}.ingress"),
        }),
    );
    world.add_process(
        send_node,
        Box::new(WingSender {
            wing: w,
            spec: spec.clone(),
            local: Addr::new(sink_node, SINK_PORT),
            dst_shard,
            dst_inlet,
            seq: 0,
        }),
    );
}

/// Everything one wing observed: trace lines from its processes, its
/// span records (times, stages, details, correlation ids — span ids are
/// excluded, since allocation order across wings sharing a world is not
/// wing-scoped), and its `wing{w}.*` counters.
type WingObs = (Vec<String>, Vec<String>, Vec<(String, u64)>);

/// Runs the `specs` federation on `shards` shards and returns per-wing
/// observations, merged across shard worlds.
fn run_wings(
    specs: &[WingSpec],
    shards: u16,
    lookahead: SimDuration,
    link_latency: SimDuration,
    seed: u64,
) -> Vec<WingObs> {
    let wings = specs.len();
    let plan = ShardPlan::new(shards, lookahead)
        .with_link_latency(link_latency)
        .without_wall_health();
    let report = run_sharded(
        &plan,
        seed,
        SimTime::from_secs(2),
        |world, info| {
            for (w, spec) in specs.iter().enumerate() {
                if w % info.shards as usize != info.shard as usize {
                    continue;
                }
                let dst_wing = (w + 1) % wings;
                let dst_shard = (dst_wing % info.shards as usize) as u16;
                add_wing(world, w, spec, dst_shard, dst_wing as u16);
            }
            Ok(())
        },
        |world, info| {
            let mut per_wing: Vec<(usize, WingObs)> = Vec::new();
            for w in 0..wings {
                if w % info.shards as usize != info.shard as usize {
                    continue;
                }
                let tag = format!("w{w}.");
                let lines: Vec<String> = world
                    .trace()
                    .events()
                    .iter()
                    .filter(|e| e.source.starts_with(&tag))
                    .map(|e| format!("{} {} {}", e.time.as_nanos(), e.source, e.message))
                    .collect();
                let spans: Vec<String> = world
                    .trace()
                    .spans()
                    .iter()
                    .filter(|s| s.source.starts_with(&tag))
                    .map(|s| {
                        format!(
                            "{} {} {} {} corr={}",
                            s.start.as_nanos(),
                            s.source,
                            s.stage,
                            s.detail,
                            s.corr
                        )
                    })
                    .collect();
                let prefix = format!("wing{w}.");
                let counters: Vec<(String, u64)> = world
                    .trace()
                    .metrics()
                    .snapshot()
                    .counters
                    .into_iter()
                    .filter(|(k, _)| k.starts_with(&prefix))
                    .collect();
                per_wing.push((w, (lines, spans, counters)));
            }
            per_wing
        },
    )
    .expect("sharded run");

    let mut merged: Vec<Option<WingObs>> = (0..wings).map(|_| None).collect();
    for shard in report.shards {
        for (w, obs) in shard.result {
            merged[w] = Some(obs);
        }
    }
    merged
        .into_iter()
        .map(|o| o.expect("every wing collected"))
        .collect()
}

/// For any random ring federation, the per-wing observable history is
/// independent of the shard count.
#[test]
fn sharded_run_matches_single_threaded() {
    check_cases("sharded_run_matches_single_threaded", 16, |_, rng| {
        let wings = rng.gen_range(1usize..6);
        let specs: Vec<WingSpec> = (0..wings)
            .map(|_| WingSpec {
                per_burst: rng.gen_range(1u32..8),
                bursts: rng.gen_range(2u32..6),
                size: rng.gen_range(1usize..256),
                interval: SimDuration::from_micros(rng.gen_range(500u64..20_000)),
                sink_cost: if rng.gen_bool(0.5) {
                    SimDuration::from_micros(rng.gen_range(10u64..300))
                } else {
                    SimDuration::ZERO
                },
            })
            .collect();
        let seed = rng.gen_range(0u64..1000);
        let lookahead = SimDuration::from_micros(rng.gen_range(200u64..5_000));
        let link_latency = lookahead * rng.gen_range(1u64..3);

        let single = run_wings(&specs, 1, lookahead, link_latency, seed);
        for shards in [2u16, 4] {
            let sharded = run_wings(&specs, shards, lookahead, link_latency, seed);
            assert_eq!(
                single, sharded,
                "per-wing history diverged at {shards} shards ({wings} wings)"
            );
        }
        // The ring actually exercised the cross-shard path, and the
        // trace diff actually compared span records, not empty lists.
        let cross: u64 = single
            .iter()
            .flat_map(|(_, _, counters)| counters.iter())
            .filter(|(k, _)| k.ends_with(".cross_recv"))
            .map(|(_, v)| *v)
            .sum();
        assert!(cross > 0, "no cross traffic delivered");
        let spans: usize = single.iter().map(|(_, spans, _)| spans.len()).sum();
        assert!(spans > 0, "no span records diffed");
    });
}

/// Two runs at a fixed shard count are byte-identical, wing scoping
/// aside: full trace + metrics of every shard world compared.
#[test]
fn fixed_shard_count_double_run_is_byte_identical() {
    let specs = [
        WingSpec {
            per_burst: 4,
            bursts: 4,
            size: 64,
            interval: SimDuration::from_micros(900),
            sink_cost: SimDuration::from_micros(50),
        },
        WingSpec {
            per_burst: 2,
            bursts: 5,
            size: 200,
            interval: SimDuration::from_micros(1_700),
            sink_cost: SimDuration::ZERO,
        },
        WingSpec {
            per_burst: 6,
            bursts: 3,
            size: 16,
            interval: SimDuration::from_micros(650),
            sink_cost: SimDuration::ZERO,
        },
    ];
    let run = || {
        let plan = ShardPlan::new(3, SimDuration::from_millis(1)).without_wall_health();
        let report = run_sharded(
            &plan,
            7,
            SimTime::from_secs(2),
            |world, info| {
                for (w, spec) in specs.iter().enumerate() {
                    if w % info.shards as usize != info.shard as usize {
                        continue;
                    }
                    let dst_wing = (w + 1) % specs.len();
                    add_wing(
                        world,
                        w,
                        spec,
                        (dst_wing % info.shards as usize) as u16,
                        dst_wing as u16,
                    );
                }
                Ok(())
            },
            |world, _| {
                let events: Vec<String> = world
                    .trace()
                    .events()
                    .iter()
                    .map(|e| e.to_string())
                    .collect();
                let spans: Vec<String> = world
                    .trace()
                    .spans()
                    .iter()
                    .map(|s| format!("{s:?}"))
                    .collect();
                (events, spans, world.trace().metrics().snapshot().to_json())
            },
        )
        .expect("sharded run");
        report
            .shards
            .into_iter()
            .map(|s| (s.shard, s.events, s.cross_sent, s.result))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Telemetry objectives for the incident determinism test: wing 0's
/// send counter must stay live. Its sender exhausts its bursts early
/// in the run, so the liveness SLO deterministically burns through its
/// budget and fires — tripping the trigger plane on whichever shard
/// hosts the objective's sampler.
fn wing_telemetry() -> TelemetryConfig {
    TelemetryConfig {
        sampler: SamplerConfig {
            interval: SimDuration::from_millis(100),
            window: 16,
        },
        objectives: vec![Objective {
            name: "wing0-liveness".to_owned(),
            subject: "wing:w0".to_owned(),
            kind: SloKind::Liveness {
                counter: "wing0.sent".to_owned(),
                budget_ppm: 100_000,
            },
            warning: BurnRateRule {
                long_intervals: 4,
                short_intervals: 2,
                factor_milli: 2_500,
            },
            firing: BurnRateRule {
                long_intervals: 4,
                short_intervals: 2,
                factor_milli: 5_000,
            },
        }],
        liveness_timeout: SimDuration::from_millis(300),
    }
}

/// Keeps a shard's event queue non-empty until `until`: the sampler
/// disarms on an idle world, and the wings drain their bursts within
/// milliseconds — long before the liveness SLO can burn through its
/// budget.
struct Heartbeat {
    until: SimTime,
}

impl Process for Heartbeat {
    fn name(&self) -> &str {
        "heartbeat"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if ctx.now() < self.until {
            ctx.set_timer(SimDuration::from_millis(50), 0);
        }
    }
}

/// Incident bundles snapshotted mid-run are byte-identical across two
/// runs of the same seed, at 2- and 4-shard interleavings: the flight
/// recorder's ring, the sampler, the SLO engine and the trigger plane
/// all sit on the deterministic path even with shards on real threads.
#[test]
fn sharded_incident_bundles_are_deterministic_across_interleavings() {
    let specs = [
        WingSpec {
            per_burst: 3,
            bursts: 3,
            size: 48,
            interval: SimDuration::from_micros(800),
            sink_cost: SimDuration::from_micros(40),
        },
        WingSpec {
            per_burst: 2,
            bursts: 4,
            size: 120,
            interval: SimDuration::from_micros(1_300),
            sink_cost: SimDuration::ZERO,
        },
    ];
    let run = |shards: u16| {
        let plan = ShardPlan::new(shards, SimDuration::from_millis(1)).without_wall_health();
        let report = run_sharded(
            &plan,
            11,
            SimTime::from_secs(2),
            |world, info| {
                world.enable_flight_recorder(IncidentConfig::default());
                world.enable_telemetry(wing_telemetry());
                let beat = world.add_node(format!("s{}.beat-host", info.shard));
                world.add_process(
                    beat,
                    Box::new(Heartbeat {
                        until: SimTime::from_secs(2),
                    }),
                );
                for (w, spec) in specs.iter().enumerate() {
                    if w % info.shards as usize != info.shard as usize {
                        continue;
                    }
                    let dst_wing = (w + 1) % specs.len();
                    add_wing(
                        world,
                        w,
                        spec,
                        (dst_wing % info.shards as usize) as u16,
                        dst_wing as u16,
                    );
                }
                Ok(())
            },
            |world, info| {
                let bundles: Vec<String> = world.incidents().iter().map(|b| b.to_json()).collect();
                (info.shard, bundles)
            },
        )
        .expect("sharded run");
        report
            .shards
            .into_iter()
            .map(|s| s.result)
            .collect::<Vec<_>>()
    };
    for shards in [2u16, 4] {
        let first = run(shards);
        let total: usize = first.iter().map(|(_, bundles)| bundles.len()).sum();
        assert!(total > 0, "no incident bundles captured at {shards} shards");
        // Every bundle stamps the shard that captured it.
        for (shard, bundles) in &first {
            for json in bundles {
                assert!(
                    json.contains(&format!("\"shard\": {shard}")),
                    "bundle on shard {shard} lacks its shard stamp"
                );
            }
        }
        assert_eq!(
            first,
            run(shards),
            "incident bundles diverged across runs at {shards} shards"
        );
    }
}

/// A cross-shard link faster than the lookahead would let a message
/// land inside a window a sibling already executed; the configuration
/// is rejected when the world is built, with an explanatory error.
#[test]
fn lookahead_violation_rejected_at_build_time() {
    let mut world = World::new(0);
    let err = world
        .configure_shard(ShardConfig {
            shard: 0,
            shards: 2,
            lookahead: SimDuration::from_millis(1),
            link_latency: SimDuration::from_micros(400),
        })
        .unwrap_err();
    assert!(matches!(err, SimError::ShardLookahead { .. }));
    let msg = err.to_string();
    assert!(
        msg.contains("lookahead") && msg.contains("link latency"),
        "error must explain the bound: {msg}"
    );

    // Zero lookahead is equally unbounded.
    let err = world
        .configure_shard(ShardConfig {
            shard: 0,
            shards: 2,
            lookahead: SimDuration::ZERO,
            link_latency: SimDuration::ZERO,
        })
        .unwrap_err();
    assert!(matches!(err, SimError::ShardLookahead { .. }));

    // The conductor validates before spawning any thread.
    let plan = ShardPlan::new(2, SimDuration::from_millis(1))
        .with_link_latency(SimDuration::from_micros(1));
    let err = run_sharded(&plan, 0, SimTime::from_secs(1), |_, _| Ok(()), |_, _| ())
        .expect_err("bad plan must be rejected");
    assert!(matches!(err, SimError::ShardLookahead { .. }));

    // Out-of-range identities are build errors too.
    let err = world
        .configure_shard(ShardConfig {
            shard: 3,
            shards: 2,
            lookahead: SimDuration::from_millis(1),
            link_latency: SimDuration::from_millis(1),
        })
        .unwrap_err();
    assert!(matches!(
        err,
        SimError::ShardUnknown {
            shard: 3,
            shards: 2
        }
    ));
}

/// Cross-shard operations on a standalone world fail loudly instead of
/// silently dropping traffic.
#[test]
fn cross_shard_ops_require_a_sharded_world() {
    struct Probe;
    impl Process for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            assert!(ctx.shard().is_none());
            assert_eq!(
                ctx.send_shard(0, 0, vec![1u8]).unwrap_err(),
                SimError::NotSharded
            );
            assert_eq!(
                ctx.register_shard_inlet(0, 40).unwrap_err(),
                SimError::NotSharded
            );
        }
    }
    let mut world = World::new(0);
    let n = world.add_node("n");
    world.add_process(n, Box::new(Probe));
    world.run_until_idle();
}

/// A cross-shard message arrives exactly one link latency after the
/// sender's emit time, and out-of-range destinations are rejected.
#[test]
fn cross_message_timing_is_exact() {
    struct At;
    impl Process for At {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.register_shard_inlet(0, INGRESS_PORT).unwrap();
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, _d: Datagram) {
            ctx.bump("probe.arrivals", 1);
            ctx.gauge_set("probe.arrival_ns", ctx.now().as_nanos() as i64);
        }
    }
    struct SendOnce;
    impl Process for SendOnce {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(3), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            // Modeled CPU first: the message leaves at the emit time.
            ctx.busy(SimDuration::from_micros(250));
            ctx.send_shard(0, 0, vec![9u8]).unwrap();
            assert!(matches!(
                ctx.send_shard(7, 0, vec![9u8]),
                Err(SimError::ShardUnknown { shard: 7, .. })
            ));
        }
    }
    let plan = ShardPlan::new(1, SimDuration::from_millis(2)).without_wall_health();
    let report = run_sharded(
        &plan,
        0,
        SimTime::from_secs(1),
        |world, _| {
            let n = world.add_node("n");
            world.add_process(n, Box::new(At));
            world.add_process(n, Box::new(SendOnce));
            Ok(())
        },
        |world, _| {
            let snap = world.trace().metrics().snapshot();
            (
                snap.counters.get("probe.arrivals").copied(),
                snap.gauges.get("probe.arrival_ns").copied(),
            )
        },
    )
    .expect("run");
    // Sent at t=3ms with 250us of modeled CPU, link latency 2ms.
    let expected = SimTime::from_micros(3_250) + SimDuration::from_millis(2);
    assert_eq!(
        report.shards[0].result,
        (Some(1), Some(expected.as_nanos() as i64))
    );
}

/// The merged pending-work horizon feeds scheduler telemetry: messages
/// the conductor still holds count as pending work, and per-shard
/// scopes are published alongside the global ones.
#[test]
fn shard_scopes_fold_external_pending() {
    let mut world = World::new(0);
    world
        .configure_shard(ShardConfig {
            shard: 1,
            shards: 2,
            lookahead: SimDuration::from_millis(1),
            link_latency: SimDuration::from_millis(1),
        })
        .unwrap();
    world.note_external_pending(5);
    world.run_until(SimTime::from_millis(10));
    let snap = world.trace().metrics().snapshot();
    assert_eq!(snap.gauges.get("sched.events_pending"), Some(&5));
    assert_eq!(snap.gauges.get("shard.s1.sched.events_pending"), Some(&5));
    assert!(snap.histograms.contains_key("shard.s1.sched.lag_ns"));
}
