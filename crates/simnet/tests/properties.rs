//! Property-based tests of simulator invariants: reliable delivery under
//! loss, medium conservation, and determinism.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{
    check_cases, Addr, Ctx, Datagram, Process, SegmentConfig, SimDuration, SimError, SimTime,
    StreamEvent, StreamId, World,
};

/// A sink that records received bytes and close events.
struct Sink {
    received: Rc<RefCell<Vec<u8>>>,
    closed: Rc<RefCell<bool>>,
}

impl Process for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(80).unwrap();
    }
    fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
        match ev {
            StreamEvent::Data(d) => self.received.borrow_mut().extend(d),
            StreamEvent::Closed => *self.closed.borrow_mut() = true,
            _ => {}
        }
    }
}

/// A sender that pushes a fixed payload in caller-chosen chunks.
struct Sender {
    target: Addr,
    payload: Vec<u8>,
    chunk: usize,
    sent: usize,
    stream: Option<StreamId>,
}

impl Sender {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let stream = self.stream.expect("connected");
        while self.sent < self.payload.len() {
            let end = (self.sent + self.chunk).min(self.payload.len());
            match ctx.stream_send(stream, self.payload[self.sent..end].to_vec()) {
                Ok(()) => self.sent = end,
                Err(SimError::StreamBufferFull(_)) => return,
                Err(e) => panic!("send failed: {e}"),
            }
        }
        ctx.stream_close(stream);
    }
}

impl Process for Sender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.stream = Some(ctx.connect(self.target).unwrap());
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
        if matches!(ev, StreamEvent::Connected | StreamEvent::Writable) {
            self.pump(ctx);
        }
    }
}

fn transfer(seed: u64, loss: f64, payload: Vec<u8>, chunk: usize) -> (Vec<u8>, bool) {
    let mut world = World::new(seed);
    let seg = world.add_segment(SegmentConfig::ethernet_10mbps_hub().with_loss(loss));
    let a = world.add_node("a");
    let b = world.add_node("b");
    world.attach(a, seg).unwrap();
    world.attach(b, seg).unwrap();
    let received = Rc::new(RefCell::new(Vec::new()));
    let closed = Rc::new(RefCell::new(false));
    world.add_process(
        b,
        Box::new(Sink {
            received: Rc::clone(&received),
            closed: Rc::clone(&closed),
        }),
    );
    world.add_process(
        a,
        Box::new(Sender {
            target: Addr::new(b, 80),
            payload,
            chunk: chunk.max(1),
            sent: 0,
            stream: None,
        }),
    );
    world.run_until(SimTime::from_secs(300));
    let r = received.borrow().clone();
    let c = *closed.borrow();
    (r, c)
}

/// Streams deliver every byte, in order, exactly once — under any
/// payload, any chunking, and up to 10% frame loss.
#[test]
fn stream_delivery_is_exact_under_loss() {
    check_cases("stream_delivery_is_exact_under_loss", 24, |_, rng| {
        let seed = rng.gen_range(0u64..1000);
        let loss = rng.gen_f64() * 0.10;
        let len = rng.gen_range(1usize..20_000);
        let payload = rng.gen_bytes(len);
        let chunk = rng.gen_range(1usize..4096);
        let (received, closed) = transfer(seed, loss, payload.clone(), chunk);
        assert_eq!(received, payload);
        assert!(closed, "FIN delivered");
    });
}

/// The same seed and inputs give byte-identical outcomes (trace
/// event times included): the simulator is deterministic.
#[test]
fn same_seed_same_world() {
    check_cases("same_seed_same_world", 24, |_, rng| {
        let seed = rng.gen_range(0u64..1000);
        let len = rng.gen_range(1usize..5_000);
        let payload = rng.gen_bytes(len);
        let a = transfer(seed, 0.05, payload.clone(), 512);
        let b = transfer(seed, 0.05, payload, 512);
        assert_eq!(a, b);
    });
}

/// Medium conservation: a segment's busy time never exceeds elapsed
/// virtual time (a half-duplex medium cannot be >100% utilized).
#[test]
fn medium_utilization_bounded() {
    check_cases("medium_utilization_bounded", 24, |_, rng| {
        let seed = rng.gen_range(0u64..1000);
        let len = rng.gen_range(1000usize..50_000);
        let payload = rng.gen_bytes(len);
        let mut world = World::new(seed);
        let seg = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let a = world.add_node("a");
        let b = world.add_node("b");
        world.attach(a, seg).unwrap();
        world.attach(b, seg).unwrap();
        let received = Rc::new(RefCell::new(Vec::new()));
        let closed = Rc::new(RefCell::new(false));
        world.add_process(b, Box::new(Sink { received, closed }));
        world.add_process(
            a,
            Box::new(Sender {
                target: Addr::new(b, 80),
                payload,
                chunk: 1024,
                sent: 0,
                stream: None,
            }),
        );
        world.run_until(SimTime::from_secs(120));
        let stats = world.segment_stats(seg).unwrap();
        let elapsed = SimDuration::from_secs(120);
        assert!(stats.busy <= elapsed, "busy {} > elapsed", stats.busy);
        assert!(stats.utilization(elapsed) <= 1.0);
    });
}

/// Timers fire in order regardless of insertion order.
#[test]
fn timer_ordering_is_total() {
    struct Many {
        fired: Rc<RefCell<Vec<u64>>>,
    }
    impl Process for Many {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Insert out of order.
            for (delay_ms, token) in [(30u64, 3u64), (10, 1), (20, 2), (40, 4), (15, 15)] {
                ctx.set_timer(SimDuration::from_millis(delay_ms), token);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.fired.borrow_mut().push(token);
        }
    }
    let mut world = World::new(0);
    let n = world.add_node("n");
    let fired = Rc::new(RefCell::new(Vec::new()));
    world.add_process(
        n,
        Box::new(Many {
            fired: Rc::clone(&fired),
        }),
    );
    world.run_until_idle();
    assert_eq!(fired.borrow().as_slice(), &[1, 15, 2, 3, 4]);
}

/// A sender that streams zero-copy slices of one shared [`Payload`].
struct PayloadSender {
    target: Addr,
    payload: simnet::Payload,
    chunk: usize,
    sent: usize,
    stream: Option<StreamId>,
}

impl PayloadSender {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let stream = self.stream.expect("connected");
        while self.sent < self.payload.len() {
            let end = (self.sent + self.chunk).min(self.payload.len());
            match ctx.stream_send(stream, self.payload.slice(self.sent..end)) {
                Ok(()) => self.sent = end,
                Err(SimError::StreamBufferFull(_)) => return,
                Err(e) => panic!("send failed: {e}"),
            }
        }
        ctx.stream_close(stream);
    }
}

impl Process for PayloadSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.stream = Some(ctx.connect(self.target).unwrap());
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
        if matches!(ev, StreamEvent::Connected | StreamEvent::Writable) {
            self.pump(ctx);
        }
    }
}

/// Random slice/split/extend pipelines over a [`Payload`] agree with the
/// same operations on an eagerly-copied `Vec<u8>` model.
#[test]
fn payload_views_match_vec_model() {
    check_cases("payload_views_match_vec_model", 48, |_, rng| {
        let len = rng.gen_range(0usize..4096);
        let bytes = rng.gen_bytes(len);
        let mut p = simnet::Payload::from_vec(bytes.clone());
        let mut model = bytes;
        for _ in 0..8 {
            match rng.gen_range(0u32..3) {
                0 => {
                    let a = rng.gen_range(0usize..=model.len());
                    let b = rng.gen_range(a..=model.len());
                    p = p.slice(a..b);
                    model = model[a..b].to_vec();
                }
                1 => {
                    let n = rng.gen_range(0usize..=model.len());
                    let head = p.split_to(n);
                    let model_head: Vec<u8> = model.drain(..n).collect();
                    assert_eq!(head, model_head[..], "split_to head");
                }
                _ => {
                    let extra_len = rng.gen_range(0usize..64);
                    let extra = rng.gen_bytes(extra_len);
                    let mut b = simnet::PayloadBuilder::new();
                    b.extend_from_slice(&p);
                    b.extend_from_slice(&extra);
                    p = b.freeze();
                    model.extend_from_slice(&extra);
                }
            }
            assert_eq!(p, model[..], "payload diverged from model");
        }
    });
}

/// Cloning and slicing a [`Payload`] share the backing buffer (no bytes
/// move), and iteration equals slice access.
#[test]
fn payload_clones_are_cheap_and_identical() {
    check_cases("payload_clones_are_cheap_and_identical", 24, |_, rng| {
        let len = rng.gen_range(1usize..4096);
        let bytes = rng.gen_bytes(len);
        let p = simnet::Payload::from_vec(bytes);
        simnet::payload::take_stats();
        let c = p.clone();
        let a = rng.gen_range(0usize..len);
        let b = rng.gen_range(a..=len);
        let s = p.slice(a..b);
        let moved = simnet::payload::take_stats().bytes_copied;
        assert_eq!(moved, 0, "clone/slice must not copy bytes");
        assert!(c.shares_buffer(&p), "clone shares the buffer");
        assert!(b == a || s.shares_buffer(&p), "slice shares the buffer");
        assert_eq!(c, p);
        assert_eq!(s, p[a..b]);
        let collected: Vec<u8> = s.clone().into_iter().collect();
        assert_eq!(collected, &p[a..b]);
    });
}

/// [`ChunkQueue`] take/peek over arbitrary chunkings agree with a flat
/// byte model.
#[test]
fn chunk_queue_matches_flat_model() {
    check_cases("chunk_queue_matches_flat_model", 32, |_, rng| {
        let len = rng.gen_range(0usize..8192);
        let bytes = rng.gen_bytes(len);
        let mut q = simnet::ChunkQueue::new();
        let mut fed = 0;
        while fed < len {
            let n = rng.gen_range(1usize..=(len - fed).min(512));
            q.push(simnet::Payload::copy_from_slice(&bytes[fed..fed + n]));
            fed += n;
        }
        let mut off = 0;
        while off < len {
            let want = rng.gen_range(1usize..=(len - off).min(777));
            let mut peeked = vec![0u8; want];
            let got = q.peek_into(&mut peeked);
            assert_eq!(got, want.min(q.len()));
            assert_eq!(&peeked[..got], &bytes[off..off + got], "peek_into");
            let taken = q.take(want);
            assert_eq!(taken, bytes[off..off + want], "take");
            off += want;
        }
        assert!(q.is_empty());
    });
}

/// Span trees reconstructed from arbitrary begin/end interleavings are
/// always well-formed: every recorded span lands in exactly one tree,
/// unclosed spans are reported, double-ends are no-ops, and
/// reconstruction never panics.
#[test]
fn span_trees_are_well_formed_under_any_interleaving() {
    check_cases(
        "span_trees_are_well_formed_under_any_interleaving",
        48,
        |_, rng| {
            let mut trace = simnet::Trace::new(4096);
            let corrs = [0u64, 7, 7 << 32, 0xbeef];
            let mut open: Vec<simnet::SpanId> = Vec::new();
            let mut now = 0u64;
            let ops = rng.gen_range(1usize..200);
            for i in 0..ops {
                now += rng.gen_range(0u64..1_000_000);
                let t = SimTime::from_nanos(now);
                let roll = rng.gen_range(0u32..10);
                if roll < 6 || open.is_empty() {
                    let corr = corrs[rng.gen_range(0usize..corrs.len())];
                    let id = trace.span_begin(corr, t, "prop", format!("stage{}", i % 7), "");
                    open.push(id);
                } else {
                    // End a random open span — not necessarily the
                    // innermost — and sometimes end it again.
                    let idx = rng.gen_range(0usize..open.len());
                    let id = if roll == 9 {
                        open[idx]
                    } else {
                        open.remove(idx)
                    };
                    trace.span_end(id, t);
                    trace.span_end(id, t);
                }
            }

            let spans = trace.spans();
            let trees = simnet::SpanTree::build_all(spans);
            let total: usize = trees.iter().map(simnet::SpanTree::span_count).sum();
            assert_eq!(total, spans.len(), "every span lands in exactly one tree");
            let unclosed: u64 = trees.iter().map(|t| t.unclosed).sum();
            assert_eq!(unclosed as usize, trace.open_spans(), "unclosed reported");
            for tree in &trees {
                assert!(spans.iter().any(|s| s.corr == tree.corr));
            }
        },
    );
}

/// The Perfetto and folded-stack exporters are pure functions of the
/// span log: replaying the same randomly generated begin/end schedule
/// into a fresh trace exports byte-identical artifacts.
#[test]
fn trace_exports_are_deterministic() {
    check_cases("trace_exports_are_deterministic", 24, |_, rng| {
        let ops: Vec<(u64, u64, u32)> = (0..rng.gen_range(1usize..120))
            .map(|_| {
                (
                    rng.gen_range(0u64..4),
                    rng.gen_range(0u64..1_000_000),
                    rng.gen_range(0u32..10),
                )
            })
            .collect();
        let build = |ops: &[(u64, u64, u32)]| {
            let mut trace = simnet::Trace::new(1024);
            let mut open: Vec<simnet::SpanId> = Vec::new();
            let mut now = 0u64;
            for (i, (corr, dt, roll)) in ops.iter().enumerate() {
                now += dt;
                let t = SimTime::from_nanos(now);
                if *roll < 6 || open.is_empty() {
                    open.push(trace.span_begin(
                        *corr,
                        t,
                        format!("src{corr}"),
                        format!("stage{}", i % 5),
                        "d",
                    ));
                } else {
                    let id = open.remove(*roll as usize % open.len());
                    trace.span_end(id, t);
                }
            }
            (
                simnet::perfetto_trace_json(trace.spans()),
                simnet::folded_stacks(trace.spans()),
            )
        };
        let (p1, f1) = build(&ops);
        let (p2, f2) = build(&ops);
        assert_eq!(p1, p2, "perfetto export must be byte-identical");
        assert_eq!(f1, f2, "folded export must be byte-identical");
        assert!(p1.contains("\"traceEvents\""));
    });
}

/// Payload accounting is per-run: bytes moved by one world — or by stray
/// work between runs — never leak into another world's snapshot when
/// both share a thread.
#[test]
fn payload_stats_do_not_leak_across_worlds() {
    // World A moves real bytes; its run folds the thread-local
    // accounting into its own metrics.
    let (received, _) = transfer(1, 0.0, vec![7u8; 10_000], 512);
    assert_eq!(received.len(), 10_000);

    // Stray payload work with no world running.
    drop(simnet::Payload::copy_from_slice(&[0u8; 4096]));

    // World B never touches payloads: its snapshot must show none.
    struct Idle;
    impl Process for Idle {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
    }
    let mut world = World::new(2);
    let n = world.add_node("n");
    world.add_process(n, Box::new(Idle));
    world.run_until(SimTime::from_secs(5));
    let snap = world.trace().metrics().snapshot();
    for key in [
        "payload.bytes_copied",
        "payload.allocs",
        "payload.shared_clones",
    ] {
        assert_eq!(
            snap.counters.get(key),
            None,
            "world B inherited another world's {key}: {:?}",
            snap.counters
        );
    }
}

/// Streams fed zero-copy [`Payload`] slices of one shared buffer still
/// deliver every byte exactly once under loss — retransmissions must not
/// depend on the sender's buffer being private.
#[test]
fn shared_payload_stream_reassembles_under_loss() {
    check_cases(
        "shared_payload_stream_reassembles_under_loss",
        16,
        |_, rng| {
            let seed = rng.gen_range(0u64..1000);
            let loss = rng.gen_f64() * 0.10;
            let len = rng.gen_range(1usize..20_000);
            let payload = rng.gen_bytes(len);
            let chunk = rng.gen_range(1usize..4096);

            let mut world = World::new(seed);
            let seg = world.add_segment(SegmentConfig::ethernet_10mbps_hub().with_loss(loss));
            let a = world.add_node("a");
            let b = world.add_node("b");
            world.attach(a, seg).unwrap();
            world.attach(b, seg).unwrap();
            let received = Rc::new(RefCell::new(Vec::new()));
            let closed = Rc::new(RefCell::new(false));
            world.add_process(
                b,
                Box::new(Sink {
                    received: Rc::clone(&received),
                    closed: Rc::clone(&closed),
                }),
            );
            world.add_process(
                a,
                Box::new(PayloadSender {
                    target: Addr::new(b, 80),
                    payload: simnet::Payload::from_vec(payload.clone()),
                    chunk: chunk.max(1),
                    sent: 0,
                    stream: None,
                }),
            );
            world.run_until(SimTime::from_secs(300));
            assert_eq!(*received.borrow(), payload);
            assert!(*closed.borrow(), "FIN delivered");
        },
    );
}

/// One randomly-drawn sender in the batch-plane equivalence scenario.
struct BurstSpec {
    target_port: u16,
    target_idx: usize,
    per_burst: u32,
    bursts: u32,
    size: usize,
    interval: SimDuration,
}

/// Sends `per_burst` datagrams per timer firing, `bursts` times.
struct SpecSender {
    target: Addr,
    per_burst: u32,
    bursts: u32,
    size: usize,
    interval: SimDuration,
    seq: u8,
}

impl Process for SpecSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(7).unwrap();
        let interval = self.interval;
        ctx.set_timer(interval, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        for _ in 0..self.per_burst {
            ctx.send_to(7, self.target, vec![self.seq; self.size])
                .unwrap();
            self.seq = self.seq.wrapping_add(1);
        }
        self.bursts -= 1;
        if self.bursts > 0 {
            let interval = self.interval;
            ctx.set_timer(interval, 0);
        }
    }
}

/// Records arrival instants and payload markers; optionally models
/// per-datagram CPU so the batch plane's busy-deferral path is hit too.
struct BatchSink {
    port: u16,
    got: Rc<RefCell<Vec<(SimTime, u8, usize)>>>,
    cost: SimDuration,
}

impl Process for BatchSink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(self.port).unwrap();
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
        self.got
            .borrow_mut()
            .push((ctx.now(), d.data[0], d.data.len()));
        if !self.cost.is_zero() {
            ctx.busy(self.cost);
        }
    }
}

/// Batched and unbatched dispatch are observationally identical: for any
/// random topology and load, a run under an adaptive `BatchPolicy`
/// produces the same deliveries (times included), the same trace events
/// and spans, and the same metrics — except the batch plane's own two
/// instruments (`sched.batch_size`, `dispatch.batched_frames`), which
/// only exist on the batched side.
#[test]
fn batched_dispatch_is_observationally_identical_to_unbatched() {
    check_cases(
        "batched_dispatch_is_observationally_identical_to_unbatched",
        16,
        |_, rng| {
            let seed = rng.gen_range(0u64..1000);
            let full_duplex = rng.gen_bool(0.6);
            let n_sinks = rng.gen_range(1usize..3);
            let sink_cost = if rng.gen_bool(0.5) {
                SimDuration::from_micros(rng.gen_range(10u64..500))
            } else {
                SimDuration::ZERO
            };
            let specs: Vec<BurstSpec> = (0..rng.gen_range(1usize..5))
                .map(|_| BurstSpec {
                    target_port: 9,
                    target_idx: rng.gen_range(0..n_sinks),
                    per_burst: rng.gen_range(1u32..13),
                    bursts: rng.gen_range(1u32..6),
                    size: rng.gen_range(1usize..256),
                    interval: SimDuration::from_micros(rng.gen_range(500u64..20_000)),
                })
                .collect();
            let policy = simnet::BatchPolicy {
                max_batch: rng.gen_range(2usize..33),
                adapt: rng.gen_bool(0.5),
            };

            let run = |policy: simnet::BatchPolicy| {
                let mut w = World::new(seed);
                w.set_batch_policy(policy);
                let seg = w.add_segment(if full_duplex {
                    SegmentConfig::ethernet_100mbps_switch()
                } else {
                    SegmentConfig::ethernet_10mbps_hub()
                });
                let sinks: Vec<_> = (0..n_sinks)
                    .map(|i| {
                        let n = w.add_node(format!("sink{i}"));
                        w.attach(n, seg).unwrap();
                        let got = Rc::new(RefCell::new(Vec::new()));
                        w.add_process(
                            n,
                            Box::new(BatchSink {
                                port: 9,
                                got: Rc::clone(&got),
                                cost: sink_cost,
                            }),
                        );
                        (n, got)
                    })
                    .collect();
                for (i, s) in specs.iter().enumerate() {
                    let n = w.add_node(format!("sender{i}"));
                    w.attach(n, seg).unwrap();
                    w.add_process(
                        n,
                        Box::new(SpecSender {
                            target: Addr::new(sinks[s.target_idx].0, s.target_port),
                            per_burst: s.per_burst,
                            bursts: s.bursts,
                            size: s.size,
                            interval: s.interval,
                            seq: 0,
                        }),
                    );
                }
                w.run_until(SimTime::from_secs(2));
                let deliveries: Vec<Vec<(SimTime, u8, usize)>> =
                    sinks.iter().map(|(_, got)| got.borrow().clone()).collect();
                let events = w.trace().events().to_vec();
                let spans = w.trace().spans().to_vec();
                let mut metrics = w.trace().metrics().snapshot();
                metrics.counters.remove("dispatch.batched_frames");
                metrics.histograms.remove("sched.batch_size");
                (deliveries, events, spans, metrics, w.events_processed())
            };

            let unbatched = run(simnet::BatchPolicy::unbatched());
            let batched = run(policy);
            assert_eq!(unbatched.0, batched.0, "deliveries must match");
            assert_eq!(unbatched.1, batched.1, "trace events must match");
            assert_eq!(unbatched.2, batched.2, "spans must match");
            assert_eq!(unbatched.3, batched.3, "metrics must match");
            if sink_cost.is_zero() {
                // Throughput accounting (events_processed) is itemized,
                // so it matches too — except under busy deferral, where
                // the unbatched side re-schedules each deferred datagram
                // as its own scheduler event while the batched side
                // re-schedules the whole tail as one (fewer scheduler
                // events under load is the plane's purpose).
                assert_eq!(unbatched.4, batched.4, "event accounting must match");
            }
        },
    );
}
