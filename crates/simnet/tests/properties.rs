//! Property-based tests of simulator invariants: reliable delivery under
//! loss, medium conservation, and determinism.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{
    check_cases, Addr, Ctx, Process, SegmentConfig, SimDuration, SimError, SimTime, StreamEvent,
    StreamId, World,
};

/// A sink that records received bytes and close events.
struct Sink {
    received: Rc<RefCell<Vec<u8>>>,
    closed: Rc<RefCell<bool>>,
}

impl Process for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(80).unwrap();
    }
    fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
        match ev {
            StreamEvent::Data(d) => self.received.borrow_mut().extend(d),
            StreamEvent::Closed => *self.closed.borrow_mut() = true,
            _ => {}
        }
    }
}

/// A sender that pushes a fixed payload in caller-chosen chunks.
struct Sender {
    target: Addr,
    payload: Vec<u8>,
    chunk: usize,
    sent: usize,
    stream: Option<StreamId>,
}

impl Sender {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let stream = self.stream.expect("connected");
        while self.sent < self.payload.len() {
            let end = (self.sent + self.chunk).min(self.payload.len());
            match ctx.stream_send(stream, self.payload[self.sent..end].to_vec()) {
                Ok(()) => self.sent = end,
                Err(SimError::StreamBufferFull(_)) => return,
                Err(e) => panic!("send failed: {e}"),
            }
        }
        ctx.stream_close(stream);
    }
}

impl Process for Sender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.stream = Some(ctx.connect(self.target).unwrap());
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
        if matches!(ev, StreamEvent::Connected | StreamEvent::Writable) {
            self.pump(ctx);
        }
    }
}

fn transfer(seed: u64, loss: f64, payload: Vec<u8>, chunk: usize) -> (Vec<u8>, bool) {
    let mut world = World::new(seed);
    let seg = world.add_segment(SegmentConfig::ethernet_10mbps_hub().with_loss(loss));
    let a = world.add_node("a");
    let b = world.add_node("b");
    world.attach(a, seg).unwrap();
    world.attach(b, seg).unwrap();
    let received = Rc::new(RefCell::new(Vec::new()));
    let closed = Rc::new(RefCell::new(false));
    world.add_process(
        b,
        Box::new(Sink {
            received: Rc::clone(&received),
            closed: Rc::clone(&closed),
        }),
    );
    world.add_process(
        a,
        Box::new(Sender {
            target: Addr::new(b, 80),
            payload,
            chunk: chunk.max(1),
            sent: 0,
            stream: None,
        }),
    );
    world.run_until(SimTime::from_secs(300));
    let r = received.borrow().clone();
    let c = *closed.borrow();
    (r, c)
}

/// Streams deliver every byte, in order, exactly once — under any
/// payload, any chunking, and up to 10% frame loss.
#[test]
fn stream_delivery_is_exact_under_loss() {
    check_cases("stream_delivery_is_exact_under_loss", 24, |_, rng| {
        let seed = rng.gen_range(0u64..1000);
        let loss = rng.gen_f64() * 0.10;
        let len = rng.gen_range(1usize..20_000);
        let payload = rng.gen_bytes(len);
        let chunk = rng.gen_range(1usize..4096);
        let (received, closed) = transfer(seed, loss, payload.clone(), chunk);
        assert_eq!(received, payload);
        assert!(closed, "FIN delivered");
    });
}

/// The same seed and inputs give byte-identical outcomes (trace
/// event times included): the simulator is deterministic.
#[test]
fn same_seed_same_world() {
    check_cases("same_seed_same_world", 24, |_, rng| {
        let seed = rng.gen_range(0u64..1000);
        let len = rng.gen_range(1usize..5_000);
        let payload = rng.gen_bytes(len);
        let a = transfer(seed, 0.05, payload.clone(), 512);
        let b = transfer(seed, 0.05, payload, 512);
        assert_eq!(a, b);
    });
}

/// Medium conservation: a segment's busy time never exceeds elapsed
/// virtual time (a half-duplex medium cannot be >100% utilized).
#[test]
fn medium_utilization_bounded() {
    check_cases("medium_utilization_bounded", 24, |_, rng| {
        let seed = rng.gen_range(0u64..1000);
        let len = rng.gen_range(1000usize..50_000);
        let payload = rng.gen_bytes(len);
        let mut world = World::new(seed);
        let seg = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let a = world.add_node("a");
        let b = world.add_node("b");
        world.attach(a, seg).unwrap();
        world.attach(b, seg).unwrap();
        let received = Rc::new(RefCell::new(Vec::new()));
        let closed = Rc::new(RefCell::new(false));
        world.add_process(b, Box::new(Sink { received, closed }));
        world.add_process(
            a,
            Box::new(Sender {
                target: Addr::new(b, 80),
                payload,
                chunk: 1024,
                sent: 0,
                stream: None,
            }),
        );
        world.run_until(SimTime::from_secs(120));
        let stats = world.segment_stats(seg).unwrap();
        let elapsed = SimDuration::from_secs(120);
        assert!(stats.busy <= elapsed, "busy {} > elapsed", stats.busy);
        assert!(stats.utilization(elapsed) <= 1.0);
    });
}

/// Timers fire in order regardless of insertion order.
#[test]
fn timer_ordering_is_total() {
    struct Many {
        fired: Rc<RefCell<Vec<u64>>>,
    }
    impl Process for Many {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Insert out of order.
            for (delay_ms, token) in [(30u64, 3u64), (10, 1), (20, 2), (40, 4), (15, 15)] {
                ctx.set_timer(SimDuration::from_millis(delay_ms), token);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.fired.borrow_mut().push(token);
        }
    }
    let mut world = World::new(0);
    let n = world.add_node("n");
    let fired = Rc::new(RefCell::new(Vec::new()));
    world.add_process(
        n,
        Box::new(Many {
            fired: Rc::clone(&fired),
        }),
    );
    world.run_until_idle();
    assert_eq!(fired.borrow().as_slice(), &[1, 15, 2, 3, 4]);
}
