//! Incident bundles: deterministic evidence snapshots cut by the
//! trigger plane.
//!
//! The flight recorder ([`Trace::enable_flight_recorder`](crate::Trace))
//! keeps the most recent trace window at full fidelity; this module is
//! the *consumer* of that window. When
//! [`World::enable_flight_recorder`](crate::World) is on, a **trigger
//! plane** watches every telemetry sample for:
//!
//! * a `BurnRateRule` ok→firing transition on any SLO objective,
//! * a change in the doctor's ranked `top_offenders` list,
//! * a shard panic (captured by the sharded conductor,
//!   [`crate::shard::run_sharded`]).
//!
//! Each trigger snapshots one [`IncidentBundle`]: the trace window
//! around the trigger, the live telemetry window, the SLO state-machine
//! history, the doctor report, and a topology digest — everything an
//! incident investigation needs, in one artifact. Because every field
//! derives from virtual time and seeded state, [`IncidentBundle::to_json`]
//! is byte-deterministic: two runs of the same seeded world produce
//! byte-identical bundles, which CI enforces with a double-run diff.

use crate::time::{SimDuration, SimTime};
use crate::trace::{push_json_string, SpanRecord};
use crate::AlertTransition;

/// What tripped the trigger plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// An SLO objective transitioned ok/warning → firing.
    SloFiring,
    /// The doctor's ranked offender list changed.
    OffenderRankChange,
    /// A shard thread panicked mid-run.
    ShardPanic,
}

impl TriggerKind {
    /// Stable kebab-case name, used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            TriggerKind::SloFiring => "slo-firing",
            TriggerKind::OffenderRankChange => "offender-rank-change",
            TriggerKind::ShardPanic => "shard-panic",
        }
    }
}

/// Configuration of the per-world incident recorder.
#[derive(Debug, Clone, Copy)]
pub struct IncidentConfig {
    /// Capacity of the flight-recorder ring journals (events and spans).
    pub ring_capacity: usize,
    /// How far back from the trigger instant the bundled trace window
    /// reaches: spans whose effective end is within this window are
    /// included.
    pub trace_window: SimDuration,
    /// Maximum bundles kept per world; later triggers are counted
    /// (`incident.triggers` keeps growing) but not snapshotted.
    pub max_bundles: usize,
}

impl Default for IncidentConfig {
    fn default() -> IncidentConfig {
        IncidentConfig {
            ring_capacity: 50_000,
            trace_window: SimDuration::from_secs(5),
            max_bundles: 4,
        }
    }
}

/// A deterministic summary of the world's static structure, so a bundle
/// records *what* was running, not just what it measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyDigest {
    /// Number of nodes.
    pub nodes: u64,
    /// Number of process slots (including removed ones).
    pub processes: u64,
    /// Per-segment labels, `seg{i}:{name}`, in segment order.
    pub segments: Vec<String>,
    /// FNV-1a hash over node names, process names, and segment labels —
    /// a cheap fingerprint that two topologies can be compared by.
    pub digest: u64,
}

impl TopologyDigest {
    /// Builds the digest from name lists (in stable declaration order).
    pub fn new<'a>(
        nodes: impl Iterator<Item = &'a str>,
        processes: impl Iterator<Item = &'a str>,
        segments: Vec<String>,
    ) -> TopologyDigest {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |s: &str| {
            for b in s.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let mut node_count = 0u64;
        for n in nodes {
            node_count += 1;
            feed(n);
        }
        let mut proc_count = 0u64;
        for p in processes {
            proc_count += 1;
            feed(p);
        }
        for s in &segments {
            feed(s);
        }
        TopologyDigest {
            nodes: node_count,
            processes: proc_count,
            segments,
            digest: hash,
        }
    }
}

/// One incident's complete evidence snapshot. See the module docs.
#[derive(Debug, Clone)]
pub struct IncidentBundle {
    /// What tripped the trigger plane.
    pub kind: TriggerKind,
    /// Human-readable trigger description (objective name, offender
    /// delta, panic message).
    pub detail: String,
    /// Virtual time of the trigger.
    pub at: SimTime,
    /// Bundle sequence number within its world, from 0.
    pub seq: u64,
    /// The shard that captured the bundle, in a sharded run.
    pub shard: Option<u16>,
    /// The trace window around the trigger (spans whose effective end
    /// falls within [`IncidentConfig::trace_window`] of the trigger).
    pub spans: Vec<SpanRecord>,
    /// Cumulative flight-recorder span overwrites at capture time —
    /// how much history had already been recycled.
    pub ring_overwrites: u64,
    /// The live telemetry window, pre-rendered
    /// ([`crate::TelemetryWindow::to_json`]); `None` if telemetry off.
    pub telemetry_json: Option<String>,
    /// Full SLO state-machine history up to the trigger.
    pub transitions: Vec<AlertTransition>,
    /// The doctor report at capture time, pre-rendered
    /// ([`crate::HealthReport::to_json`]); `None` if telemetry off.
    pub doctor_json: Option<String>,
    /// What was running.
    pub topology: TopologyDigest,
}

impl IncidentBundle {
    /// Renders the bundle as one deterministic JSON artifact: stable key
    /// order, integer-only numbers, pre-rendered sub-reports embedded
    /// verbatim. Two runs of the same seeded world produce
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"trigger\": {\n");
        out.push_str(&format!(
            "    \"kind\": \"{}\",\n    \"detail\": ",
            self.kind.as_str()
        ));
        push_json_string(&mut out, &self.detail);
        out.push_str(&format!(
            ",\n    \"at_ns\": {},\n    \"seq\": {},\n    \"shard\": {}\n  }},\n",
            self.at.as_nanos(),
            self.seq,
            match self.shard {
                Some(s) => s.to_string(),
                None => "null".to_owned(),
            }
        ));
        out.push_str(&format!(
            "  \"topology\": {{\n    \"nodes\": {},\n    \"processes\": {},\n    \"segments\": [",
            self.topology.nodes, self.topology.processes
        ));
        for (i, s) in self.topology.segments.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, s);
        }
        out.push_str(&format!(
            "],\n    \"digest\": \"{:#018x}\"\n  }},\n",
            self.topology.digest
        ));
        out.push_str(&format!(
            "  \"flight_recorder\": {{\"spans\": {}, \"ring_overwrites\": {}}},\n",
            self.spans.len(),
            self.ring_overwrites
        ));
        out.push_str("  \"trace\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"id\": {}, \"parent\": {}, \"corr\": \"{:#x}\", \"source\": ",
                s.id.0,
                s.parent.map(|p| p.0).unwrap_or(0),
                s.corr
            ));
            push_json_string(&mut out, &s.source);
            out.push_str(", \"stage\": ");
            push_json_string(&mut out, &s.stage);
            out.push_str(", \"detail\": ");
            push_json_string(&mut out, &s.detail);
            out.push_str(&format!(
                ", \"start_ns\": {}, \"end_ns\": {}}}",
                s.start.as_nanos(),
                match s.end {
                    Some(e) => e.as_nanos().to_string(),
                    None => "null".to_owned(),
                }
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"slo_history\": [");
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"at_ns\": ");
            out.push_str(&t.at.as_nanos().to_string());
            out.push_str(", \"objective\": ");
            push_json_string(&mut out, &t.objective);
            out.push_str(&format!(
                ", \"from\": \"{}\", \"to\": \"{}\"}}",
                t.from.as_str(),
                t.to.as_str()
            ));
        }
        if !self.transitions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"telemetry\": ");
        match &self.telemetry_json {
            Some(j) => out.push_str(j.trim_end()),
            None => out.push_str("null"),
        }
        out.push_str(",\n  \"doctor\": ");
        match &self.doctor_json {
            Some(j) => out.push_str(j.trim_end()),
            None => out.push_str("null"),
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanId;
    use crate::AlertState;

    fn demo_bundle() -> IncidentBundle {
        IncidentBundle {
            kind: TriggerKind::SloFiring,
            detail: "hub-latency: ok -> firing".into(),
            at: SimTime::from_millis(30_500),
            seq: 0,
            shard: Some(1),
            spans: vec![SpanRecord {
                id: SpanId(1),
                parent: None,
                corr: 0x1_0000_0001,
                source: "rt0".into(),
                stage: "queue.wait".into(),
                detail: "port=\"clicks\"".into(),
                start: SimTime::from_millis(30_000),
                end: Some(SimTime::from_millis(30_001)),
            }],
            ring_overwrites: 7,
            telemetry_json: None,
            transitions: vec![AlertTransition {
                at: SimTime::from_millis(30_500),
                objective: "hub-latency".into(),
                from: AlertState::Ok,
                to: AlertState::Firing,
            }],
            doctor_json: None,
            topology: TopologyDigest::new(
                ["h1", "h2"].into_iter(),
                ["rt0", "mapper"].into_iter(),
                vec!["seg0:ethernet-10mbps-hub".into()],
            ),
        }
    }

    #[test]
    fn bundle_json_is_deterministic_and_escaped() {
        let b = demo_bundle();
        let j1 = b.to_json();
        let j2 = b.clone().to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"kind\": \"slo-firing\""));
        assert!(j1.contains("\"shard\": 1"));
        assert!(j1.contains("\\\"clicks\\\""), "details are JSON-escaped");
        assert!(j1.contains("\"from\": \"ok\", \"to\": \"firing\""));
        assert!(j1.contains("\"ring_overwrites\": 7"));
        assert!(j1.contains("\"telemetry\": null"));
    }

    #[test]
    fn topology_digest_fingerprints_names() {
        let a = TopologyDigest::new(["h1"].into_iter(), ["p"].into_iter(), vec![]);
        let b = TopologyDigest::new(["h2"].into_iter(), ["p"].into_iter(), vec![]);
        assert_ne!(a.digest, b.digest);
        assert_eq!(a.nodes, 1);
        assert_eq!(a.processes, 1);
        // Boundary marker: ["ab"] and ["a","b"] must not collide.
        let c = TopologyDigest::new(["ab"].into_iter(), [].into_iter(), vec![]);
        let d = TopologyDigest::new(["a", "b"].into_iter(), [].into_iter(), vec![]);
        assert_ne!(c.digest, d.digest);
    }
}
