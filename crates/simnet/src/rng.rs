//! A small deterministic PRNG so the workspace builds with zero
//! external dependencies.
//!
//! [`SimRng`] is a SplitMix64 generator: 64 bits of state, full period,
//! passes BigCrush for the bit-mixing quality simulation needs, and —
//! crucially — identical output on every platform and toolchain, which
//! keeps seeded worlds reproducible byte for byte.
//!
//! The module also hosts [`check_cases`], a miniature property-test
//! harness: it runs a closure over a sequence of independently seeded
//! generators and reports the failing case index so a failure can be
//! replayed in isolation.

/// Deterministic SplitMix64 pseudo-random number generator.
///
/// The API intentionally mirrors the subset of `rand::Rng` the
/// workspace uses (`gen_range`, `gen_bool`), so call sites read the
/// same as they would with the external crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit output (upper half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in the given range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, matching `rand::Rng::gen_range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A vector of `len` random bytes.
    pub fn gen_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let chunk = self.next_u64().to_le_bytes();
            let take = (len - out.len()).min(8);
            out.extend_from_slice(&chunk[..take]);
        }
        out
    }

    /// A random ASCII string drawn from `alphabet`, `len` chars long.
    ///
    /// Panics if `alphabet` is empty.
    pub fn gen_string(&mut self, alphabet: &str, len: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "empty alphabet");
        (0..len)
            .map(|_| chars[self.gen_range(0..chars.len())])
            .collect()
    }

    /// Splits off an independent generator (for derived random streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Derives the generator for a named sub-stream *without* advancing
    /// this generator. Unlike [`SimRng::fork`] (which consumes a draw,
    /// so the result depends on how many values were drawn before it),
    /// `split` is a pure function of `(current state, stream)` — the
    /// same parent seed and stream id always yield the same child. This
    /// is what keeps sharded fixtures reproducible regardless of shard
    /// count: a fixture keys each logical partition's stream by a
    /// stable id (wing number, shard id), so an entity draws the same
    /// randomness whether it shares a world with its siblings or not.
    pub fn split(&self, stream: u64) -> SimRng {
        // Two independent SplitMix64 finalizer passes, one over the
        // parent state and one over the stream id on a different
        // lattice, XORed: adjacent (seed, stream) pairs land far apart
        // and stream 0 is not the identity.
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let parent = mix(self.state.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let child = mix(stream
            .wrapping_mul(0xD605_BBB5_8C8A_BC03)
            .wrapping_add(0x2545_F491_4F6C_DD1D));
        SimRng::seed_from_u64(parent ^ child)
    }
}

/// Bounded uniform sampling over integer ranges; the trait bound behind
/// [`SimRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

/// Integer types [`SimRng::gen_range`] can sample. Maps values onto an
/// unsigned 64-bit lattice so one widening implementation covers every
/// width and signedness.
pub trait UniformInt: Copy {
    /// Offset from the type's minimum, widened to `u64`.
    fn to_lattice(self) -> u64;
    /// Inverse of [`UniformInt::to_lattice`].
    fn from_lattice(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn to_lattice(self) -> u64 {
                // Wrapping-cast to the unsigned twin flips the sign bit
                // ordering; XOR with MIN's image restores total order.
                ((self as $u) ^ (<$t>::MIN as $u)) as u64
            }
            fn from_lattice(v: u64) -> Self {
                ((v as $u) ^ (<$t>::MIN as $u)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

fn sample_lattice(rng: &mut SimRng, lo: u64, hi_inclusive: u64) -> u64 {
    let span = hi_inclusive.wrapping_sub(lo);
    if span == u64::MAX {
        return rng.next_u64();
    }
    // Multiply-shift bounded sampling (deterministic, bias < 2^-64
    // per draw — irrelevant at simulation scales).
    let v = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
    lo.wrapping_add(v)
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let lo = self.start.to_lattice();
        let hi = self.end.to_lattice();
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_lattice(sample_lattice(rng, lo, hi - 1))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let lo = self.start().to_lattice();
        let hi = self.end().to_lattice();
        assert!(lo <= hi, "gen_range called with an empty range");
        T::from_lattice(sample_lattice(rng, lo, hi))
    }
}

/// Runs `body` over `cases` independently seeded generators — a
/// miniature deterministic property-test harness.
///
/// Case `i` receives `SimRng::seed_from_u64(base_seed + i)` where
/// `base_seed` derives from `name`, so every property gets its own
/// stream and failures name the case that can be replayed alone.
pub fn check_cases<F>(name: &str, cases: u64, body: F)
where
    F: Fn(u64, &mut SimRng) + std::panic::RefUnwindSafe,
{
    // FNV-1a over the property name: stable, dependency-free.
    let mut base: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases {
        let seed = base.wrapping_add(case);
        let result = std::panic::catch_unwind(|| {
            let mut rng = SimRng::seed_from_u64(seed);
            body(case, &mut rng);
        });
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property {name:?} failed at case {case} (seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the SplitMix64
        // reference implementation (Steele et al.).
        let mut rng = SimRng::seed_from_u64(1234567);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(0..200);
            assert!(v < 200);
            let w: i16 = rng.gen_range(-3i16..=3);
            assert!((-3..=3).contains(&w));
            let x: i8 = rng.gen_range(-5i8..=5);
            assert!((-5..=5).contains(&x));
            let y: u64 = rng.gen_range(10..=10);
            assert_eq!(y, 10);
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1_000 {
            seen.insert(rng.gen_range(0u8..=3));
        }
        assert_eq!(seen.len(), 4, "all four values drawn: {seen:?}");
        // Full-width range does not overflow the span arithmetic.
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i8 = rng.gen_range(i8::MIN..=i8::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = SimRng::seed_from_u64(1);
        let _: u8 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bytes_exact_len() {
        let mut rng = SimRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 255] {
            assert_eq!(rng.gen_bytes(len).len(), len);
        }
    }

    #[test]
    fn split_is_pure_and_stream_keyed() {
        let parent = SimRng::seed_from_u64(42);
        // Pure: same (state, stream) → same child, parent untouched.
        let mut a = parent.split(3);
        let mut b = parent.split(3);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(parent, SimRng::seed_from_u64(42));
        // Distinct streams diverge, and no stream is the identity.
        let mut c = parent.split(4);
        let mut zero = parent.split(0);
        let mut raw = SimRng::seed_from_u64(42);
        assert_ne!(a.next_u64(), c.next_u64());
        assert_ne!(zero.next_u64(), raw.next_u64());
    }

    #[test]
    fn split_ignores_parent_draw_position() {
        // split is keyed on the *seed*, not the draw position: a fixture
        // that derives per-wing streams gets the same streams no matter
        // how many draws happened in between on a sibling path.
        let parent = SimRng::seed_from_u64(9);
        let before = parent.split(1);
        let mut advanced = parent.clone();
        let _ = advanced.next_u64();
        // The advanced generator has different state, so its split
        // differs — reproducibility comes from splitting the *unused*
        // parent, which `split(&self)` makes possible.
        assert_ne!(advanced.split(1), before);
        assert_eq!(parent.split(1), before);
    }

    #[test]
    fn check_cases_reports_failing_case() {
        let err = std::panic::catch_unwind(|| {
            check_cases("always-fails", 3, |case, _| {
                assert!(case < 1, "boom");
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("failed at case 1"), "{msg}");
    }
}
