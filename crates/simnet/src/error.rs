//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use crate::{Addr, NodeId, ProcId, SegmentId, StreamId};

/// Errors returned by [`World`](crate::World) and
/// [`Ctx`](crate::Ctx) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The referenced node does not exist.
    UnknownNode(NodeId),
    /// The referenced process does not exist (never created or removed).
    UnknownProcess(ProcId),
    /// The referenced segment does not exist.
    UnknownSegment(SegmentId),
    /// The referenced stream does not exist or is closed.
    UnknownStream(StreamId),
    /// A port on a node is already bound by another process.
    PortInUse {
        /// The node with the conflict.
        node: NodeId,
        /// The contested port.
        port: u16,
    },
    /// No process is listening on the destination address.
    NoListener(Addr),
    /// The source and destination nodes share no network segment, so no
    /// frame can be transmitted between them.
    NoRoute {
        /// The sending node.
        src: NodeId,
        /// The unreachable node.
        dst: NodeId,
    },
    /// The node is not attached to the given segment.
    NotAttached {
        /// The node in question.
        node: NodeId,
        /// The segment it is not attached to.
        segment: SegmentId,
    },
    /// The segment rejected another attachment (e.g. a Bluetooth piconet
    /// limited to eight devices).
    SegmentFull(SegmentId),
    /// The stream send buffer is full; the caller must wait for
    /// [`StreamEvent::Writable`](crate::StreamEvent::Writable).
    StreamBufferFull(StreamId),
    /// The operation is invalid in the stream's current state.
    StreamClosed(StreamId),
    /// A shard configuration's cross-shard link latency is below its
    /// conservative lookahead (or the lookahead is zero). The lookahead
    /// is how far a shard may run ahead of its siblings; a message that
    /// could arrive sooner than that would land inside a window another
    /// shard already executed, so the configuration is rejected at
    /// `World` build time.
    ShardLookahead {
        /// The configured cross-shard link latency.
        link_latency: crate::SimDuration,
        /// The configured conservative lookahead bound.
        lookahead: crate::SimDuration,
    },
    /// A shard id out of range for the configured shard count, or a
    /// shard count of zero.
    ShardUnknown {
        /// The offending shard id.
        shard: u16,
        /// The configured shard count.
        shards: u16,
    },
    /// A cross-shard operation on a world that was never configured as
    /// a shard (see `World::configure_shard`).
    NotSharded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SimError::UnknownProcess(id) => write!(f, "unknown process {id}"),
            SimError::UnknownSegment(id) => write!(f, "unknown segment {id}"),
            SimError::UnknownStream(id) => write!(f, "unknown stream {id}"),
            SimError::PortInUse { node, port } => {
                write!(f, "port {port} already bound on node {node}")
            }
            SimError::NoListener(addr) => write!(f, "no listener at {addr}"),
            SimError::NoRoute { src, dst } => {
                write!(f, "no shared segment between {src} and {dst}")
            }
            SimError::NotAttached { node, segment } => {
                write!(f, "node {node} not attached to segment {segment}")
            }
            SimError::SegmentFull(id) => write!(f, "segment {id} is full"),
            SimError::StreamBufferFull(id) => {
                write!(f, "send buffer full on stream {id}")
            }
            SimError::StreamClosed(id) => write!(f, "stream {id} is closed"),
            SimError::ShardLookahead {
                link_latency,
                lookahead,
            } => write!(
                f,
                "cross-shard link latency {link_latency} is below the conservative \
                 lookahead {lookahead}: a message could arrive inside a window a \
                 sibling shard already executed (lookahead must be > 0 and <= the \
                 minimum cross-shard link latency)"
            ),
            SimError::ShardUnknown { shard, shards } => {
                write!(f, "shard {shard} out of range for {shards} shard(s)")
            }
            SimError::NotSharded => {
                write!(
                    f,
                    "world is not configured as a shard (no World::configure_shard)"
                )
            }
        }
    }
}

impl Error for SimError {}

/// Convenience alias for simulator results.
pub type SimResult<T> = Result<T, SimError>;
