//! Tracing and metrics for simulations.
//!
//! Every [`World`](crate::World) owns a [`Trace`]: a bounded event log plus
//! a set of named counters. Protocol code bumps counters and logs events via
//! [`Ctx`](crate::Ctx); benches and tests read them back to assert on
//! behaviour (frames on a segment, bytes delivered, retransmissions, …).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event was logged.
    pub time: SimTime,
    /// Short source tag (usually the process name).
    pub source: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.source, self.message)
    }
}

/// Bounded event log plus named counters.
#[derive(Debug)]
pub struct Trace {
    log_enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    counters: BTreeMap<String, u64>,
}

impl Trace {
    /// Creates a trace with logging enabled and the given event capacity.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            log_enabled: true,
            capacity,
            events: Vec::new(),
            dropped: 0,
            counters: BTreeMap::new(),
        }
    }

    /// Enables or disables event logging (counters always work).
    pub fn set_log_enabled(&mut self, enabled: bool) {
        self.log_enabled = enabled;
    }

    /// Records an event if logging is enabled and capacity remains.
    pub fn log(&mut self, time: SimTime, source: impl Into<String>, message: impl Into<String>) {
        if !self.log_enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            time,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Adds `n` to the named counter.
    pub fn bump(&mut self, counter: &str, n: u64) {
        *self.counters.entry(counter.to_owned()).or_insert(0) += n;
    }

    /// Returns the value of a counter (zero if never bumped).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears events and counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.counters.clear();
        self.dropped = 0;
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new(50_000)
    }
}

/// Aggregate statistics for one network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Frames successfully transmitted (including lost-after-tx frames).
    pub frames: u64,
    /// Payload bytes carried by those frames (excluding link overhead).
    pub payload_bytes: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
    /// Total time the medium was occupied.
    pub busy: SimDuration,
}

impl SegmentStats {
    /// Mean utilization of the medium over `elapsed` virtual time, in
    /// `[0, 1]`. Returns 0 for zero elapsed time.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::default();
        t.bump("frames", 2);
        t.bump("frames", 3);
        assert_eq!(t.counter("frames"), 5);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn log_respects_capacity() {
        let mut t = Trace::new(2);
        for i in 0..4 {
            t.log(SimTime::ZERO, "src", format!("event {i}"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut t = Trace::default();
        t.set_log_enabled(false);
        t.log(SimTime::ZERO, "src", "hidden");
        assert!(t.events().is_empty());
    }

    #[test]
    fn event_display_is_readable() {
        let ev = TraceEvent {
            time: SimTime::from_millis(1),
            source: "mapper".to_owned(),
            message: "device found".to_owned(),
        };
        assert_eq!(ev.to_string(), "[1.000ms] mapper: device found");
    }

    #[test]
    fn utilization_is_bounded() {
        let stats = SegmentStats {
            busy: SimDuration::from_millis(500),
            ..SegmentStats::default()
        };
        let u = stats.utilization(SimDuration::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(stats.utilization(SimDuration::ZERO), 0.0);
    }
}
