//! Tracing and metrics for simulations.
//!
//! Every [`World`](crate::World) owns a [`Trace`]: a bounded event log, a
//! span log for end-to-end path reconstruction, and a [`Metrics`] registry
//! of typed counters, gauges, and fixed-bucket latency histograms.
//! Protocol code records through [`Ctx`](crate::Ctx); benches and tests
//! read the registry back to assert on behaviour (frames on a segment,
//! bytes delivered, retransmissions, per-hop translation latency, …).
//!
//! Everything here is keyed to **virtual** time, so two runs of the same
//! seeded world produce byte-identical snapshots
//! ([`MetricsSnapshot::to_json`]).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event was logged.
    pub time: SimTime,
    /// Short source tag (usually the process name).
    pub source: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.source, self.message)
    }
}

/// One span event on a correlated path: a hop in a message's
/// mapper→translator→port journey, stamped with virtual time.
///
/// Spans carrying the same correlation id reconstruct one logical
/// path end to end, across runtimes and platform bridges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Correlation id minted when the connection was established.
    pub corr: u64,
    /// Virtual time of the hop.
    pub time: SimTime,
    /// Short source tag (usually the process name).
    pub source: String,
    /// Stage name, dot-scoped (`connect`, `directory.lookup`,
    /// `transport.send`, `bridge.upnp.input`, …).
    pub stage: String,
    /// Free-form detail (port names, byte counts, retry numbers).
    pub detail: String,
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] corr={:#x} {} {}: {}",
            self.time, self.corr, self.source, self.stage, self.detail
        )
    }
}

/// Upper bounds (inclusive, nanoseconds) of the fixed latency buckets:
/// a 1–2–5 series from 1 µs to 100 s. Values above the last bound land
/// in an implicit overflow bucket.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 25] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
];

/// A fixed-bucket latency histogram over virtual-time durations.
///
/// Buckets are the global [`LATENCY_BUCKET_BOUNDS_NS`] 1–2–5 series plus
/// an overflow bucket; a recorded value lands in the first bucket whose
/// bound is ≥ the value (Prometheus `le` semantics). Deterministic: no
/// floating point is involved in bucketing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean of the recorded values, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
        }
    }

    /// Smallest recorded value, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded value, or zero if empty.
    pub fn max(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.max_ns)
        }
    }

    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound (ns) of the bucket a quantile `q` in `[0, 1]` falls
    /// into — a conservative quantile estimate. Returns `None` if empty
    /// or if the quantile lands in the overflow bucket.
    pub fn quantile_bound_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LATENCY_BUCKET_BOUNDS_NS.get(i).copied();
            }
        }
        None
    }
}

/// Registry of typed counters, gauges, and latency histograms.
///
/// Names are flat, dot-scoped strings; per-runtime metrics use an
/// `rt{N}.` prefix (e.g. `rt0.advertisements_sent`). All maps are
/// ordered, so iteration and JSON output are deterministic.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Adds `n` to a monotonic counter.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Adds a (possibly negative) delta to a gauge.
    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        *self.gauges.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Reads a gauge (zero if never written).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records a duration into the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(d);
    }

    /// Reads a histogram, if it has ever been observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Counters/gauges/histograms under a dot-scoped prefix, e.g.
    /// `scoped("rt0")` yields every metric named `rt0.*`.
    pub fn scoped<'m>(&'m self, prefix: &str) -> ScopedMetrics<'m> {
        ScopedMetrics {
            metrics: self,
            prefix: format!("{prefix}."),
        }
    }

    /// An owned, deterministic snapshot for export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Clears every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

/// A read-only view of the metrics under one scope prefix.
#[derive(Debug)]
pub struct ScopedMetrics<'m> {
    metrics: &'m Metrics,
    prefix: String,
}

impl ScopedMetrics<'_> {
    /// Reads `"{prefix}.{name}"` as a counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(&format!("{}{name}", self.prefix))
    }

    /// Reads `"{prefix}.{name}"` as a gauge.
    pub fn gauge(&self, name: &str) -> i64 {
        self.metrics.gauge(&format!("{}{name}", self.prefix))
    }

    /// Reads `"{prefix}.{name}"` as a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.metrics.histogram(&format!("{}{name}", self.prefix))
    }

    /// Every counter in this scope, with the prefix stripped.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.metrics
            .counters
            .range(self.prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&self.prefix))
            .map(|(k, v)| (&k[self.prefix.len()..], *v))
    }

    /// Every gauge in this scope, with the prefix stripped.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.metrics
            .gauges
            .range(self.prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&self.prefix))
            .map(|(k, v)| (&k[self.prefix.len()..], *v))
    }

    /// Every histogram in this scope, with the prefix stripped.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.metrics
            .histograms
            .range(self.prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&self.prefix))
            .map(|(k, v)| (&k[self.prefix.len()..], v))
    }

    /// An owned snapshot of just this scope, prefix stripped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters().map(|(k, v)| (k.to_owned(), v)).collect(),
            gauges: self.gauges().map(|(k, v)| (k.to_owned(), v)).collect(),
            histograms: self
                .histograms()
                .map(|(k, v)| (k.to_owned(), v.clone()))
                .collect(),
        }
    }
}

/// Owned, ordered copy of a [`Metrics`] registry; renders to
/// deterministic JSON for the bench exporter and for golden files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as pretty-printed JSON with fully
    /// deterministic key order and integer-only numbers, so two
    /// identical runs produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"bucket_bounds_ns\": [");
        for (i, b) in LATENCY_BUCKET_BOUNDS_NS.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": {");
            out.push_str(&format!(
                "\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"buckets\": [",
                h.count(),
                h.sum_ns(),
                h.min().as_nanos(),
                h.max().as_nanos(),
            ));
            for (i, c) in h.bucket_counts().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        push_json_string(out, k);
        out.push_str(": ");
        out.push_str(&v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Bounded event log, span log, and metrics registry.
#[derive(Debug)]
pub struct Trace {
    log_enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    spans: Vec<SpanEvent>,
    span_capacity: usize,
    spans_dropped: u64,
    metrics: Metrics,
}

impl Trace {
    /// Creates a trace with logging enabled and the given event capacity
    /// (spans get the same capacity).
    pub fn new(capacity: usize) -> Trace {
        Trace {
            log_enabled: true,
            capacity,
            events: Vec::new(),
            dropped: 0,
            spans: Vec::new(),
            span_capacity: capacity,
            spans_dropped: 0,
            metrics: Metrics::default(),
        }
    }

    /// Enables or disables event logging (counters always work).
    pub fn set_log_enabled(&mut self, enabled: bool) {
        self.log_enabled = enabled;
    }

    /// Records an event if logging is enabled and capacity remains.
    pub fn log(&mut self, time: SimTime, source: impl Into<String>, message: impl Into<String>) {
        if !self.log_enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            time,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Records a span event on a correlated path.
    pub fn span(
        &mut self,
        corr: u64,
        time: SimTime,
        source: impl Into<String>,
        stage: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if self.spans.len() >= self.span_capacity {
            self.spans_dropped += 1;
            return;
        }
        self.spans.push(SpanEvent {
            corr,
            time,
            source: source.into(),
            stage: stage.into(),
            detail: detail.into(),
        });
    }

    /// All recorded spans, in order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// The spans of one correlated path, in order.
    pub fn spans_for(&self, corr: u64) -> impl Iterator<Item = &SpanEvent> {
        self.spans.iter().filter(move |s| s.corr == corr)
    }

    /// Number of spans discarded because the span log was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The metrics registry, mutably.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Folds the thread-local payload copy accounting into the metrics
    /// registry — counters `payload.allocs`, `payload.bytes_copied` and
    /// `payload.shared_clones` — draining it. The world calls this at
    /// the end of every run, so metrics snapshots carry the data-path
    /// copy cost alongside the domain counters. With several worlds on
    /// one thread, the accounting lands in whichever world runs next
    /// (the counters are process-wide, not per-world).
    pub fn sync_payload_stats(&mut self) {
        let s = crate::payload::take_stats();
        if s.allocs > 0 {
            self.metrics.counter_add("payload.allocs", s.allocs);
        }
        if s.bytes_copied > 0 {
            self.metrics
                .counter_add("payload.bytes_copied", s.bytes_copied);
        }
        if s.shared_clones > 0 {
            self.metrics
                .counter_add("payload.shared_clones", s.shared_clones);
        }
    }

    /// Adds `n` to the named counter.
    pub fn bump(&mut self, counter: &str, n: u64) {
        self.metrics.counter_add(counter, n);
    }

    /// Returns the value of a counter (zero if never bumped).
    pub fn counter(&self, counter: &str) -> u64 {
        self.metrics.counter(counter)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.metrics.counters()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears events, spans, and metrics.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.spans.clear();
        self.spans_dropped = 0;
        self.metrics.clear();
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new(50_000)
    }
}

/// Aggregate statistics for one network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Frames successfully transmitted (including lost-after-tx frames).
    pub frames: u64,
    /// Payload bytes carried by those frames (excluding link overhead).
    pub payload_bytes: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
    /// Total time the medium was occupied.
    pub busy: SimDuration,
}

impl SegmentStats {
    /// Mean utilization of the medium over `elapsed` virtual time, in
    /// `[0, 1]`. Returns 0 for zero elapsed time.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::default();
        t.bump("frames", 2);
        t.bump("frames", 3);
        assert_eq!(t.counter("frames"), 5);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn log_respects_capacity() {
        let mut t = Trace::new(2);
        for i in 0..4 {
            t.log(SimTime::ZERO, "src", format!("event {i}"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut t = Trace::default();
        t.set_log_enabled(false);
        t.log(SimTime::ZERO, "src", "hidden");
        assert!(t.events().is_empty());
    }

    #[test]
    fn event_display_is_readable() {
        let ev = TraceEvent {
            time: SimTime::from_millis(1),
            source: "mapper".to_owned(),
            message: "device found".to_owned(),
        };
        assert_eq!(ev.to_string(), "[1.000ms] mapper: device found");
    }

    #[test]
    fn utilization_is_bounded() {
        let stats = SegmentStats {
            busy: SimDuration::from_millis(500),
            ..SegmentStats::default()
        };
        let u = stats.utilization(SimDuration::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(stats.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::default();
        // Exactly on a bound → that bucket (le semantics).
        h.record(SimDuration::from_nanos(1_000));
        // One over a bound → next bucket.
        h.record(SimDuration::from_nanos(1_001));
        // Zero → first bucket.
        h.record(SimDuration::ZERO);
        // Far past the last bound → overflow bucket.
        h.record(SimDuration::from_secs(1_000));
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2, "0 and 1000 ns share the first bucket");
        assert_eq!(counts[1], 1, "1001 ns lands in the 2 µs bucket");
        assert_eq!(*counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_secs(1_000));
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile_bound_ns(0.5), None);
        for ms in [1u64, 2, 3, 4] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.mean(), SimDuration::from_nanos(2_500_000));
        // p50 falls in the 2 ms bucket, p100 in the 5 ms bucket.
        assert_eq!(h.quantile_bound_ns(0.5), Some(2_000_000));
        assert_eq!(h.quantile_bound_ns(1.0), Some(5_000_000));
    }

    #[test]
    fn gauges_and_scoping() {
        let mut m = Metrics::default();
        m.counter_add("rt0.advertisements_sent", 3);
        m.counter_add("rt1.advertisements_sent", 7);
        m.gauge_set("rt0.buffer_depth", 42);
        m.gauge_add("rt0.buffer_depth", -2);
        m.observe("rt0.drain_wait", SimDuration::from_millis(1));
        let rt0 = m.scoped("rt0");
        assert_eq!(rt0.counter("advertisements_sent"), 3);
        assert_eq!(rt0.gauge("buffer_depth"), 40);
        assert_eq!(rt0.histogram("drain_wait").unwrap().count(), 1);
        let names: Vec<&str> = rt0.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["advertisements_sent"]);
        let rt1 = m.scoped("rt1");
        assert_eq!(rt1.counter("advertisements_sent"), 7);
        assert_eq!(rt1.gauge("buffer_depth"), 0);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let mut m = Metrics::default();
        m.counter_add("b", 2);
        m.counter_add("a", 1);
        m.gauge_set("g", -5);
        m.observe("lat", SimDuration::from_micros(3));
        let j1 = m.snapshot().to_json();
        let j2 = m.snapshot().to_json();
        assert_eq!(j1, j2);
        // Keys appear sorted regardless of insertion order.
        let a = j1.find("\"a\"").unwrap();
        let b = j1.find("\"b\"").unwrap();
        assert!(a < b);
        assert!(j1.contains("\"g\": -5"));
        assert!(j1.contains("\"count\": 1"));
    }

    #[test]
    fn spans_filter_by_correlation_id() {
        let mut t = Trace::default();
        t.span(7, SimTime::ZERO, "rt0", "connect", "src=alpha");
        t.span(9, SimTime::from_millis(1), "rt0", "connect", "src=beta");
        t.span(
            7,
            SimTime::from_millis(2),
            "upnp-mapper",
            "bridge.upnp.input",
            "port=in",
        );
        let path: Vec<&str> = t.spans_for(7).map(|s| s.stage.as_str()).collect();
        assert_eq!(path, vec!["connect", "bridge.upnp.input"]);
        assert_eq!(t.spans().len(), 3);
    }
}
