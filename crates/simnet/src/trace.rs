//! Tracing and metrics for simulations.
//!
//! Every [`World`](crate::World) owns a [`Trace`]: a bounded event log, a
//! structured span log for causal path reconstruction, and a [`Metrics`]
//! registry of typed counters, gauges, and fixed-bucket latency
//! histograms. Protocol code records through [`Ctx`](crate::Ctx); benches
//! and tests read the registry back to assert on behaviour (frames on a
//! segment, bytes delivered, retransmissions, per-hop translation
//! latency, …).
//!
//! Spans are *structured*: each has a [`SpanId`], an optional parent, and
//! an explicit begin and end, so every hop of a mediated path has a
//! duration. The [`span`](crate::span) module rebuilds the per-path trees
//! and computes critical-path breakdowns; the [`export`](crate::export)
//! module renders Perfetto and flamegraph artifacts.
//!
//! Everything here is keyed to **virtual** time, so two runs of the same
//! seeded world produce byte-identical snapshots
//! ([`MetricsSnapshot::to_json`]) and byte-identical trace exports.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event was logged.
    pub time: SimTime,
    /// Short source tag (usually the process name).
    pub source: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.source, self.message)
    }
}

/// Identifier of a structured span, unique within one [`Trace`].
///
/// Ids are minted by [`Trace::span_begin`] in allocation order starting
/// at 1. The zero id is a sentinel returned when the span log is full;
/// ending it is a no-op, so callers never need to branch on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The sentinel id returned when a span could not be recorded.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id refers to a recorded span.
    pub fn is_recorded(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One structured span on a correlated path: a stage of a message's
/// mapper→translator→port journey with an explicit begin and end, so
/// every hop has a duration, not just a timestamp.
///
/// Spans carrying the same correlation id reconstruct one logical path
/// end to end, across runtimes and platform bridges; parent links give
/// the nesting within one path (see [`SpanTree`](crate::span::SpanTree)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace, in allocation order.
    pub id: SpanId,
    /// The span open on the same correlation id when this one began.
    pub parent: Option<SpanId>,
    /// Correlation id minted when the connection was established
    /// (zero for uncorrelated platform-side work).
    pub corr: u64,
    /// Short source tag (usually the process name).
    pub source: String,
    /// Stage name, dot-scoped (`connect`, `queue.wait`,
    /// `transport.send`, `bridge.upnp.input`, …).
    pub stage: String,
    /// Free-form detail (port names, byte counts, retry numbers).
    pub detail: String,
    /// Virtual time the stage began.
    pub start: SimTime,
    /// Virtual time the stage ended, or `None` if it never closed (a
    /// dropped message, a crashed runtime, a run that ended mid-flight).
    pub end: Option<SimTime>,
}

impl SpanRecord {
    /// Duration of a closed span; `None` while open.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e - self.start)
    }

    /// End time for analysis: a span that never closed is treated as
    /// zero-length rather than infinitely long.
    pub fn effective_end(&self) -> SimTime {
        self.end.unwrap_or(self.start)
    }
}

impl fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(end) => write!(
                f,
                "[{}..{}] corr={:#x} {} {}: {}",
                self.start, end, self.corr, self.source, self.stage, self.detail
            ),
            None => write!(
                f,
                "[{}..open] corr={:#x} {} {}: {}",
                self.start, self.corr, self.source, self.stage, self.detail
            ),
        }
    }
}

/// Upper bounds (inclusive, nanoseconds) of the fixed latency buckets:
/// a 1–2–5 series from 1 µs to 100 s. Values above the last bound land
/// in an implicit overflow bucket.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 25] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
];

/// A fixed-bucket latency histogram over virtual-time durations.
///
/// Buckets are the global [`LATENCY_BUCKET_BOUNDS_NS`] 1–2–5 series plus
/// an overflow bucket; a recorded value lands in the first bucket whose
/// bound is ≥ the value (Prometheus `le` semantics). Deterministic: no
/// floating point is involved in bucketing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
    /// Trace correlation id of the observation currently holding the
    /// recorded maximum (zero = the max came from an uncorrelated
    /// observation).
    max_corr: u64,
    /// Per-bucket exemplars: the corr id of the *first* correlated
    /// observation that landed in each bucket. Zero = no correlated
    /// observation has reached this bucket yet.
    bucket_corr: [u64; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            max_corr: 0,
            bucket_corr: [0; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
        }
    }
}

impl Histogram {
    /// Records one duration. All count/sum arithmetic saturates, so a
    /// pathological run degrades to clamped totals instead of wrapping.
    pub fn record(&mut self, d: SimDuration) {
        self.record_corr(d, 0);
    }

    /// Records one duration tagged with a trace correlation id, keeping
    /// exemplars: the corr that set the running max, and the first
    /// non-zero corr to land in each bucket. An uncorrelated
    /// observation (`corr == 0`) still claims `max_corr` when it sets a
    /// new max — `max_corr` always describes the *current* max holder —
    /// but never claims a bucket exemplar.
    pub fn record_corr(&mut self, d: SimDuration, corr: u64) {
        let ns = d.as_nanos();
        let idx = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(u128::from(ns));
        self.min_ns = self.min_ns.min(ns);
        if ns > self.max_ns || self.count == 1 {
            self.max_corr = corr;
        }
        self.max_ns = self.max_ns.max(ns);
        if corr != 0 && self.bucket_corr[idx] == 0 {
            self.bucket_corr[idx] = corr;
        }
    }

    /// Corr id of the observation holding the recorded maximum, or zero
    /// if the max holder was uncorrelated (or the histogram is empty).
    pub fn max_corr(&self) -> u64 {
        self.max_corr
    }

    /// Per-bucket first-corr exemplars, one per bound plus the overflow
    /// bucket, aligned with [`Histogram::bucket_counts`]. Zero entries
    /// mean no correlated observation landed in that bucket.
    pub fn bucket_exemplars(&self) -> &[u64] {
        &self.bucket_corr
    }

    /// Exemplar for the slow tail above `threshold_ns`: the first-corr
    /// exemplar of the lowest populated bucket whose entire range lies
    /// above the threshold, falling back to higher buckets and finally
    /// to the max holder's corr. Returns `None` when no correlated
    /// observation exists above the threshold.
    pub fn exemplar_above_ns(&self, threshold_ns: u64) -> Option<u64> {
        let first = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| bound >= threshold_ns)
            .map_or(LATENCY_BUCKET_BOUNDS_NS.len(), |i| i + 1);
        for idx in first..self.bucket_corr.len() {
            if self.bucket_corr[idx] != 0 {
                return Some(self.bucket_corr[idx]);
            }
        }
        (self.max_corr != 0 && self.max_ns > threshold_ns).then_some(self.max_corr)
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean of the recorded values, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
        }
    }

    /// Smallest recorded value, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded value, or zero if empty.
    pub fn max(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.max_ns)
        }
    }

    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Conservative quantile estimate over the recorded values, in
    /// nanoseconds.
    ///
    /// Contract: the returned bound is always ≥ the true quantile and
    /// never exceeds the recorded maximum. For `q = 1.0` it is the
    /// *exact* recorded maximum. For interior quantiles it is the upper
    /// bound of the 1–2–5 bucket the rank falls into (an over-estimate
    /// by at most one bucket width), clamped to the recorded maximum —
    /// so a quantile landing in the unbounded overflow bucket reports
    /// the maximum, the tightest bound available. Returns `None` only
    /// for an empty histogram.
    pub fn quantile_bound_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return Some(self.max_ns);
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match LATENCY_BUCKET_BOUNDS_NS.get(i) {
                    Some(&bound) => bound.min(self.max_ns),
                    None => self.max_ns,
                });
            }
        }
        Some(self.max_ns)
    }
}

/// Registry of typed counters, gauges, and latency histograms.
///
/// Names are flat, dot-scoped strings; per-runtime metrics use an
/// `rt{N}.` prefix (e.g. `rt0.advertisements_sent`). All maps are
/// ordered, so iteration and JSON output are deterministic.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Counter bumped whenever counter/gauge arithmetic clamps at the
/// integer range instead of wrapping, so lossy math is visible in every
/// export rather than silently corrupting totals.
const SATURATION_MARKER: &str = "trace.counter_saturated";

impl Metrics {
    /// Adds `n` to a monotonic counter. The addition saturates at
    /// `u64::MAX`; a clamped update also bumps the
    /// `trace.counter_saturated` marker counter.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let slot = self.counters.entry(name.to_owned()).or_insert(0);
        if let Some(v) = slot.checked_add(n) {
            *slot = v;
        } else {
            *slot = u64::MAX;
            self.note_saturation();
        }
    }

    /// Records one clamped counter/gauge update. Direct map access: the
    /// marker itself must not recurse through [`Metrics::counter_add`],
    /// and it too saturates rather than wrapping.
    fn note_saturation(&mut self) {
        let marker = self
            .counters
            .entry(SATURATION_MARKER.to_owned())
            .or_insert(0);
        *marker = marker.saturating_add(1);
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Adds a (possibly negative) delta to a gauge. The addition
    /// saturates at the `i64` range; a clamped update also bumps the
    /// `trace.counter_saturated` marker counter.
    pub fn gauge_add(&mut self, name: &str, delta: i64) {
        let slot = self.gauges.entry(name.to_owned()).or_insert(0);
        if let Some(v) = slot.checked_add(delta) {
            *slot = v;
        } else {
            *slot = if delta > 0 { i64::MAX } else { i64::MIN };
            self.note_saturation();
        }
    }

    /// Reads a gauge (zero if never written).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records a duration into the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(d);
    }

    /// Records a duration into the named histogram tagged with a trace
    /// correlation id, so the histogram keeps exemplars linking its max
    /// and upper buckets back to trace journeys (see
    /// [`Histogram::record_corr`]).
    pub fn observe_corr(&mut self, name: &str, d: SimDuration, corr: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record_corr(d, corr);
    }

    /// Reads a histogram, if it has ever been observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Replaces the named histogram wholesale. Used by the world to fold
    /// its allocation-free scheduler-lag histogram into the registry at
    /// sample and sync points; the replacement is cumulative, so the
    /// registry keeps Prometheus semantics.
    pub(crate) fn histogram_set(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_owned(), h);
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Counters/gauges/histograms under a dot-scoped prefix, e.g.
    /// `scoped("rt0")` yields every metric named `rt0.*`.
    pub fn scoped<'m>(&'m self, prefix: &str) -> ScopedMetrics<'m> {
        ScopedMetrics {
            metrics: self,
            prefix: format!("{prefix}."),
        }
    }

    /// An owned, deterministic snapshot for export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Clears every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

/// A read-only view of the metrics under one scope prefix.
#[derive(Debug)]
pub struct ScopedMetrics<'m> {
    metrics: &'m Metrics,
    prefix: String,
}

impl ScopedMetrics<'_> {
    /// Reads `"{prefix}.{name}"` as a counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(&format!("{}{name}", self.prefix))
    }

    /// Reads `"{prefix}.{name}"` as a gauge.
    pub fn gauge(&self, name: &str) -> i64 {
        self.metrics.gauge(&format!("{}{name}", self.prefix))
    }

    /// Reads `"{prefix}.{name}"` as a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.metrics.histogram(&format!("{}{name}", self.prefix))
    }

    /// Every counter in this scope, with the prefix stripped.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.metrics
            .counters
            .range(self.prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&self.prefix))
            .map(|(k, v)| (&k[self.prefix.len()..], *v))
    }

    /// Every gauge in this scope, with the prefix stripped.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.metrics
            .gauges
            .range(self.prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&self.prefix))
            .map(|(k, v)| (&k[self.prefix.len()..], *v))
    }

    /// Every histogram in this scope, with the prefix stripped.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.metrics
            .histograms
            .range(self.prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&self.prefix))
            .map(|(k, v)| (&k[self.prefix.len()..], v))
    }

    /// An owned snapshot of just this scope, prefix stripped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters().map(|(k, v)| (k.to_owned(), v)).collect(),
            gauges: self.gauges().map(|(k, v)| (k.to_owned(), v)).collect(),
            histograms: self
                .histograms()
                .map(|(k, v)| (k.to_owned(), v.clone()))
                .collect(),
        }
    }
}

/// Owned, ordered copy of a [`Metrics`] registry; renders to
/// deterministic JSON for the bench exporter and for golden files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as pretty-printed JSON with fully
    /// deterministic key order and integer-only numbers, so two
    /// identical runs produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"bucket_bounds_ns\": [");
        for (i, b) in LATENCY_BUCKET_BOUNDS_NS.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": {");
            out.push_str(&format!(
                "\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"max_corr\": {}, \"buckets\": [",
                h.count(),
                h.sum_ns(),
                h.min().as_nanos(),
                h.max().as_nanos(),
                h.max_corr(),
            ));
            for (i, c) in h.bucket_counts().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_string());
            }
            // Exemplars render sparse — [bucket index, corr] pairs —
            // but the key is always present, so sharded-vs-single and
            // exemplar-vs-none snapshots differ only in values.
            out.push_str("], \"exemplars\": [");
            let mut first_ex = true;
            for (i, &corr) in h.bucket_exemplars().iter().enumerate() {
                if corr == 0 {
                    continue;
                }
                if !first_ex {
                    out.push_str(", ");
                }
                first_ex = false;
                out.push_str(&format!("[{i}, {corr}]"));
            }
            out.push_str("]}");
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        push_json_string(out, k);
        out.push_str(": ");
        out.push_str(&v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Bounded event log, structured span log, and metrics registry.
///
/// Two retention policies govern what happens when a log fills:
///
/// * **Legacy cap (default):** drop-on-full — the *newest* records are
///   discarded and counted in `trace.events_dropped` /
///   `trace.spans_dropped`. A long run loses exactly the tail that an
///   incident investigation needs.
/// * **Flight recorder** ([`Trace::enable_flight_recorder`]):
///   overwrite-oldest ring journal — the log always holds the most
///   recent window at full fidelity, and every evicted record is
///   counted in the cumulative `trace.ring_overwrites` /
///   `trace.events_overwritten` counters, so overwrite is always
///   distinguishable from drop in any snapshot.
#[derive(Debug)]
pub struct Trace {
    log_enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    dropped_folded: u64,
    spans: Vec<SpanRecord>,
    span_capacity: usize,
    spans_dropped: u64,
    spans_dropped_folded: u64,
    next_span: u64,
    /// Flight-recorder mode: overwrite-oldest instead of drop-newest.
    recorder: bool,
    /// Cumulative spans evicted by the flight-recorder ring.
    ring_overwrites: u64,
    ring_overwrites_folded: u64,
    /// Cumulative events evicted by the flight-recorder ring.
    events_overwritten: u64,
    events_overwritten_folded: u64,
    /// Per-correlation-id stack of open spans (for parent links).
    open: BTreeMap<u64, Vec<SpanId>>,
    /// Open span id → index into `spans`; removed when the span ends,
    /// which makes ending a span twice a no-op.
    open_index: BTreeMap<u64, usize>,
    metrics: Metrics,
}

impl Trace {
    /// Creates a trace with logging enabled and the given event capacity
    /// (spans get the same capacity).
    pub fn new(capacity: usize) -> Trace {
        Trace {
            log_enabled: true,
            capacity,
            events: Vec::new(),
            dropped: 0,
            dropped_folded: 0,
            spans: Vec::new(),
            span_capacity: capacity,
            spans_dropped: 0,
            spans_dropped_folded: 0,
            next_span: 1,
            recorder: false,
            ring_overwrites: 0,
            ring_overwrites_folded: 0,
            events_overwritten: 0,
            events_overwritten_folded: 0,
            open: BTreeMap::new(),
            open_index: BTreeMap::new(),
            metrics: Metrics::default(),
        }
    }

    /// Switches both logs to flight-recorder (overwrite-oldest) mode
    /// with the given capacity. The journal keeps at least the newest
    /// `capacity / 2` records and never exceeds `capacity`; eviction
    /// happens in half-capacity chunks so the amortized cost per record
    /// stays O(1). Evictions are counted in the cumulative
    /// [`Trace::ring_overwrites`] / [`Trace::events_overwritten`]
    /// totals; the drop counters stay at zero in this mode.
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        self.recorder = true;
        self.capacity = capacity.max(2);
        self.span_capacity = capacity.max(2);
    }

    /// Resizes the event and span capacities without changing the
    /// overflow policy (legacy drop-on-full unless
    /// [`Trace::enable_flight_recorder`] was called). Loss A/Bs use
    /// this to compare the two policies at an equally tight capacity.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(2);
        self.span_capacity = capacity.max(2);
    }

    /// Whether flight-recorder (ring journal) mode is active.
    pub fn recorder_enabled(&self) -> bool {
        self.recorder
    }

    /// Cumulative spans evicted by the flight-recorder ring.
    pub fn ring_overwrites(&self) -> u64 {
        self.ring_overwrites
    }

    /// Cumulative events evicted by the flight-recorder ring.
    pub fn events_overwritten(&self) -> u64 {
        self.events_overwritten
    }

    /// Evicts the oldest half of the span journal. An evicted span that
    /// is still open can never be closed: its id is removed from the
    /// open bookkeeping so later spans on the same correlation id do
    /// not inherit a dead parent and `span_end` becomes a no-op for it.
    fn evict_oldest_spans(&mut self) {
        let evict = (self.span_capacity / 2).max(1).min(self.spans.len());
        let evicted_open: Vec<(u64, SpanId)> = self.spans[..evict]
            .iter()
            .filter(|s| s.end.is_none())
            .map(|s| (s.corr, s.id))
            .collect();
        for (corr, id) in evicted_open {
            self.open_index.remove(&id.0);
            if let Some(stack) = self.open.get_mut(&corr) {
                stack.retain(|&open| open != id);
                if stack.is_empty() {
                    self.open.remove(&corr);
                }
            }
        }
        self.spans.drain(..evict);
        // Every surviving open span sat past the evicted prefix.
        self.open_index = self
            .open_index
            .iter()
            .map(|(&id, &idx)| (id, idx - evict))
            .collect();
        self.ring_overwrites += evict as u64;
    }

    /// Enables or disables event logging (counters always work).
    pub fn set_log_enabled(&mut self, enabled: bool) {
        self.log_enabled = enabled;
    }

    /// Records an event if logging is enabled and capacity remains.
    pub fn log(&mut self, time: SimTime, source: impl Into<String>, message: impl Into<String>) {
        if !self.log_enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            if self.recorder {
                let evict = (self.capacity / 2).max(1).min(self.events.len());
                self.events.drain(..evict);
                self.events_overwritten += evict as u64;
            } else {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(TraceEvent {
            time,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Opens a structured span on a correlated path. The span's parent
    /// is the innermost span still open on the same correlation id.
    /// Returns [`SpanId::NONE`] (a no-op to end) when the log is full.
    pub fn span_begin(
        &mut self,
        corr: u64,
        time: SimTime,
        source: impl Into<String>,
        stage: impl Into<String>,
        detail: impl Into<String>,
    ) -> SpanId {
        if self.spans.len() >= self.span_capacity {
            if self.recorder {
                self.evict_oldest_spans();
            } else {
                self.spans_dropped += 1;
                return SpanId::NONE;
            }
        }
        let id = SpanId(self.next_span);
        self.next_span += 1;
        let parent = self.open.get(&corr).and_then(|stack| stack.last().copied());
        self.open_index.insert(id.0, self.spans.len());
        self.open.entry(corr).or_default().push(id);
        self.spans.push(SpanRecord {
            id,
            parent,
            corr,
            source: source.into(),
            stage: stage.into(),
            detail: detail.into(),
            start: time,
            end: None,
        });
        id
    }

    /// Closes a span, clamping the end to be no earlier than its start.
    /// Returns the span's duration, or `None` if the id is unknown,
    /// already closed, or the [`SpanId::NONE`] sentinel.
    pub fn span_end(&mut self, id: SpanId, time: SimTime) -> Option<SimDuration> {
        let idx = self.open_index.remove(&id.0)?;
        let record = &mut self.spans[idx];
        let end = time.max(record.start);
        record.end = Some(end);
        let (corr, start) = (record.corr, record.start);
        if let Some(stack) = self.open.get_mut(&corr) {
            if let Some(pos) = stack.iter().rposition(|&open| open == id) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                self.open.remove(&corr);
            }
        }
        Some(end - start)
    }

    /// Records an instant (zero-duration) span on a correlated path —
    /// a point event like `connect` or `deliver.local`.
    pub fn span(
        &mut self,
        corr: u64,
        time: SimTime,
        source: impl Into<String>,
        stage: impl Into<String>,
        detail: impl Into<String>,
    ) -> SpanId {
        let id = self.span_begin(corr, time, source, stage, detail);
        self.span_end(id, time);
        id
    }

    /// All recorded spans, in begin order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The spans of one correlated path, in begin order.
    pub fn spans_for(&self, corr: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.corr == corr)
    }

    /// Number of spans still open (begun, never ended).
    pub fn open_spans(&self) -> usize {
        self.open_index.len()
    }

    /// Number of spans discarded because the span log was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The metrics registry, mutably.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Folds the event/span drop counts into the metrics registry as
    /// `trace.events_dropped` and `trace.spans_dropped` counters (the
    /// delta since the last fold, so repeated runs never double-count).
    /// The keys are always written — every exported snapshot records
    /// whether its trace was lossy, even when the answer is zero.
    pub fn sync_drop_stats(&mut self) {
        let events = self.dropped - self.dropped_folded;
        self.metrics.counter_add("trace.events_dropped", events);
        self.dropped_folded = self.dropped;
        let spans = self.spans_dropped - self.spans_dropped_folded;
        self.metrics.counter_add("trace.spans_dropped", spans);
        self.spans_dropped_folded = self.spans_dropped;
        let ring = self.ring_overwrites - self.ring_overwrites_folded;
        self.metrics.counter_add("trace.ring_overwrites", ring);
        self.ring_overwrites_folded = self.ring_overwrites;
        let ev_ring = self.events_overwritten - self.events_overwritten_folded;
        self.metrics
            .counter_add("trace.events_overwritten", ev_ring);
        self.events_overwritten_folded = self.events_overwritten;
    }

    /// Folds the thread-local payload copy accounting into the metrics
    /// registry — counters `payload.allocs`, `payload.bytes_copied` and
    /// `payload.shared_clones` — draining it. The world calls this at
    /// the end of every run and drains the accounting again when a run
    /// *starts*, so with several worlds on one thread the counters can
    /// no longer leak from one world's snapshot into the next.
    pub fn sync_payload_stats(&mut self) {
        let s = crate::payload::take_stats();
        if s.allocs > 0 {
            self.metrics.counter_add("payload.allocs", s.allocs);
        }
        if s.bytes_copied > 0 {
            self.metrics
                .counter_add("payload.bytes_copied", s.bytes_copied);
        }
        if s.shared_clones > 0 {
            self.metrics
                .counter_add("payload.shared_clones", s.shared_clones);
        }
    }

    /// Adds `n` to the named counter.
    pub fn bump(&mut self, counter: &str, n: u64) {
        self.metrics.counter_add(counter, n);
    }

    /// Returns the value of a counter (zero if never bumped).
    pub fn counter(&self, counter: &str) -> u64 {
        self.metrics.counter(counter)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.metrics.counters()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears events, spans, and metrics.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.dropped_folded = 0;
        self.spans.clear();
        self.spans_dropped = 0;
        self.spans_dropped_folded = 0;
        self.ring_overwrites = 0;
        self.ring_overwrites_folded = 0;
        self.events_overwritten = 0;
        self.events_overwritten_folded = 0;
        self.next_span = 1;
        self.open.clear();
        self.open_index.clear();
        self.metrics.clear();
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new(50_000)
    }
}

/// Aggregate statistics for one network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Frames successfully transmitted (including lost-after-tx frames).
    pub frames: u64,
    /// Payload bytes carried by those frames (excluding link overhead).
    pub payload_bytes: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
    /// Total time the medium was occupied.
    pub busy: SimDuration,
}

impl SegmentStats {
    /// Mean utilization of the medium over `elapsed` virtual time, in
    /// `[0, 1]`. Returns 0 for zero elapsed time.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::default();
        t.bump("frames", 2);
        t.bump("frames", 3);
        assert_eq!(t.counter("frames"), 5);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn log_respects_capacity() {
        let mut t = Trace::new(2);
        for i in 0..4 {
            t.log(SimTime::ZERO, "src", format!("event {i}"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn recorder_overwrite_is_distinguishable_from_legacy_drop() {
        // Legacy cap: the NEWEST spans are lost and counted as drops.
        let mut legacy = Trace::new(4);
        for i in 0..10 {
            legacy.span(0, SimTime::from_nanos(i), "src", "stage", format!("{i}"));
        }
        legacy.sync_drop_stats();
        assert_eq!(legacy.counter("trace.spans_dropped"), 6);
        assert_eq!(legacy.counter("trace.ring_overwrites"), 0);
        assert_eq!(legacy.spans().len(), 4);
        assert!(legacy.spans().iter().any(|s| s.detail == "0"));
        assert!(legacy.spans().iter().all(|s| s.detail != "9"));

        // Flight recorder: the OLDEST spans are overwritten and counted
        // as ring overwrites; drops stay at zero and the tail survives.
        let mut ring = Trace::new(4);
        ring.enable_flight_recorder(4);
        for i in 0..10 {
            ring.span(0, SimTime::from_nanos(i), "src", "stage", format!("{i}"));
        }
        ring.sync_drop_stats();
        assert_eq!(ring.counter("trace.spans_dropped"), 0);
        assert_eq!(
            ring.counter("trace.ring_overwrites"),
            ring.ring_overwrites()
        );
        assert!(ring.ring_overwrites() > 0);
        assert!(ring.spans().iter().any(|s| s.detail == "9"));
        assert!(ring.spans().iter().all(|s| s.detail != "0"));
        assert_eq!(
            ring.ring_overwrites() + ring.spans().len() as u64,
            10,
            "every span is either retained or counted as overwritten"
        );
        // The folded counter is cumulative, not per-fold delta.
        ring.sync_drop_stats();
        assert_eq!(
            ring.counter("trace.ring_overwrites"),
            ring.ring_overwrites()
        );
    }

    #[test]
    fn recorder_event_ring_keeps_tail() {
        let mut t = Trace::new(4);
        t.enable_flight_recorder(4);
        for i in 0..10 {
            t.log(SimTime::from_nanos(i), "src", format!("event {i}"));
        }
        assert_eq!(t.dropped(), 0);
        assert!(t.events_overwritten() > 0);
        assert!(t.events().iter().any(|e| e.message == "event 9"));
        assert!(t.events().iter().all(|e| e.message != "event 0"));
        assert_eq!(t.events_overwritten() + t.events().len() as u64, 10);
    }

    #[test]
    fn recorder_evicts_open_spans_cleanly() {
        let mut t = Trace::new(4);
        t.enable_flight_recorder(4);
        // An open span on corr 7, then enough instant spans to evict it.
        let stale = t.span_begin(7, SimTime::ZERO, "src", "outer", "");
        for i in 0..8 {
            t.span(0, SimTime::from_nanos(i), "src", "filler", format!("{i}"));
        }
        assert!(t.spans().iter().all(|s| s.stage != "outer"));
        // Ending the evicted span is a no-op, not a panic or corruption.
        assert_eq!(t.span_end(stale, SimTime::from_nanos(99)), None);
        // A new span on the same corr must not inherit the dead parent.
        let fresh = t.span_begin(7, SimTime::from_nanos(100), "src", "inner", "");
        let rec = t.spans().iter().find(|s| s.id == fresh).unwrap();
        assert_eq!(rec.parent, None);
        assert!(t.span_end(fresh, SimTime::from_nanos(101)).is_some());
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut t = Trace::default();
        t.set_log_enabled(false);
        t.log(SimTime::ZERO, "src", "hidden");
        assert!(t.events().is_empty());
    }

    #[test]
    fn event_display_is_readable() {
        let ev = TraceEvent {
            time: SimTime::from_millis(1),
            source: "mapper".to_owned(),
            message: "device found".to_owned(),
        };
        assert_eq!(ev.to_string(), "[1.000ms] mapper: device found");
    }

    #[test]
    fn utilization_is_bounded() {
        let stats = SegmentStats {
            busy: SimDuration::from_millis(500),
            ..SegmentStats::default()
        };
        let u = stats.utilization(SimDuration::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(stats.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::default();
        // Exactly on a bound → that bucket (le semantics).
        h.record(SimDuration::from_nanos(1_000));
        // One over a bound → next bucket.
        h.record(SimDuration::from_nanos(1_001));
        // Zero → first bucket.
        h.record(SimDuration::ZERO);
        // Far past the last bound → overflow bucket.
        h.record(SimDuration::from_secs(1_000));
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2, "0 and 1000 ns share the first bucket");
        assert_eq!(counts[1], 1, "1001 ns lands in the 2 µs bucket");
        assert_eq!(*counts.last().unwrap(), 1, "overflow bucket");
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_secs(1_000));
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile_bound_ns(0.5), None);
        for ms in [1u64, 2, 3, 4] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.mean(), SimDuration::from_nanos(2_500_000));
        // p50 falls in the 2 ms bucket; p100 is the exact recorded max.
        assert_eq!(h.quantile_bound_ns(0.5), Some(2_000_000));
        assert_eq!(h.quantile_bound_ns(1.0), Some(4_000_000));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_bound_ns(q), None);
        }
    }

    #[test]
    fn quantile_of_single_value_is_exact() {
        let mut h = Histogram::default();
        h.record(SimDuration::from_millis(3));
        // The 3 ms value lands in the 5 ms bucket, but the bound is
        // clamped to the recorded max, so every quantile is exact here.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_bound_ns(q), Some(3_000_000));
        }
    }

    #[test]
    fn quantile_in_overflow_bucket_reports_recorded_max() {
        let mut h = Histogram::default();
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_secs(200)); // beyond the last bound
        assert_eq!(h.quantile_bound_ns(0.5), Some(10_000));
        // p99 ranks into the overflow bucket: the exact max is the
        // tightest bound available.
        assert_eq!(h.quantile_bound_ns(0.99), Some(200_000_000_000));
        assert_eq!(h.quantile_bound_ns(1.0), Some(200_000_000_000));
    }

    #[test]
    fn gauges_and_scoping() {
        let mut m = Metrics::default();
        m.counter_add("rt0.advertisements_sent", 3);
        m.counter_add("rt1.advertisements_sent", 7);
        m.gauge_set("rt0.buffer_depth", 42);
        m.gauge_add("rt0.buffer_depth", -2);
        m.observe("rt0.drain_wait", SimDuration::from_millis(1));
        let rt0 = m.scoped("rt0");
        assert_eq!(rt0.counter("advertisements_sent"), 3);
        assert_eq!(rt0.gauge("buffer_depth"), 40);
        assert_eq!(rt0.histogram("drain_wait").unwrap().count(), 1);
        let names: Vec<&str> = rt0.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["advertisements_sent"]);
        let rt1 = m.scoped("rt1");
        assert_eq!(rt1.counter("advertisements_sent"), 7);
        assert_eq!(rt1.gauge("buffer_depth"), 0);
    }

    #[test]
    fn counter_add_saturates_and_marks() {
        let mut m = Metrics::default();
        m.counter_add("c", u64::MAX - 1);
        m.counter_add("c", 5);
        assert_eq!(m.counter("c"), u64::MAX);
        assert_eq!(m.counter("trace.counter_saturated"), 1);
        // Already clamped: stays clamped, marker keeps counting.
        m.counter_add("c", 1);
        assert_eq!(m.counter("c"), u64::MAX);
        assert_eq!(m.counter("trace.counter_saturated"), 2);
        // Non-overflowing adds never touch the marker.
        m.counter_add("d", 7);
        assert_eq!(m.counter("trace.counter_saturated"), 2);
    }

    #[test]
    fn gauge_add_saturates_both_directions() {
        let mut m = Metrics::default();
        m.gauge_set("up", i64::MAX - 1);
        m.gauge_add("up", 10);
        assert_eq!(m.gauge("up"), i64::MAX);
        m.gauge_set("down", i64::MIN + 1);
        m.gauge_add("down", -10);
        assert_eq!(m.gauge("down"), i64::MIN);
        assert_eq!(m.counter("trace.counter_saturated"), 2);
    }

    #[test]
    fn histogram_record_saturates_counts() {
        let mut h = Histogram {
            counts: [u64::MAX; LATENCY_BUCKET_BOUNDS_NS.len() + 1],
            count: u64::MAX,
            sum_ns: u128::MAX,
            min_ns: 0,
            max_ns: 0,
            ..Histogram::default()
        };
        h.record(SimDuration::from_micros(1));
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum_ns(), u128::MAX);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let mut m = Metrics::default();
        m.counter_add("b", 2);
        m.counter_add("a", 1);
        m.gauge_set("g", -5);
        m.observe("lat", SimDuration::from_micros(3));
        let j1 = m.snapshot().to_json();
        let j2 = m.snapshot().to_json();
        assert_eq!(j1, j2);
        // Keys appear sorted regardless of insertion order.
        let a = j1.find("\"a\"").unwrap();
        let b = j1.find("\"b\"").unwrap();
        assert!(a < b);
        assert!(j1.contains("\"g\": -5"));
        assert!(j1.contains("\"count\": 1"));
    }

    #[test]
    fn spans_filter_by_correlation_id() {
        let mut t = Trace::default();
        t.span(7, SimTime::ZERO, "rt0", "connect", "src=alpha");
        t.span(9, SimTime::from_millis(1), "rt0", "connect", "src=beta");
        t.span(
            7,
            SimTime::from_millis(2),
            "upnp-mapper",
            "bridge.upnp.input",
            "port=in",
        );
        let path: Vec<&str> = t.spans_for(7).map(|s| s.stage.as_str()).collect();
        assert_eq!(path, vec!["connect", "bridge.upnp.input"]);
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn structured_spans_nest_and_measure() {
        let mut t = Trace::default();
        let outer = t.span_begin(7, SimTime::ZERO, "rt0", "queue.wait", "");
        let inner = t.span_begin(7, SimTime::from_millis(1), "rt0", "transport.send", "");
        // The instant span nests under the innermost open span.
        let instant = t.span(7, SimTime::from_millis(2), "rt1", "deliver.local", "");
        assert_eq!(
            t.span_end(inner, SimTime::from_millis(3)),
            Some(SimDuration::from_millis(2))
        );
        assert_eq!(
            t.span_end(outer, SimTime::from_millis(4)),
            Some(SimDuration::from_millis(4))
        );
        let spans = t.spans();
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(outer));
        assert_eq!(spans[2].parent, Some(inner));
        assert_eq!(spans[2].id, instant);
        assert_eq!(spans[2].duration(), Some(SimDuration::ZERO));
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn span_end_is_idempotent_and_clamped() {
        let mut t = Trace::default();
        let id = t.span_begin(1, SimTime::from_millis(5), "rt0", "x", "");
        // End before start clamps to zero duration.
        assert_eq!(t.span_end(id, SimTime::ZERO), Some(SimDuration::ZERO));
        assert_eq!(t.span_end(id, SimTime::from_secs(1)), None, "double end");
        assert_eq!(t.span_end(SpanId::NONE, SimTime::ZERO), None);
        assert_eq!(t.spans()[0].end, Some(SimTime::from_millis(5)));
    }

    #[test]
    fn full_span_log_drops_and_sentinel_end_is_noop() {
        let mut t = Trace::new(1);
        let a = t.span_begin(1, SimTime::ZERO, "rt0", "kept", "");
        let b = t.span_begin(1, SimTime::ZERO, "rt0", "lost", "");
        assert!(a.is_recorded());
        assert!(!b.is_recorded());
        assert_eq!(t.span_end(b, SimTime::from_millis(1)), None);
        assert_eq!(t.spans_dropped(), 1);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn drop_stats_fold_as_deltas_and_always_export() {
        let mut t = Trace::new(1);
        t.sync_drop_stats();
        // Lossless traces still export the keys, at zero.
        assert_eq!(t.counter("trace.events_dropped"), 0);
        assert_eq!(t.counter("trace.spans_dropped"), 0);
        assert!(t
            .metrics()
            .snapshot()
            .counters
            .contains_key("trace.spans_dropped"));
        for i in 0..3 {
            t.log(SimTime::ZERO, "src", format!("event {i}"));
            t.span(1, SimTime::ZERO, "src", "stage", "");
        }
        t.sync_drop_stats();
        assert_eq!(t.counter("trace.events_dropped"), 2);
        assert_eq!(t.counter("trace.spans_dropped"), 2);
        // A second fold with no new drops adds nothing.
        t.sync_drop_stats();
        assert_eq!(t.counter("trace.spans_dropped"), 2);
    }
}
