//! Continuous latency attribution: where did the virtual time go?
//!
//! The [`AttributionPlane`] is a profiler that rides the telemetry
//! sampler (so it ticks on the timer wheel, not on a separate clock):
//! at every sample it folds the spans the runtime and the bridges
//! already emit into per-component time totals, decomposed into
//!
//! * **self time** — a span's own duration minus the durations of its
//!   child spans (the component actually doing work),
//! * **queue wait** — time messages spent waiting rather than being
//!   computed on: path buffers (`queue.wait`), the wire under
//!   contention (`transport.send`, held open from serialize to decode),
//!   and blocked QoS drains (`qos.drain-wait`), and
//! * **barrier stall** — wall-clock time a shard spent waiting at
//!   conductor barriers (from the `shard.barrier_stall_ns` histogram;
//!   zero in unsharded or `without_wall_health` runs, which keeps the
//!   byte-diffed artifacts deterministic).
//!
//! **Components** are coarse attribution scopes derived from span
//! metadata: `bridge:{platform}` for `bridge.*` stages, `shard:s{id}`
//! for barrier stalls, and `process:{source}` for everything else.
//!
//! Each component also keeps an **exemplar**: the trace correlation id
//! of the longest span folded into it, so an attribution row links
//! directly to a journey in the span journal (and, when a trigger
//! fired, inside the incident bundle).
//!
//! The fold is incremental — a span-id cursor plus a pending-open set —
//! so each sample touches only spans begun or closed since the last
//! one, and it is a pure function of the deterministic span journal:
//! two identical runs produce byte-identical [`AttributionReport`]
//! JSON. Spans evicted by the flight-recorder ring while still open are
//! counted in `spans_lost` instead of silently vanishing.

use std::collections::{BTreeMap, BTreeSet};

use crate::time::SimTime;
use crate::trace::SpanRecord;

/// Which time category a folded span lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimeKind {
    SelfTime,
    Queue,
}

/// Accumulated virtual-time decomposition for one attribution
/// component.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentTimes {
    /// Self time: span durations minus child-span durations, ns.
    pub self_ns: u64,
    /// Queue wait (`queue.wait`, `transport.send` and `qos.drain-wait`
    /// spans), ns.
    pub queue_ns: u64,
    /// Shard barrier stall (wall-clock, conductor-recorded), ns.
    pub barrier_ns: u64,
    /// Spans folded into this component.
    pub spans: u64,
    /// Largest single span contribution folded so far, ns.
    pub max_span_ns: u64,
    /// Correlation id of the span holding `max_span_ns` (zero when that
    /// span was uncorrelated).
    pub exemplar_corr: u64,
}

impl ComponentTimes {
    /// Total attributed time across all three categories.
    pub fn total_ns(&self) -> u128 {
        u128::from(self.self_ns) + u128::from(self.queue_ns) + u128::from(self.barrier_ns)
    }

    /// The dominant time category (`"self"`, `"queue"`, or
    /// `"barrier"`); ties break self > queue > barrier.
    pub fn dominant(&self) -> &'static str {
        if self.self_ns >= self.queue_ns && self.self_ns >= self.barrier_ns {
            "self"
        } else if self.queue_ns >= self.barrier_ns {
            "queue"
        } else {
            "barrier"
        }
    }
}

/// One attribution snapshot: per-component time decomposition as of a
/// fold instant. Renders to deterministic JSON ([`Self::to_json`]) and
/// parses back ([`Self::from_json`]) so CI can diff a checked-in
/// baseline against the current run (see
/// [`crate::export::diff_attribution`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionReport {
    /// Virtual time the report was built at, ns.
    pub at_ns: u64,
    /// Fold passes taken (one per telemetry sample plus catch-ups).
    pub samples: u64,
    /// Closed spans folded into components so far.
    pub spans_folded: u64,
    /// Spans evicted from the journal while still open — their time
    /// could not be attributed.
    pub spans_lost: u64,
    /// Per-component decomposition, ordered by component key.
    pub components: BTreeMap<String, ComponentTimes>,
}

impl AttributionReport {
    /// The component with the largest attributed total, with its times.
    /// Ties break toward the lexicographically first key.
    pub fn top_component(&self) -> Option<(&str, &ComponentTimes)> {
        self.components
            .iter()
            .max_by(|(ak, av), (bk, bv)| av.total_ns().cmp(&bv.total_ns()).then(bk.cmp(ak)))
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Deterministic pretty JSON; byte-identical across identical runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"at_ns\": {},\n", self.at_ns));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"spans_folded\": {},\n", self.spans_folded));
        out.push_str(&format!("  \"spans_lost\": {},\n", self.spans_lost));
        out.push_str("  \"components\": {");
        let mut first = true;
        for (name, c) in &self.components {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            crate::trace::push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"self_ns\": {}, \"queue_ns\": {}, \"barrier_ns\": {}, \"spans\": {}, \"max_span_ns\": {}, \"exemplar_corr\": {}}}",
                c.self_ns, c.queue_ns, c.barrier_ns, c.spans, c.max_span_ns, c.exemplar_corr,
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses the exact shape [`Self::to_json`] emits (the perf doctor
    /// reads checked-in baseline artifacts with this). Returns `None`
    /// on anything malformed rather than guessing.
    pub fn from_json(text: &str) -> Option<AttributionReport> {
        fn field_u64(line: &str, key: &str) -> Option<u64> {
            let needle = format!("\"{key}\": ");
            let at = line.find(&needle)? + needle.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        }
        let mut report = AttributionReport::default();
        let mut seen_top = 0u32;
        for line in text.lines() {
            let trimmed = line.trim();
            if let Some(v) = field_u64(trimmed, "at_ns") {
                report.at_ns = v;
                seen_top += 1;
            } else if let Some(v) = field_u64(trimmed, "samples") {
                report.samples = v;
                seen_top += 1;
            } else if let Some(v) = field_u64(trimmed, "spans_folded") {
                report.spans_folded = v;
                seen_top += 1;
            } else if let Some(v) = field_u64(trimmed, "spans_lost") {
                report.spans_lost = v;
                seen_top += 1;
            } else if trimmed.contains("{\"self_ns\": ") {
                let name_end = trimmed[1..].find('"')? + 1;
                if !trimmed.starts_with('"') {
                    return None;
                }
                let name = trimmed[1..name_end].to_owned();
                report.components.insert(
                    name,
                    ComponentTimes {
                        self_ns: field_u64(trimmed, "self_ns")?,
                        queue_ns: field_u64(trimmed, "queue_ns")?,
                        barrier_ns: field_u64(trimmed, "barrier_ns")?,
                        spans: field_u64(trimmed, "spans")?,
                        max_span_ns: field_u64(trimmed, "max_span_ns")?,
                        exemplar_corr: field_u64(trimmed, "exemplar_corr")?,
                    },
                );
            }
        }
        (seen_top == 4).then_some(report)
    }
}

/// The continuous profiler state: an incremental fold over the span
/// journal plus the folded per-component aggregates. Owned by the
/// world, advanced at every telemetry sample.
#[derive(Debug, Default)]
pub struct AttributionPlane {
    /// Highest span id already examined; spans at or below it are
    /// folded, pending, or lost.
    cursor: u64,
    /// Span ids seen but still open at the last fold.
    pending: BTreeSet<u64>,
    /// Child-span durations accumulated for parents not yet folded,
    /// keyed by parent span id.
    child_ns: BTreeMap<u64, u64>,
    /// Barrier-stall nanoseconds already attributed (the
    /// `barrier_stall` histogram is cumulative; the fold takes deltas).
    barrier_folded_ns: u128,
    samples: u64,
    spans_folded: u64,
    spans_lost: u64,
    components: BTreeMap<String, ComponentTimes>,
}

/// Maps a span to its attribution component and time category.
///
/// Wait stages are everything a message spends *not being computed on*:
/// `queue.wait` (sitting in a path buffer), `transport.send` (held open
/// from serialization on the sending runtime to decode on the receiving
/// one, so under contention its duration is dominated by medium
/// queueing), and `qos.drain-wait` (a blocked drain sleeping on its
/// retry timer). Everything else is self time — bridge stages on the
/// platform's `bridge:` component, the rest on the owning process.
fn component_of(stage: &str, source: &str) -> (String, TimeKind) {
    if stage == "queue.wait" || stage == "transport.send" || stage == "qos.drain-wait" {
        (format!("process:{source}"), TimeKind::Queue)
    } else if let Some(rest) = stage.strip_prefix("bridge.") {
        let platform = rest.split('.').next().unwrap_or(rest);
        (format!("bridge:{platform}"), TimeKind::SelfTime)
    } else {
        (format!("process:{source}"), TimeKind::SelfTime)
    }
}

impl AttributionPlane {
    /// Fresh plane; nothing folded yet.
    pub fn new() -> AttributionPlane {
        AttributionPlane::default()
    }

    /// Folds everything that changed in the span journal since the last
    /// fold: newly begun spans are examined once, spans still open stay
    /// pending, and spans the journal evicted while open are counted as
    /// lost. `barrier` carries this shard's id and the cumulative
    /// barrier-stall total, attributed as a delta to `shard:s{id}`.
    ///
    /// `spans` must be the world's span journal: ids strictly
    /// increasing, evictions only ever removing a prefix — both are
    /// [`crate::Trace`] invariants the incremental cursor relies on.
    pub fn fold(&mut self, spans: &[SpanRecord], barrier: Option<(u16, u128)>) {
        self.samples = self.samples.saturating_add(1);

        // Phase A: find what is newly ready. Pending opens from earlier
        // folds are re-checked first; then the cursor advances over the
        // newly appended suffix.
        let seen = spans.partition_point(|s| s.id.0 <= self.cursor);
        let mut ready: Vec<&SpanRecord> = Vec::new();
        if !self.pending.is_empty() {
            let prefix = &spans[..seen];
            let mut resolved: Vec<u64> = Vec::new();
            for &id in self.pending.iter() {
                match prefix.binary_search_by_key(&id, |s| s.id.0) {
                    Ok(at) => {
                        if prefix[at].end.is_some() {
                            ready.push(&prefix[at]);
                            resolved.push(id);
                        }
                    }
                    Err(_) => {
                        // Evicted by the ring while still open.
                        self.spans_lost = self.spans_lost.saturating_add(1);
                        self.child_ns.remove(&id);
                        resolved.push(id);
                    }
                }
            }
            for id in resolved {
                self.pending.remove(&id);
            }
        }
        for s in &spans[seen..] {
            if s.end.is_some() {
                ready.push(s);
            } else {
                self.pending.insert(s.id.0);
            }
        }
        if let Some(last) = spans.last() {
            self.cursor = self.cursor.max(last.id.0);
        }
        // Fold in id order so the "longest span wins the exemplar" tie
        // break is independent of how a span became ready.
        ready.sort_by_key(|s| s.id.0);

        // Phase B: accumulate child durations onto parents that have
        // not been folded yet, so a parent folded later reports true
        // self time. (A parent always has a smaller id than its child,
        // so it is either in this batch, still pending, or was already
        // folded with its full duration — in which case the child's
        // time is intentionally not subtracted twice.)
        let batch: BTreeSet<u64> = ready.iter().map(|s| s.id.0).collect();
        for s in &ready {
            if let Some(parent) = s.parent {
                if batch.contains(&parent.0) || self.pending.contains(&parent.0) {
                    let slot = self.child_ns.entry(parent.0).or_insert(0);
                    *slot = slot.saturating_add(s.duration().map_or(0, |d| d.as_nanos()));
                }
            }
        }

        // Phase C: attribute each ready span's own time.
        for s in &ready {
            let own = s
                .duration()
                .map_or(0, |d| d.as_nanos())
                .saturating_sub(self.child_ns.remove(&s.id.0).unwrap_or(0));
            let (key, kind) = component_of(&s.stage, &s.source);
            let c = self.components.entry(key).or_default();
            match kind {
                TimeKind::SelfTime => c.self_ns = c.self_ns.saturating_add(own),
                TimeKind::Queue => c.queue_ns = c.queue_ns.saturating_add(own),
            }
            c.spans = c.spans.saturating_add(1);
            if own > c.max_span_ns {
                c.max_span_ns = own;
                c.exemplar_corr = s.corr;
            }
            self.spans_folded = self.spans_folded.saturating_add(1);
        }

        // Barrier stall: cumulative histogram total, attributed as a
        // delta. Empty in unsharded and `without_wall_health` runs.
        if let Some((shard, total_ns)) = barrier {
            let delta = total_ns.saturating_sub(self.barrier_folded_ns);
            if delta > 0 {
                self.barrier_folded_ns = total_ns;
                let c = self
                    .components
                    .entry(format!("shard:s{shard}"))
                    .or_default();
                c.barrier_ns = c
                    .barrier_ns
                    .saturating_add(delta.min(u128::from(u64::MAX)) as u64);
            }
        }
    }

    /// Builds a snapshot of the folded aggregates as of `at`.
    pub fn report(&self, at: SimTime) -> AttributionReport {
        AttributionReport {
            at_ns: at.as_nanos(),
            samples: self.samples,
            spans_folded: self.spans_folded,
            spans_lost: self.spans_lost,
            components: self.components.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanId;

    fn span(
        id: u64,
        parent: Option<u64>,
        corr: u64,
        source: &str,
        stage: &str,
        start_ns: u64,
        end_ns: Option<u64>,
    ) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: parent.map(SpanId),
            corr,
            source: source.to_owned(),
            stage: stage.to_owned(),
            detail: String::new(),
            start: SimTime::from_nanos(start_ns),
            end: end_ns.map(SimTime::from_nanos),
        }
    }

    #[test]
    fn fold_decomposes_self_queue_and_barrier() {
        let mut plane = AttributionPlane::new();
        let spans = vec![
            span(1, None, 7, "umiddle-runtime", "deliver.local", 0, Some(100)),
            span(2, Some(1), 7, "umiddle-runtime", "queue.wait", 10, Some(40)),
            span(3, None, 7, "mapper", "bridge.upnp.input", 50, Some(80)),
        ];
        plane.fold(&spans, Some((1, 500)));
        let r = plane.report(SimTime::from_nanos(100));
        let rt = &r.components["process:umiddle-runtime"];
        assert_eq!(rt.self_ns, 70); // 100 minus the 30 ns child
        assert_eq!(rt.queue_ns, 30);
        assert_eq!(rt.exemplar_corr, 7);
        assert_eq!(r.components["bridge:upnp"].self_ns, 30);
        assert_eq!(r.components["shard:s1"].barrier_ns, 500);
        assert_eq!(r.spans_folded, 3);
        assert_eq!(r.spans_lost, 0);

        // Barrier total is cumulative: refolding with the same total
        // attributes nothing new.
        plane.fold(&spans[..0], Some((1, 500)));
        assert_eq!(
            plane.report(SimTime::ZERO).components["shard:s1"].barrier_ns,
            500
        );
    }

    #[test]
    fn fold_is_incremental_and_handles_late_closes() {
        let mut plane = AttributionPlane::new();
        // First fold: parent still open, child closed.
        let mut spans = vec![
            span(1, None, 9, "umiddle-runtime", "deliver.local", 0, None),
            span(2, Some(1), 9, "umiddle-runtime", "queue.wait", 0, Some(25)),
        ];
        plane.fold(&spans, None);
        assert_eq!(plane.report(SimTime::ZERO).spans_folded, 1);

        // Second fold: the parent has closed; its self time excludes
        // the child folded a sample earlier.
        spans[0].end = Some(SimTime::from_nanos(100));
        plane.fold(&spans, None);
        let r = plane.report(SimTime::ZERO);
        let rt = &r.components["process:umiddle-runtime"];
        assert_eq!(rt.self_ns, 75);
        assert_eq!(rt.queue_ns, 25);
        assert_eq!(r.spans_folded, 2);
    }

    #[test]
    fn evicted_open_spans_count_as_lost() {
        let mut plane = AttributionPlane::new();
        let spans = vec![span(1, None, 3, "p", "stage", 0, None)];
        plane.fold(&spans, None);
        // The ring evicted span 1 before it ever closed.
        let later = vec![span(2, None, 3, "p", "stage", 5, Some(9))];
        plane.fold(&later, None);
        let r = plane.report(SimTime::ZERO);
        assert_eq!(r.spans_lost, 1);
        assert_eq!(r.spans_folded, 1);
    }

    #[test]
    fn report_json_round_trips() {
        let mut plane = AttributionPlane::new();
        let spans = vec![
            span(1, None, 7, "umiddle-runtime", "queue.wait", 0, Some(40)),
            span(2, None, 0, "mapper", "bridge.bt.output", 0, Some(10)),
        ];
        plane.fold(&spans, Some((0, 123)));
        let report = plane.report(SimTime::from_nanos(99));
        let parsed = AttributionReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
        assert!(AttributionReport::from_json("{}").is_none());
    }

    #[test]
    fn dominant_and_top_component() {
        let mut c = ComponentTimes::default();
        assert_eq!(c.dominant(), "self");
        c.queue_ns = 10;
        assert_eq!(c.dominant(), "queue");
        c.barrier_ns = 11;
        assert_eq!(c.dominant(), "barrier");
        c.self_ns = 11;
        assert_eq!(c.dominant(), "self");

        let mut report = AttributionReport::default();
        assert!(report.top_component().is_none());
        report.components.insert(
            "a".into(),
            ComponentTimes {
                self_ns: 5,
                ..ComponentTimes::default()
            },
        );
        report.components.insert(
            "b".into(),
            ComponentTimes {
                queue_ns: 9,
                ..ComponentTimes::default()
            },
        );
        assert_eq!(report.top_component().unwrap().0, "b");
    }
}
