//! Sharded multi-core execution: conservative-lookahead synchronization
//! across per-core `World` shards.
//!
//! Each shard is a full [`World`] — its own timer wheel, batch plane,
//! RNG stream, and metrics registry — built and run on its own OS
//! thread (a `World` is not `Send`, so worlds never migrate; closures
//! do). Shards execute in lockstep windows of one *lookahead* `L`:
//! within `[kL, (k+1)L)` every shard runs independently, then all meet
//! at a barrier to exchange cross-shard messages. The protocol is safe
//! because a message emitted at time `t` inside window `k` arrives at
//! `t + link_latency ≥ kL + L = (k+1)L` — never inside a window any
//! sibling has already executed (enforced at build time:
//! [`ShardConfig::validate`](crate::ShardConfig) rejects
//! `link_latency < lookahead`).
//!
//! Determinism: for a fixed shard count the merged schedule is
//! byte-identical across runs. Every decision the window loop takes
//! (continue/stop, next window start) derives from values that are
//! deterministic functions of simulation state — summed work votes and
//! a min-merged horizon exchanged through the barrier — and cross-shard
//! messages are injected in `(arrival, src_shard, seq)` order, a total
//! order independent of thread interleaving. Wall-clock measurements
//! (barrier stall, exec shares) are kept out of the worlds' metrics
//! unless [`ShardPlan::fold_wall_health`] asks for them, so byte-diff
//! gates can compare sharded runs directly.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::error::SimResult;
use crate::incident::{IncidentBundle, TriggerKind};
use crate::time::{SimDuration, SimTime};
use crate::world::{CrossMessage, ShardConfig, World};

/// How a sharded run is partitioned and synchronized.
#[derive(Debug, Clone, Copy)]
pub struct ShardPlan {
    /// Number of shards (and threads). `1` runs inline on the calling
    /// thread through the same window loop.
    pub shards: u16,
    /// Conservative lookahead: the synchronized window length.
    pub lookahead: SimDuration,
    /// Modeled cross-shard link latency (`>= lookahead`).
    pub link_latency: SimDuration,
    /// Fold wall-clock health signals (`shard.barrier_stall_ns`,
    /// `shard.s{N}.exec_share_milli`) into each world's metrics. Wall
    /// time is nondeterministic, so runs that must be byte-identical
    /// disable this ([`ShardPlan::without_wall_health`]).
    pub fold_wall_health: bool,
    /// Virtual instant at which throughput measurement starts: events
    /// and wall time before the first window boundary at or past it are
    /// excluded from the measured totals (setup/churn-in traffic would
    /// otherwise dilute a scaling curve).
    pub warmup: SimTime,
}

impl ShardPlan {
    /// A plan with `link_latency == lookahead` (the tightest legal
    /// coupling), wall-health folding on, and no warmup.
    pub fn new(shards: u16, lookahead: SimDuration) -> Self {
        ShardPlan {
            shards,
            lookahead,
            link_latency: lookahead,
            fold_wall_health: true,
            warmup: SimTime::ZERO,
        }
    }

    /// Sets a cross-shard link latency larger than the lookahead.
    pub fn with_link_latency(mut self, latency: SimDuration) -> Self {
        self.link_latency = latency;
        self
    }

    /// Disables wall-clock health folding, for byte-identical runs.
    pub fn without_wall_health(mut self) -> Self {
        self.fold_wall_health = false;
        self
    }

    /// Excludes virtual time before `warmup` from throughput totals.
    pub fn with_warmup(mut self, warmup: SimTime) -> Self {
        self.warmup = warmup;
        self
    }

    fn config_for(&self, shard: u16) -> ShardConfig {
        ShardConfig {
            shard,
            shards: self.shards,
            lookahead: self.lookahead,
            link_latency: self.link_latency,
        }
    }
}

/// A shard's identity, handed to the build and collect closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// This shard's id, `0..shards`.
    pub shard: u16,
    /// Total shard count.
    pub shards: u16,
}

/// Per-shard outcome of a sharded run.
#[derive(Debug)]
pub struct ShardRun<R> {
    /// The shard this row describes.
    pub shard: u16,
    /// Whatever the collect closure returned.
    pub result: R,
    /// Events dispatched over the whole run.
    pub events: u64,
    /// Events dispatched after the warmup boundary.
    pub events_measured: u64,
    /// Wall nanoseconds from the warmup boundary to the end of the
    /// window loop (includes barrier stalls — it is the real elapsed
    /// time of the measured phase on this thread).
    pub measure_wall_ns: u64,
    /// Wall nanoseconds spent executing events (all windows).
    pub exec_ns: u64,
    /// Wall nanoseconds spent waiting at barriers (all windows).
    pub barrier_stall_ns: u64,
    /// Cross-shard messages this shard sent.
    pub cross_sent: u64,
    /// Synchronized windows executed (empty regions are jumped, so this
    /// counts barriers actually paid, not elapsed-time / lookahead).
    pub windows: u64,
    /// Per-window mean dispatch cost in the measured phase (exec ns /
    /// events, for windows that dispatched at least one event). The
    /// caller derives tail percentiles from these.
    pub dispatch_ns_samples: Vec<u64>,
}

/// The merged outcome of [`run_sharded`]: one [`ShardRun`] per shard,
/// in shard order.
#[derive(Debug)]
pub struct ShardReport<R> {
    /// Per-shard rows, indexed by shard id.
    pub shards: Vec<ShardRun<R>>,
}

impl<R> ShardReport<R> {
    /// Total events dispatched across all shards.
    pub fn events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Measured events/sec of the whole federation: post-warmup events
    /// across all shards over the longest shard's measured wall time
    /// (the run is only as fast as its slowest shard).
    pub fn events_per_sec(&self) -> f64 {
        let events: u64 = self.shards.iter().map(|s| s.events_measured).sum();
        let wall = self
            .shards
            .iter()
            .map(|s| s.measure_wall_ns)
            .max()
            .unwrap_or(0);
        if wall == 0 {
            return 0.0;
        }
        events as f64 * 1e9 / wall as f64
    }

    /// Total wall nanoseconds spent stalled at barriers, summed over
    /// shards.
    pub fn barrier_stall_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.barrier_stall_ns).sum()
    }
}

/// The panic payload that surfaces from [`run_sharded`] when a shard
/// with an enabled flight recorder
/// ([`World::enable_flight_recorder`]) panics mid-window: the original
/// panic message plus the incident bundle the dying shard cut from its
/// ring journal before unwinding. Callers that `catch_unwind` around
/// `run_sharded` can downcast the payload to this type and recover the
/// evidence; without a flight recorder the original payload propagates
/// untouched.
#[derive(Debug)]
pub struct ShardPanicIncident {
    /// The shard that panicked.
    pub shard: u16,
    /// The original panic message.
    pub message: String,
    /// The bundle captured at the instant of the panic.
    pub bundle: IncidentBundle,
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_owned()
    }
}

/// Runs one window's events with the flight recorder armed for panics:
/// a panic inside a process handler cuts a shard-panic incident bundle
/// from the world's ring journal, then resumes unwinding with a
/// [`ShardPanicIncident`] payload so the evidence survives the unwind.
fn run_window_guarded(world: &mut World, shard: u16, window_end: u64) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        world.run_before(SimTime::from_nanos(window_end));
    }));
    if let Err(payload) = outcome {
        let message = panic_message(payload.as_ref());
        world.capture_incident(
            TriggerKind::ShardPanic,
            format!("shard {shard} panicked: {message}"),
        );
        match world.incidents().last() {
            Some(bundle) => resume_unwind(Box::new(ShardPanicIncident {
                shard,
                message,
                bundle: bundle.clone(),
            })),
            None => resume_unwind(payload),
        }
    }
}

/// Runs `plan.shards` worlds to `deadline` under conservative-lookahead
/// synchronization.
///
/// Every shard gets a fresh `World::new(seed)` — identical parent seed;
/// [`World::configure_shard`] immediately splits the RNG onto the
/// shard's stream — then `build` populates it and the window loop runs
/// it. After the final barrier each world is advanced to `deadline`
/// (folding metrics exactly like a plain `run_until`) and `collect`
/// extracts whatever the caller wants back across the thread boundary.
///
/// With `plan.shards == 1` everything happens inline on the calling
/// thread: same loop, no spawn, and the per-window bookkeeping is
/// allocation-free, so the single-shard path stays within noise of
/// calling `run_until` directly.
///
/// A panic on any shard thread poisons the barrier (so siblings fail
/// fast instead of deadlocking) and resurfaces on the caller.
///
/// # Errors
///
/// Propagates plan validation errors and any error the build closure
/// returns (the first, in shard order).
pub fn run_sharded<R, B, C>(
    plan: &ShardPlan,
    seed: u64,
    deadline: SimTime,
    build: B,
    collect: C,
) -> SimResult<ShardReport<R>>
where
    R: Send,
    B: Fn(&mut World, ShardInfo) -> SimResult<()> + Sync,
    C: Fn(&mut World, ShardInfo) -> R + Sync,
{
    plan.config_for(0).validate()?;
    let n = plan.shards as usize;
    let exchange = Exchange::new(n);

    if n == 1 {
        let run = shard_main(plan, 0, seed, deadline, &exchange, &build, &collect)?;
        return Ok(ShardReport { shards: vec![run] });
    }

    let slots: Vec<Mutex<Option<SimResult<ShardRun<R>>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let mut panic_payload = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (shard, slot) in slots.iter().enumerate() {
            let exchange = &exchange;
            let build = &build;
            let collect = &collect;
            handles.push(scope.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    shard_main(plan, shard as u16, seed, deadline, exchange, build, collect)
                }));
                match outcome {
                    Ok(run) => *slot.lock().expect("result slot") = Some(run),
                    Err(payload) => {
                        // Wake every sibling parked at the barrier so the
                        // whole run fails instead of deadlocking.
                        exchange.barrier.poison();
                        resume_unwind(payload);
                    }
                }
            }));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic_payload.get_or_insert(payload);
            }
        }
    });
    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }

    let mut shards = Vec::with_capacity(n);
    for slot in &slots {
        let run = slot
            .lock()
            .expect("result slot")
            .take()
            .expect("every non-panicking shard fills its slot");
        shards.push(run?);
    }
    Ok(ShardReport { shards })
}

/// One shard's whole life: build the world, run the window loop in
/// lockstep with siblings, finalize, collect.
fn shard_main<R, B, C>(
    plan: &ShardPlan,
    shard: u16,
    seed: u64,
    deadline: SimTime,
    exchange: &Exchange,
    build: &B,
    collect: &C,
) -> SimResult<ShardRun<R>>
where
    B: Fn(&mut World, ShardInfo) -> SimResult<()>,
    C: Fn(&mut World, ShardInfo) -> R,
{
    let info = ShardInfo {
        shard,
        shards: plan.shards,
    };
    let mut world = World::new(seed);
    world.configure_shard(plan.config_for(shard))?;
    let built = build(&mut world, info);
    // A build error on one shard must not strand siblings at barrier
    // one: every shard still votes (an erroring shard votes "no work"),
    // and the zero total ends the loop everywhere on round one.
    let build_failed = built.is_err();

    let lookahead = plan.lookahead.as_nanos();
    let deadline_ns = deadline.as_nanos();
    // Cross-shard messages received but not yet due, kept sorted by the
    // (arrival, src_shard, seq) total order.
    let mut pending: Vec<CrossMessage> = Vec::new();
    let mut window_start: u64 = 0;
    let mut events_at_window: u64 = 0;

    let mut exec_ns: u64 = 0;
    let mut stall_ns: u64 = 0;
    let mut windows: u64 = 0;
    // One sample per measured window; sized up front (capped) so the
    // steady-state window loop does not allocate.
    let measured_windows = deadline_ns.saturating_sub(plan.warmup.as_nanos()) / lookahead.max(1);
    let mut dispatch_ns_samples: Vec<u64> =
        Vec::with_capacity((measured_windows + 2).min(4096) as usize);
    let mut measure: Option<(Instant, u64)> = None; // (wall start, events at start)
    let mut measure_wall_ns: u64 = 0;

    loop {
        let parity = (windows & 1) as usize;
        // Events at exactly the deadline belong to the run: the last
        // window's exclusive bound is one past it.
        let window_end = (window_start + lookahead).min(deadline_ns + 1);
        if measure.is_none() && window_start >= plan.warmup.as_nanos() {
            measure = Some((Instant::now(), world.events_processed()));
        }

        if !build_failed {
            // Inject the cross traffic due this window, oldest first.
            let due = pending.partition_point(|m| m.arrival.as_nanos() < window_end);
            for msg in pending.drain(..due) {
                world.inject_cross(msg);
            }
            world.note_external_pending(pending.len() as u64);

            let t0 = Instant::now();
            if world.flight_recorder_enabled() {
                run_window_guarded(&mut world, shard, window_end);
            } else {
                world.run_before(SimTime::from_nanos(window_end));
            }
            let elapsed = t0.elapsed().as_nanos() as u64;
            exec_ns += elapsed;
            let events_now = world.events_processed();
            let window_events = events_now - events_at_window;
            events_at_window = events_now;
            if measure.is_some() && window_events > 0 {
                dispatch_ns_samples.push(elapsed / window_events);
            }
        }

        // Publish the window's cross traffic and this shard's vote.
        let out = if build_failed {
            Vec::new()
        } else {
            world.take_cross_outbox()
        };
        let mut horizon = u64::MAX;
        for msg in &out {
            horizon = horizon.min(msg.arrival.as_nanos());
        }
        if let Some(first) = pending.first() {
            horizon = horizon.min(first.arrival.as_nanos());
        }
        if let Some(next) = world.next_event_time() {
            horizon = horizon.min(next.as_nanos());
        }
        let vote = if build_failed {
            0
        } else {
            world.events_pending() + pending.len() as u64 + out.len() as u64
        };
        for msg in out {
            exchange.inboxes[msg.dst_shard as usize]
                .lock()
                .expect("shard inbox")
                .push(msg);
        }
        exchange.votes[parity].fetch_add(vote, Ordering::Relaxed);
        exchange.horizon[parity].fetch_min(horizon, Ordering::Relaxed);

        let w0 = Instant::now();
        let leader = exchange.barrier.wait();
        let mut waited = w0.elapsed().as_nanos() as u64;

        // All shards published before the barrier; these reads are
        // stable. The leader resets the *other* parity slot — last read
        // a full round ago — for the next window to accumulate into.
        let total = exchange.votes[parity].load(Ordering::Relaxed);
        let merged_horizon = exchange.horizon[parity].load(Ordering::Relaxed);
        if leader {
            exchange.votes[1 - parity].store(0, Ordering::Relaxed);
            exchange.horizon[1 - parity].store(u64::MAX, Ordering::Relaxed);
        }
        // Drain this shard's inbox (siblings cannot publish again until
        // they pass the second barrier) and restore the total order.
        {
            let mut inbox = exchange.inboxes[shard as usize]
                .lock()
                .expect("shard inbox");
            if !inbox.is_empty() {
                pending.append(&mut inbox);
                pending.sort_unstable_by_key(|m| (m.arrival, m.src_shard, m.seq));
            }
        }
        let w1 = Instant::now();
        exchange.barrier.wait();
        waited += w1.elapsed().as_nanos() as u64;
        stall_ns += waited;
        if plan.fold_wall_health {
            world.record_barrier_stall(SimDuration::from_nanos(waited));
        }
        windows += 1;

        if total == 0 || window_end > deadline_ns {
            break;
        }
        // Jump deterministically over empty regions: resume at the
        // window containing the merged horizon (never re-entering an
        // executed window). `total > 0` guarantees a finite horizon.
        window_start = window_end.max(merged_horizon / lookahead * lookahead);
        if window_start > deadline_ns {
            break;
        }
    }
    let mut events_measured = 0;
    if let Some((t0, events0)) = measure {
        measure_wall_ns = t0.elapsed().as_nanos() as u64;
        events_measured = world.events_processed() - events0;
    }

    if plan.fold_wall_health {
        // Exchange exec times so every world's doctor sees the whole
        // fleet: a straggler shard has an outsized share of the total
        // execution time (its siblings' stall mirrors it).
        exchange.exec_ns[shard as usize].store(exec_ns, Ordering::Relaxed);
        exchange.barrier.wait();
        let total_exec: u64 = exchange
            .exec_ns
            .iter()
            .map(|e| e.load(Ordering::Relaxed))
            .sum();
        if total_exec > 0 {
            for (j, e) in exchange.exec_ns.iter().enumerate() {
                let share = e.load(Ordering::Relaxed) as u128 * 1000 * plan.shards as u128
                    / total_exec as u128;
                world
                    .trace_mut()
                    .metrics_mut()
                    .gauge_set(&format!("shard.s{j}.exec_share_milli"), share as i64);
            }
        }
    }

    // Past the last barrier: a shard whose build failed reports its
    // error only now, so siblings were never stranded mid-protocol.
    built?;

    // Advance to the deadline and fold end-of-run metrics exactly like
    // an unsharded run (the wheel is already drained below the bound).
    world.run_until(deadline);

    let cross_sent = world.trace_mut().counter("shard.cross_sent");
    let result = collect(&mut world, info);
    Ok(ShardRun {
        shard,
        result,
        events: world.events_processed(),
        events_measured,
        measure_wall_ns,
        exec_ns,
        barrier_stall_ns: stall_ns,
        cross_sent,
        windows,
        dispatch_ns_samples,
    })
}

/// Shared synchronization state of one sharded run.
struct Exchange {
    /// Per-destination-shard mailboxes for the window's cross traffic.
    inboxes: Vec<Mutex<Vec<CrossMessage>>>,
    /// Double-buffered work votes: window `k` accumulates into slot
    /// `k & 1` while the leader resets the other slot, so a fast shard
    /// entering the next window can never race a slow shard's read.
    votes: [AtomicU64; 2],
    /// Double-buffered min-merged next-event horizon (ns), same parity
    /// scheme.
    horizon: [AtomicU64; 2],
    /// Per-shard total exec time, exchanged once after the loop.
    exec_ns: Vec<AtomicU64>,
    barrier: Barrier,
}

impl Exchange {
    fn new(n: usize) -> Exchange {
        Exchange {
            inboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            votes: [AtomicU64::new(0), AtomicU64::new(0)],
            horizon: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
            exec_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            barrier: Barrier::new(n),
        }
    }
}

/// A reusable sense-reversing barrier that can be poisoned: a panicking
/// shard wakes every waiter, which then panic too instead of
/// deadlocking (`std::sync::Barrier` has no such escape hatch).
struct Barrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

impl Barrier {
    fn new(n: usize) -> Barrier {
        Barrier {
            n,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `n` parties arrive; returns `true` on exactly
    /// one of them (the leader). Panics if the barrier is or becomes
    /// poisoned.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().expect("barrier state");
        assert!(!s.poisoned, "a sibling shard panicked");
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return true;
        }
        let generation = s.generation;
        while s.generation == generation && !s.poisoned {
            s = self.cv.wait(s).expect("barrier wait");
        }
        assert!(!s.poisoned, "a sibling shard panicked");
        false
    }

    /// Marks the barrier failed and wakes every waiter.
    fn poison(&self) {
        let mut s = self.state.lock().expect("barrier state");
        s.poisoned = true;
        self.cv.notify_all();
    }
}
