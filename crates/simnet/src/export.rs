//! Deterministic trace exporters.
//!
//! Span exporters are pure functions of the recorded span slice, and
//! [`open_metrics`] is a pure function of a metrics snapshot — so two
//! seeded runs of the same world export byte-identical artifacts (the
//! determinism gates in `ci.sh` diff them):
//!
//! - [`perfetto_trace_json`]: Chrome `trace_event` JSON, loadable in
//!   `ui.perfetto.dev` or `chrome://tracing`. One virtual *thread per
//!   process* (mapper, runtime, device, …), timestamps in virtual-time
//!   microseconds, span metadata (correlation id, parent, detail) in
//!   `args`.
//! - [`folded_stacks`]: folded-stack flamegraph lines
//!   (`frame;frame;frame value`), one stack per span-tree path rooted at
//!   its correlation id, weighted by self time in nanoseconds. Feed to
//!   any `flamegraph.pl`-compatible renderer.
//!
//! No floating point is involved: microsecond timestamps are rendered as
//! integer-division quotient plus a three-digit nanosecond remainder.

use std::collections::BTreeMap;

use crate::span::{SpanNode, SpanTree};
use crate::trace::{push_json_string, MetricsSnapshot, SpanRecord, LATENCY_BUCKET_BOUNDS_NS};

/// Renders nanoseconds as decimal microseconds (`123.456`) without
/// going through floating point.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Splits a span source into its Perfetto process and thread: a source
/// prefixed `s{N}/` (as written by
/// [`crate::span::merge_shard_spans`]) lands on pid `N + 2` — one track
/// group per shard — under its unprefixed name; everything else stays
/// on pid 1, the unsharded federation track.
fn shard_pid(source: &str) -> (u64, &str) {
    if let Some(rest) = source.strip_prefix('s') {
        if let Some((num, thread)) = rest.split_once('/') {
            if !num.is_empty() && num.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(n) = num.parse::<u64>() {
                    return (n + 2, thread);
                }
            }
        }
    }
    (1, source)
}

/// Exports spans as Chrome/Perfetto `trace_event` JSON.
///
/// Every distinct span source (process name) becomes its own thread,
/// tid assigned in sorted-name order; each span becomes a complete
/// (`"ph": "X"`) event at its virtual start time. Sources carrying an
/// `s{N}/` shard prefix (a merged sharded trace,
/// [`crate::span::merge_shard_spans`]) are grouped into one Perfetto
/// process per shard (`pid N + 2`, named `shard N`); unprefixed sources
/// share pid 1. Spans that never closed are exported zero-length with
/// `"unclosed": true` in `args`, so they remain visible rather than
/// stretching to infinity.
pub fn perfetto_trace_json(spans: &[SpanRecord]) -> String {
    let mut sources: Vec<&str> = spans.iter().map(|s| s.source.as_str()).collect();
    sources.sort_unstable();
    sources.dedup();
    let tids: BTreeMap<&str, usize> = sources
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i + 1))
        .collect();
    let mut shard_pids: Vec<u64> = sources
        .iter()
        .map(|s| shard_pid(s).0)
        .filter(|&p| p > 1)
        .collect();
    shard_pids.sort_unstable();
    shard_pids.dedup();

    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&body);
    };

    push_event(
        &mut out,
        "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"simnet federation\"}}"
            .to_owned(),
    );
    for pid in shard_pids {
        push_event(
            &mut out,
            format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"shard {}\"}}}}",
                pid - 2
            ),
        );
    }
    for (&source, &tid) in &tids {
        let (pid, thread) = shard_pid(source);
        let mut ev = format!(
            "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": "
        );
        push_json_string(&mut ev, thread);
        ev.push_str("}}");
        push_event(&mut out, ev);
    }

    for span in spans {
        let tid = tids[span.source.as_str()];
        let (pid, _) = shard_pid(&span.source);
        let start_ns = span.start.as_nanos();
        let dur_ns = span.duration().map(|d| d.as_nanos()).unwrap_or(0);
        let mut ev = String::from("{\"ph\": \"X\", \"name\": ");
        push_json_string(&mut ev, &span.stage);
        ev.push_str(", \"cat\": ");
        let cat = span.stage.split('.').next().unwrap_or("span");
        push_json_string(&mut ev, cat);
        ev.push_str(&format!(
            ", \"ts\": {}, \"dur\": {}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"corr\": ",
            micros(start_ns),
            micros(dur_ns),
        ));
        push_json_string(&mut ev, &format!("{:#x}", span.corr));
        ev.push_str(&format!(", \"span\": {}", span.id.0));
        if let Some(parent) = span.parent {
            ev.push_str(&format!(", \"parent\": {}", parent.0));
        }
        if !span.detail.is_empty() {
            ev.push_str(", \"detail\": ");
            push_json_string(&mut ev, &span.detail);
        }
        if span.end.is_none() {
            ev.push_str(", \"unclosed\": true");
        }
        ev.push_str("}}");
        push_event(&mut out, ev);
    }
    out.push_str("\n]}\n");
    out
}

/// Exports spans as folded-stack flamegraph lines, weighted by span
/// self time in nanoseconds.
///
/// Each line is `corr:{id};stage;stage… {self_time_ns}`; stacks follow
/// the reconstructed [`SpanTree`] parent links, identical stacks are
/// merged (weights summed), zero-weight stacks (instant spans, unclosed
/// spans) are omitted, and lines are sorted — so output is byte-stable
/// across runs.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for tree in SpanTree::build_all(spans) {
        let root_frame = if tree.corr == 0 {
            "corr:none".to_owned()
        } else {
            format!("corr:{:#x}", tree.corr)
        };
        for root in &tree.roots {
            fold_node(root, &root_frame, &mut weights);
        }
    }
    let mut out = String::new();
    for (stack, ns) in weights {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Exports a metrics snapshot as OpenMetrics text exposition
/// (Prometheus text format): counters as `name_total`, gauges plain,
/// histograms with cumulative `le` buckets plus `_count` and `_sum`,
/// terminated by `# EOF`. Metric names are sanitized to
/// `[a-zA-Z0-9_:]` (every other byte becomes `_`), values are integers,
/// and map order is the registry's sorted order — so output is
/// byte-identical across identical runs.
pub fn open_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let n = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n}_total {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let n = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let n = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKET_BOUNDS_NS.iter().enumerate() {
            cumulative = cumulative.saturating_add(h.bucket_counts()[i]);
            out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_count {}\n{n}_sum {}\n",
            h.count(),
            h.count(),
            h.sum_ns()
        ));
    }
    out.push_str("# EOF\n");
    out
}

/// One row of a differential attribution comparison: how much one
/// (component, time-kind) cell moved between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionDelta {
    /// Attribution component key (`process:…`, `bridge:…`, `shard:…`).
    pub component: String,
    /// Time category: `"self"`, `"queue"`, or `"barrier"`.
    pub kind: &'static str,
    /// Attributed nanoseconds in the baseline snapshot.
    pub before_ns: u64,
    /// Attributed nanoseconds in the current snapshot.
    pub after_ns: u64,
    /// `after - before`, signed (positive = regression).
    pub delta_ns: i128,
    /// The current snapshot's exemplar corr for the component (zero
    /// when it has none) — the journey to look at first.
    pub exemplar_corr: u64,
}

/// A ranked differential attribution report: every (component, kind)
/// cell that moved between two snapshots, biggest regression first.
/// This is the perf doctor's answer to "what regressed, where, by how
/// much" — `perf_sched --check` renders it when a floor fails, so CI
/// names the offending component instead of an aggregate number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionDiff {
    /// Virtual time of the baseline snapshot, ns.
    pub before_at_ns: u64,
    /// Virtual time of the current snapshot, ns.
    pub after_at_ns: u64,
    /// Changed cells, ranked by `delta_ns` descending (regressions
    /// first), ties broken by component then kind.
    pub rows: Vec<AttributionDelta>,
}

impl AttributionDiff {
    /// The worst regression (largest positive delta), if any cell
    /// regressed at all.
    pub fn top_regression(&self) -> Option<&AttributionDelta> {
        self.rows.first().filter(|r| r.delta_ns > 0)
    }

    /// Deterministic pretty JSON; byte-identical across identical runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"before_at_ns\": {},\n", self.before_at_ns));
        out.push_str(&format!("  \"after_at_ns\": {},\n", self.after_at_ns));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"component\": ");
            push_json_string(&mut out, &r.component);
            out.push_str(&format!(
                ", \"kind\": \"{}\", \"before_ns\": {}, \"after_ns\": {}, \"delta_ns\": {}, \"exemplar_corr\": {}}}",
                r.kind, r.before_ns, r.after_ns, r.delta_ns, r.exemplar_corr,
            ));
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-readable ranking for CI logs, at most `limit` rows.
    pub fn to_text(&self, limit: usize) -> String {
        if self.rows.is_empty() {
            return "attribution diff: no component moved\n".to_owned();
        }
        let mut out = String::from("attribution diff (worst regression first):\n");
        for r in self.rows.iter().take(limit.max(1)) {
            let sign = if r.delta_ns >= 0 { "+" } else { "" };
            out.push_str(&format!(
                "  {}/{}: {} -> {} ns ({sign}{} ns, exemplar corr {:#x})\n",
                r.component, r.kind, r.before_ns, r.after_ns, r.delta_ns, r.exemplar_corr,
            ));
        }
        out
    }
}

/// Compares two attribution snapshots — a checked-in baseline and the
/// current run — and ranks every (component, time-kind) cell by how
/// much it regressed. Cells are the union of both snapshots' component
/// sets (a component present on only one side diffs against zero), and
/// unchanged cells are omitted, so a byte-identical pair of snapshots
/// yields an empty diff.
pub fn diff_attribution(
    before: &crate::attrib::AttributionReport,
    after: &crate::attrib::AttributionReport,
) -> AttributionDiff {
    let zero = crate::attrib::ComponentTimes::default();
    let mut rows = Vec::new();
    let keys: std::collections::BTreeSet<&String> = before
        .components
        .keys()
        .chain(after.components.keys())
        .collect();
    for key in keys {
        let b = before.components.get(key).unwrap_or(&zero);
        let a = after.components.get(key).unwrap_or(&zero);
        for (kind, before_ns, after_ns) in [
            ("self", b.self_ns, a.self_ns),
            ("queue", b.queue_ns, a.queue_ns),
            ("barrier", b.barrier_ns, a.barrier_ns),
        ] {
            if before_ns == after_ns {
                continue;
            }
            rows.push(AttributionDelta {
                component: key.clone(),
                kind,
                before_ns,
                after_ns,
                delta_ns: i128::from(after_ns) - i128::from(before_ns),
                exemplar_corr: a.exemplar_corr,
            });
        }
    }
    rows.sort_by(|x, y| {
        y.delta_ns
            .cmp(&x.delta_ns)
            .then_with(|| x.component.cmp(&y.component))
            .then_with(|| x.kind.cmp(y.kind))
    });
    AttributionDiff {
        before_at_ns: before.at_ns,
        after_at_ns: after.at_ns,
        rows,
    }
}

/// Maps a dot-scoped registry name onto the OpenMetrics charset: every
/// byte outside `[a-zA-Z0-9_:]` becomes `_`.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn fold_node(node: &SpanNode, prefix: &str, weights: &mut BTreeMap<String, u64>) {
    // Semicolons separate frames in the folded format, so they cannot
    // appear inside one.
    let frame = node.span.stage.replace(';', ",");
    let stack = format!("{prefix};{frame}");
    let self_ns = node.self_time().as_nanos();
    if self_ns > 0 {
        *weights.entry(stack.clone()).or_insert(0) += self_ns;
    }
    for child in &node.children {
        fold_node(child, &stack, weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::trace::Trace;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn demo_trace() -> Trace {
        let mut t = Trace::default();
        let q = t.span_begin(7, ms(1), "rt0", "queue.wait", "path=video");
        t.span_end(q, ms(3));
        let b = t.span_begin(7, ms(3), "upnp-mapper", "bridge.upnp.input", "");
        t.span(7, ms(4), "upnp-mapper", "bridge.upnp.soap", "");
        t.span_end(b, ms(6));
        t.span_begin(7, ms(6), "rt1", "never.closed", "");
        t
    }

    #[test]
    fn perfetto_export_is_wellformed_and_deterministic() {
        let t = demo_trace();
        let a = perfetto_trace_json(t.spans());
        let b = perfetto_trace_json(t.spans());
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"thread_name\""));
        assert!(a.contains("\"name\": \"queue.wait\""));
        // 1 ms start renders as integer-math microseconds.
        assert!(a.contains("\"ts\": 1000.000"));
        assert!(a.contains("\"dur\": 2000.000"));
        assert!(a.contains("\"unclosed\": true"));
        // Three sources → tids 1..=3 in sorted order.
        assert!(a.contains("\"tid\": 3"));
    }

    #[test]
    fn perfetto_export_groups_merged_shards_into_tracks() {
        let mut t = Trace::default();
        t.span(7, ms(0), "uplink", "shard.xfer.egress", "dst=s1 inlet=0");
        t.span(7, ms(2), "ingress", "shard.xfer.ingress", "src=s0 span=1");
        let merged = crate::span::merge_shard_spans(&[(0, &t.spans()[..1]), (1, &t.spans()[1..])]);
        let out = perfetto_trace_json(&merged);
        // One process per shard, plus the pid-1 federation meta.
        assert!(out.contains("\"pid\": 2, \"tid\": 0, \"args\": {\"name\": \"shard 0\"}"));
        assert!(out.contains("\"pid\": 3, \"tid\": 0, \"args\": {\"name\": \"shard 1\"}"));
        // Thread names are the unprefixed process names.
        assert!(out.contains("\"args\": {\"name\": \"uplink\"}"));
        assert!(out.contains("\"args\": {\"name\": \"ingress\"}"));
        assert!(!out.contains("s0/uplink"), "prefix stripped from threads");
        // Events land on their shard's pid.
        assert!(out.contains("\"name\": \"shard.xfer.egress\", \"cat\": \"shard\""));
        let a = perfetto_trace_json(&merged);
        assert_eq!(a, out, "deterministic");
    }

    #[test]
    fn folded_stacks_follow_tree_paths() {
        let t = demo_trace();
        let folded = folded_stacks(t.spans());
        let lines: Vec<&str> = folded.lines().collect();
        // queue.wait: 2 ms self. bridge.upnp.input: 3 ms minus the
        // zero-length child = 3 ms self. Instant + unclosed spans have
        // no weight and are omitted.
        assert_eq!(
            lines,
            vec![
                "corr:0x7;bridge.upnp.input 3000000",
                "corr:0x7;queue.wait 2000000",
            ]
        );
    }

    #[test]
    fn micros_renders_without_float() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_500_250), "1500.250");
    }

    #[test]
    fn open_metrics_exposition_is_wellformed_and_deterministic() {
        use crate::time::SimDuration;
        use crate::trace::Metrics;
        let mut m = Metrics::default();
        m.counter_add("umiddle.connections", 3);
        m.gauge_set("sched.events_pending", 12);
        m.observe("rt0.transport_latency", SimDuration::from_micros(500));
        m.observe("rt0.transport_latency", SimDuration::from_millis(2));
        let a = open_metrics(&m.snapshot());
        let b = open_metrics(&m.snapshot());
        assert_eq!(a, b);
        assert!(a.contains("# TYPE umiddle_connections counter\n"));
        assert!(a.contains("umiddle_connections_total 3\n"));
        assert!(a.contains("sched_events_pending 12\n"));
        // 500 µs lands in the le=500000 bucket; both fit under 2 ms.
        assert!(a.contains("rt0_transport_latency_bucket{le=\"500000\"} 1\n"));
        assert!(a.contains("rt0_transport_latency_bucket{le=\"2000000\"} 2\n"));
        assert!(a.contains("rt0_transport_latency_bucket{le=\"+Inf\"} 2\n"));
        assert!(a.contains("rt0_transport_latency_count 2\n"));
        assert!(a.contains("rt0_transport_latency_sum 2500000\n"));
        assert!(a.ends_with("# EOF\n"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(
            sanitize_metric_name("bridge.upnp.last-traffic ns"),
            "bridge_upnp_last_traffic_ns"
        );
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn diff_attribution_ranks_regressions_and_skips_unchanged_cells() {
        use crate::attrib::{AttributionReport, ComponentTimes};
        let mut before = AttributionReport {
            at_ns: 100,
            ..AttributionReport::default()
        };
        before.components.insert(
            "process:rt".to_owned(),
            ComponentTimes {
                self_ns: 50,
                queue_ns: 10,
                ..ComponentTimes::default()
            },
        );
        before.components.insert(
            "bridge:upnp".to_owned(),
            ComponentTimes {
                self_ns: 30,
                ..ComponentTimes::default()
            },
        );
        let mut after = AttributionReport {
            at_ns: 200,
            ..AttributionReport::default()
        };
        after.components.insert(
            "process:rt".to_owned(),
            ComponentTimes {
                self_ns: 50, // unchanged → omitted
                queue_ns: 5_010,
                exemplar_corr: 0xAB,
                ..ComponentTimes::default()
            },
        );
        // bridge:upnp vanished → diffs against zero.
        after.components.insert(
            "shard:s1".to_owned(),
            ComponentTimes {
                barrier_ns: 7,
                ..ComponentTimes::default()
            },
        );

        let diff = diff_attribution(&before, &after);
        let cells: Vec<(&str, &str, i128)> = diff
            .rows
            .iter()
            .map(|r| (r.component.as_str(), r.kind, r.delta_ns))
            .collect();
        assert_eq!(
            cells,
            vec![
                ("process:rt", "queue", 5_000),
                ("shard:s1", "barrier", 7),
                ("bridge:upnp", "self", -30),
            ]
        );
        let top = diff.top_regression().expect("regressed");
        assert_eq!(top.component, "process:rt");
        assert_eq!(top.exemplar_corr, 0xAB);
        assert_eq!(diff.to_json(), diff_attribution(&before, &after).to_json());
        assert!(diff.to_text(10).contains("process:rt/queue"));

        // Identical snapshots → empty diff, no regression.
        let same = diff_attribution(&after, &after);
        assert!(same.rows.is_empty());
        assert!(same.top_regression().is_none());
        assert!(same.to_text(10).contains("no component moved"));
    }
}
