//! Identifiers, events and the [`Process`] actor trait.

use std::any::Any;
use std::fmt;

use crate::ctx::Ctx;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw index of this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw index.
            ///
            /// Only meaningful for indices previously handed out by a
            /// [`World`](crate::World); constructing arbitrary values yields
            /// identifiers that most operations will reject.
            pub const fn from_index(index: usize) -> $name {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a simulated host.
    NodeId,
    "node"
);
id_newtype!(
    /// Identifies a network segment (shared medium).
    SegmentId,
    "seg"
);
id_newtype!(
    /// Identifies a process (actor) running on a node.
    ProcId,
    "proc"
);
id_newtype!(
    /// Identifies a reliable stream connection.
    StreamId,
    "stream"
);

/// A network address: a node plus a 16-bit port.
///
/// # Examples
///
/// ```
/// use simnet::{Addr, NodeId};
///
/// let a = Addr::new(NodeId::from_index(3), 1900);
/// assert_eq!(a.port, 1900);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// The node the port lives on.
    pub node: NodeId,
    /// The port number.
    pub port: u16,
}

impl Addr {
    /// Creates an address.
    pub const fn new(node: NodeId, port: u16) -> Addr {
        Addr { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

/// An unreliable datagram delivered to a process.
///
/// `data` is a shared [`Payload`](crate::Payload) view: a multicast
/// delivered to N group members hands every member the same backing
/// allocation, so fan-out costs O(1) per recipient in bytes copied.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Address the datagram was sent from.
    pub src: Addr,
    /// Address the datagram was sent to. For multicast deliveries this is
    /// the group address (the receiving node's own id is not substituted).
    pub dst: Addr,
    /// Payload bytes (shared, immutable).
    pub data: crate::Payload,
    /// `true` if the datagram was delivered via a multicast group.
    pub multicast: bool,
}

/// Events delivered to a process about one of its streams.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// An outbound `connect` completed; the stream is ready.
    Connected,
    /// A listener accepted an inbound connection. The process receives this
    /// with a brand-new [`StreamId`].
    Accepted {
        /// Address of the connecting peer.
        peer: Addr,
        /// Local port the connection arrived on.
        local_port: u16,
    },
    /// In-order payload bytes arrived. The view shares the receive-path
    /// buffer; reassembly of contiguous out-of-order segments may deliver
    /// several `Data` events back to back rather than copy into one.
    Data(crate::Payload),
    /// The send buffer drained below its high-water mark after a
    /// [`SimError::StreamBufferFull`](crate::SimError::StreamBufferFull)
    /// rejection.
    Writable,
    /// The peer closed the stream; no more data will arrive.
    Closed,
    /// The connection attempt failed (no listener, or the peer vanished).
    ConnectFailed,
}

/// A message passed between processes on the same node (zero-cost local
/// IPC, used e.g. between a uMiddle runtime and its mappers).
pub type LocalMessage = Box<dyn Any>;

/// An actor running on a simulated node.
///
/// All methods take a [`Ctx`] giving access to the clock, timers, the
/// network, and tracing. Default implementations ignore every event, so
/// implementors override only what they need.
///
/// Processes are driven purely by events; there is no polling. CPU cost can
/// be modeled with [`Ctx::busy`], which defers subsequent event deliveries
/// to this process.
pub trait Process {
    /// Short, stable name used in traces.
    fn name(&self) -> &str {
        "process"
    }

    /// Called once when the world starts running (or immediately when the
    /// process is spawned into an already-running world).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called when a datagram arrives on a bound port.
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let _ = (ctx, dgram);
    }

    /// Called when a stream event occurs on one of this process's streams.
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        let _ = (ctx, stream, event);
    }

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when another process on the same node sends a local message
    /// via [`Ctx::send_local`].
    fn on_local(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: LocalMessage) {
        let _ = (ctx, from, msg);
    }

    /// Called when the process is about to be removed from the world
    /// (failure injection or orderly shutdown).
    fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId::from_index(2).to_string(), "node2");
        assert_eq!(SegmentId::from_index(0).to_string(), "seg0");
        assert_eq!(ProcId::from_index(7).to_string(), "proc7");
        assert_eq!(StreamId::from_index(9).to_string(), "stream9");
    }

    #[test]
    fn addr_display() {
        let a = Addr::new(NodeId::from_index(1), 80);
        assert_eq!(a.to_string(), "node1:80");
    }

    #[test]
    fn id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
    }
}
