//! Causal analysis over structured spans: per-path tree reconstruction,
//! critical-path latency attribution, and a fluent assertion API for
//! integration tests.
//!
//! Input is always the flat `&[SpanRecord]` slice recorded by a
//! [`Trace`](crate::Trace) — analysis never mutates the trace, so it can
//! run repeatedly, mid-run, or over spans captured from another world.
//!
//! Invariants upheld by [`SpanTree::build`] regardless of input:
//! - every input span for the correlation id appears in exactly one tree
//!   node;
//! - a node's children all start at or after the node (children are
//!   sorted by `(start, id)`);
//! - a span whose parent is missing from the slice, or whose parent id
//!   is not strictly smaller than its own (which would admit a cycle),
//!   is promoted to a root and counted in
//!   [`orphans`](SpanTree::orphans) — never dropped, never a panic;
//! - spans that never closed are counted in
//!   [`unclosed`](SpanTree::unclosed) and analyzed as zero-length.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};
use crate::trace::{SpanId, SpanRecord, Trace};

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span at this node (an owned copy of the trace record).
    pub span: SpanRecord,
    /// Child spans, sorted by `(start, id)`.
    pub children: Vec<SpanNode>,
    /// True when the span named a parent that could not be found (the
    /// node was promoted to a root).
    pub orphaned: bool,
}

impl SpanNode {
    /// Self time: the span's duration minus the time covered by its
    /// children, clamped at zero (children may overlap or overrun).
    pub fn self_time(&self) -> SimDuration {
        let own = self.span.duration().unwrap_or(SimDuration::ZERO);
        let children: u64 = self
            .children
            .iter()
            .map(|c| c.span.duration().unwrap_or(SimDuration::ZERO).as_nanos())
            .sum();
        SimDuration::from_nanos(own.as_nanos().saturating_sub(children))
    }
}

/// The reconstructed span forest of one correlated path.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The correlation id this tree covers.
    pub corr: u64,
    /// Top-level spans (no parent, or parent missing), sorted by
    /// `(start, id)`.
    pub roots: Vec<SpanNode>,
    /// Spans whose parent was not found and were promoted to roots.
    pub orphans: u64,
    /// Spans that were begun but never ended.
    pub unclosed: u64,
}

impl SpanTree {
    /// Rebuilds the span tree for one correlation id from a flat span
    /// slice (e.g. [`Trace::spans`]). Never panics; see the module doc
    /// for the invariants malformed input degrades to.
    pub fn build(spans: &[SpanRecord], corr: u64) -> SpanTree {
        let path: Vec<&SpanRecord> = spans.iter().filter(|s| s.corr == corr).collect();
        let known: BTreeMap<SpanId, usize> =
            path.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut root_indices = Vec::new();
        let mut orphans = 0u64;
        let mut unclosed = 0u64;
        for (i, span) in path.iter().enumerate() {
            if span.end.is_none() {
                unclosed += 1;
            }
            match span.parent {
                // Reject parent ids that are not strictly older than the
                // span itself: ids are minted in begin order, so a
                // forward (or self) reference can only come from
                // hand-built records and would otherwise admit a cycle.
                Some(p) if p < span.id => match known.get(&p) {
                    Some(&pi) => children.entry(pi).or_default().push(i),
                    None => {
                        orphans += 1;
                        root_indices.push(i);
                    }
                },
                Some(_) => {
                    orphans += 1;
                    root_indices.push(i);
                }
                None => root_indices.push(i),
            }
        }
        let orphan_set: Vec<bool> = {
            let mut v = vec![false; path.len()];
            for &i in &root_indices {
                v[i] = path[i].parent.is_some();
            }
            v
        };
        fn build_node(
            i: usize,
            path: &[&SpanRecord],
            children: &BTreeMap<usize, Vec<usize>>,
            orphan_set: &[bool],
        ) -> SpanNode {
            let mut kids: Vec<SpanNode> = children
                .get(&i)
                .map(|c| {
                    c.iter()
                        .map(|&ci| build_node(ci, path, children, orphan_set))
                        .collect()
                })
                .unwrap_or_default();
            kids.sort_by_key(|n| (n.span.start, n.span.id));
            SpanNode {
                span: path[i].clone(),
                children: kids,
                orphaned: orphan_set[i],
            }
        }
        let mut roots: Vec<SpanNode> = root_indices
            .iter()
            .map(|&i| build_node(i, &path, &children, &orphan_set))
            .collect();
        roots.sort_by_key(|n| (n.span.start, n.span.id));
        SpanTree {
            corr,
            roots,
            orphans,
            unclosed,
        }
    }

    /// Builds the tree of every correlation id present in the slice,
    /// sorted by correlation id.
    pub fn build_all(spans: &[SpanRecord]) -> Vec<SpanTree> {
        let mut corrs: Vec<u64> = spans.iter().map(|s| s.corr).collect();
        corrs.sort_unstable();
        corrs.dedup();
        corrs
            .into_iter()
            .map(|c| SpanTree::build(spans, c))
            .collect()
    }

    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        fn count(n: &SpanNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }
}

/// Virtual time attributed to one stage (or to one `a -> b` edge — the
/// gap between two consecutive stages) of a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCost {
    /// Stage name, or `"{from} -> {to}"` for an inter-stage gap.
    pub name: String,
    /// Total virtual time attributed across all journeys.
    pub total: SimDuration,
    /// Number of spans (or gaps) that contributed.
    pub count: u64,
}

/// Latency breakdown of one correlated path, per stage, aggregated over
/// every message journey the path carried.
///
/// A *journey* is one message's trip through the mediation pipeline: the
/// spans between consecutive occurrences of the journey-head stage
/// (default [`CriticalPath::DEFAULT_HEAD`], the moment a message enters a
/// path buffer). Within a journey, time is attributed by a watermark
/// sweep over the spans in `(start, id)` order: each instant belongs to
/// the earliest-starting span covering it (named by its stage), and
/// uncovered gaps belong to the `"{prev} -> {next}"` edge between the
/// adjacent stages. Every nanosecond of a journey is attributed to
/// exactly one stage or edge, so [`coverage`](CriticalPath::coverage) is
/// 1.0 whenever any time elapsed at all.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The correlation id analyzed.
    pub corr: u64,
    /// Number of journeys found (occurrences of the head stage, or one
    /// if the head never appears).
    pub journeys: u64,
    /// Summed end-to-end virtual time across journeys.
    pub total: SimDuration,
    /// Summed time attributed to named stages and edges.
    pub attributed: SimDuration,
    /// Per-stage/edge costs, sorted by descending total (name-ascending
    /// on ties, so the order is deterministic).
    pub stages: Vec<StageCost>,
    /// The single most expensive stage or edge, if any time elapsed.
    pub dominant: Option<String>,
}

impl CriticalPath {
    /// The default journey-head stage: a message entering a path buffer.
    pub const DEFAULT_HEAD: &'static str = "queue.wait";

    /// Analyzes the path of `corr` with the default journey head.
    /// Returns `None` when the slice has no spans for `corr`.
    pub fn analyze(spans: &[SpanRecord], corr: u64) -> Option<CriticalPath> {
        CriticalPath::analyze_with_head(spans, corr, CriticalPath::DEFAULT_HEAD)
    }

    /// Analyzes the path of `corr`, starting a new journey at every span
    /// whose stage equals `journey_head`. Spans before the first head
    /// (connection setup) are excluded; if the head never occurs, the
    /// whole path is treated as a single journey.
    pub fn analyze_with_head(
        spans: &[SpanRecord],
        corr: u64,
        journey_head: &str,
    ) -> Option<CriticalPath> {
        let mut path: Vec<&SpanRecord> = spans.iter().filter(|s| s.corr == corr).collect();
        if path.is_empty() {
            return None;
        }
        path.sort_by_key(|s| (s.start, s.id));

        let mut journeys: Vec<Vec<&SpanRecord>> = Vec::new();
        if path.iter().any(|s| s.stage == journey_head) {
            for span in &path {
                if span.stage == journey_head {
                    journeys.push(vec![span]);
                } else if let Some(current) = journeys.last_mut() {
                    current.push(span);
                }
            }
        } else {
            journeys.push(path.clone());
        }

        let mut costs: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // name -> (ns, count)
        let mut total_ns = 0u64;
        for journey in &journeys {
            let start = journey[0].start;
            let end = journey
                .iter()
                .map(|s| s.effective_end())
                .fold(start, SimTime::max);
            total_ns += (end - start).as_nanos();

            let mut cursor = start;
            let mut prev_stage = journey[0].stage.as_str();
            for span in journey {
                if span.start > cursor {
                    let gap = (span.start - cursor).as_nanos();
                    let edge = format!("{prev_stage} -> {}", span.stage);
                    let slot = costs.entry(edge).or_insert((0, 0));
                    slot.0 += gap;
                    slot.1 += 1;
                    cursor = span.start;
                }
                let span_end = span.effective_end();
                if span_end > cursor {
                    let covered = (span_end - cursor).as_nanos();
                    let slot = costs.entry(span.stage.clone()).or_insert((0, 0));
                    slot.0 += covered;
                    slot.1 += 1;
                    cursor = span_end;
                }
                prev_stage = span.stage.as_str();
            }
        }

        let attributed_ns: u64 = costs.values().map(|(ns, _)| ns).sum();
        let mut stages: Vec<StageCost> = costs
            .into_iter()
            .map(|(name, (ns, count))| StageCost {
                name,
                total: SimDuration::from_nanos(ns),
                count,
            })
            .collect();
        stages.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
        let dominant = stages
            .first()
            .filter(|s| !s.total.is_zero())
            .map(|s| s.name.clone());
        Some(CriticalPath {
            corr,
            journeys: journeys.len() as u64,
            total: SimDuration::from_nanos(total_ns),
            attributed: SimDuration::from_nanos(attributed_ns),
            stages,
            dominant,
        })
    }

    /// Fraction of end-to-end time attributed to named stages/edges, in
    /// `[0, 1]`. 1.0 for an empty (zero-duration) path.
    pub fn coverage(&self) -> f64 {
        if self.total.is_zero() {
            1.0
        } else {
            self.attributed.as_secs_f64() / self.total.as_secs_f64()
        }
    }

    /// Renders a human-readable breakdown table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "critical path corr={:#x}: {} journeys, total {} ({:.1}% attributed)\n",
            self.corr,
            self.journeys,
            self.total,
            self.coverage() * 100.0,
        );
        for s in &self.stages {
            let pct = if self.total.is_zero() {
                0.0
            } else {
                s.total.as_secs_f64() / self.total.as_secs_f64() * 100.0
            };
            out.push_str(&format!(
                "  {:>5.1}%  {:>12}  x{:<4}  {}\n",
                pct,
                s.total.to_string(),
                s.count,
                s.name
            ));
        }
        if let Some(d) = &self.dominant {
            out.push_str(&format!("  dominant: {d}\n"));
        }
        out
    }
}

/// Parses the cross-shard link reference out of a `shard.xfer.ingress`
/// span detail (`src=s{shard} span={id} …`), as written by the shard
/// ingress path when a hand-off frame carries trace context.
fn parse_xfer_link(detail: &str) -> Option<(u16, u64)> {
    let rest = detail.strip_prefix("src=s")?;
    let (shard_str, rest) = rest.split_once(' ')?;
    let shard: u16 = shard_str.parse().ok()?;
    let rest = rest.strip_prefix("span=")?;
    let id_str = rest.split(' ').next().unwrap_or(rest);
    let id: u64 = id_str.parse().ok()?;
    Some((shard, id))
}

/// Merges per-shard span logs into one coherent trace.
///
/// Each shard of a sharded run ([`crate::shard`]) records spans into its
/// own `Trace` with its own id space. This function splices them into a
/// single slice that [`SpanTree`], [`CriticalPath`], [`TraceAssert`],
/// and the Perfetto exporter can analyze as one federation-wide journey:
///
/// - records are ordered by `(start, src_shard, id)` — the same total
///   order the conductor uses for cross-shard message injection — and
///   re-minted with sequential ids, so the `parent < id` tree invariant
///   holds across shards (a `shard.xfer.egress` span always starts at
///   least one link latency before its ingress twin);
/// - intra-shard parent links are remapped into the new id space;
/// - a `shard.xfer.ingress` span whose detail carries `src=s{N} span={M}`
///   trace context is re-parented under shard `N`'s egress span `M`,
///   stitching the cross-shard hop into one tree (if the egress span was
///   overwritten by that shard's flight recorder, the ingress span stays
///   a root and is counted as an orphan by [`SpanTree::build`]);
/// - sources gain an `s{N}/` prefix, which the Perfetto exporter maps to
///   one track group per shard.
///
/// Time spent between the egress and ingress spans (link latency plus
/// any barrier-stall / horizon wait at the receiving shard) shows up in
/// [`CriticalPath`] as the `shard.xfer.egress -> shard.xfer.ingress`
/// edge, so cross-shard transfer cost is attributed, not lost.
pub fn merge_shard_spans(per_shard: &[(u16, &[SpanRecord])]) -> Vec<SpanRecord> {
    let mut refs: Vec<(u16, &SpanRecord)> = Vec::new();
    for (shard, spans) in per_shard {
        refs.extend(spans.iter().map(|s| (*shard, s)));
    }
    refs.sort_by_key(|(shard, s)| (s.start, *shard, s.id));
    let remap: BTreeMap<(u16, u64), u64> = refs
        .iter()
        .enumerate()
        .map(|(i, (shard, s))| ((*shard, s.id.0), i as u64 + 1))
        .collect();
    refs.iter()
        .enumerate()
        .map(|(i, (shard, s))| {
            let id = SpanId(i as u64 + 1);
            let mut parent = s
                .parent
                .and_then(|p| remap.get(&(*shard, p.0)).copied())
                .map(SpanId);
            if s.stage == "shard.xfer.ingress" {
                if let Some((src, span)) = parse_xfer_link(&s.detail) {
                    if let Some(&egress) = remap.get(&(src, span)) {
                        if egress < id.0 {
                            parent = Some(SpanId(egress));
                        }
                    }
                }
            }
            SpanRecord {
                id,
                parent,
                corr: s.corr,
                source: format!("s{shard}/{}", s.source),
                stage: s.stage.clone(),
                detail: s.detail.clone(),
                start: s.start,
                end: s.end,
            }
        })
        .collect()
}

/// Fluent assertions over a recorded trace, for integration tests:
///
/// ```
/// # use simnet::{SimTime, SimDuration, Trace, TraceAssert};
/// # let mut t = Trace::default();
/// # let s = t.span_begin(7, SimTime::ZERO, "rt0", "connect", "");
/// # t.span_end(s, SimTime::from_millis(2));
/// TraceAssert::new(&t)
///     .expect_path(7)
///     .through(&["connect"])
///     .within(SimDuration::from_millis(5));
/// ```
///
/// Each method panics with a readable diagnostic on failure, so a
/// violated expectation reads like a test assertion, not a stack trace
/// into analysis code.
#[derive(Debug)]
pub struct TraceAssert<'t> {
    spans: &'t [SpanRecord],
}

impl<'t> TraceAssert<'t> {
    /// Wraps a trace for assertion.
    pub fn new(trace: &'t Trace) -> TraceAssert<'t> {
        TraceAssert {
            spans: trace.spans(),
        }
    }

    /// Wraps a raw span slice (e.g. spans copied out of a world).
    pub fn over(spans: &'t [SpanRecord]) -> TraceAssert<'t> {
        TraceAssert { spans }
    }

    /// Audits one platform bridge's hop instrumentation: counts the
    /// `bridge.{platform}.input` ingress and `bridge.{platform}.output`
    /// egress hop spans, asserting the bridge recorded hops at all and
    /// that every hop span closed — a batch of N messages must yield N
    /// per-message hop spans, each with an explicit end, never one span
    /// per batch left dangling. Returns the `(ingress, egress)` hop
    /// counts; since every hop bumps the bridge's traffic counter
    /// exactly once, callers close the audit by matching
    /// `ingress + egress` against `bridge.{platform}.traffic`.
    ///
    /// # Panics
    ///
    /// Panics when the bridge recorded no hops in either direction, or
    /// when any hop span never closed.
    pub fn balanced(&self, platform: &str) -> (u64, u64) {
        let ingress = format!("bridge.{platform}.input");
        let egress = format!("bridge.{platform}.output");
        let mut counts = (0u64, 0u64);
        let mut unclosed: Vec<String> = Vec::new();
        for s in self.spans {
            let slot = if s.stage == ingress {
                &mut counts.0
            } else if s.stage == egress {
                &mut counts.1
            } else {
                continue;
            };
            *slot += 1;
            if s.end.is_none() {
                unclosed.push(format!("{} ({})", s.stage, s.source));
            }
        }
        assert!(
            counts.0 + counts.1 > 0,
            "bridge {platform}: no hop spans recorded in either direction"
        );
        assert!(
            unclosed.is_empty(),
            "bridge {platform}: {} hop span(s) never closed: {:?}",
            unclosed.len(),
            unclosed
        );
        counts
    }

    /// Starts an expectation on the path of `corr`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no spans for `corr`.
    pub fn expect_path(&self, corr: u64) -> PathExpectation<'t> {
        let mut path: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.corr == corr).collect();
        path.sort_by_key(|s| (s.start, s.id));
        assert!(
            !path.is_empty(),
            "no spans recorded for corr={corr:#x} (trace has {} spans)",
            self.spans.len()
        );
        PathExpectation {
            corr,
            path,
            window: None,
        }
    }
}

/// A pending expectation on one correlated path; see [`TraceAssert`].
#[derive(Debug)]
pub struct PathExpectation<'t> {
    corr: u64,
    path: Vec<&'t SpanRecord>,
    /// Time window of the last `through` match, used by `within`.
    window: Option<(SimTime, SimTime)>,
}

impl PathExpectation<'_> {
    /// Asserts the path passes through `stages` in order (as a
    /// subsequence of the chronological span list — other stages may
    /// interleave). Narrows the window later `within` calls check.
    ///
    /// # Panics
    ///
    /// Panics when a stage never occurs after the previous match, with
    /// the full recorded stage list in the message.
    pub fn through(mut self, stages: &[&str]) -> Self {
        let mut next = 0usize;
        let mut first: Option<&SpanRecord> = None;
        let mut last: Option<&SpanRecord> = None;
        for span in &self.path {
            if next < stages.len() && span.stage == stages[next] {
                first.get_or_insert(span);
                last = Some(span);
                next += 1;
            }
        }
        if next < stages.len() {
            let recorded: Vec<&str> = self.path.iter().map(|s| s.stage.as_str()).collect();
            panic!(
                "corr={:#x}: expected path through {:?}, but {:?} never occurred \
                 (after {} earlier matches); recorded stages: {:?}",
                self.corr, stages, stages[next], next, recorded
            );
        }
        if let (Some(f), Some(l)) = (first, last) {
            self.window = Some((f.start, l.effective_end().max(f.start)));
        }
        self
    }

    /// Asserts the matched window — or, without a prior `through`, the
    /// whole path — fits in `budget` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics when the elapsed time exceeds the budget.
    pub fn within(self, budget: SimDuration) -> Self {
        let (start, end) = self.window.unwrap_or_else(|| {
            let start = self.path[0].start;
            let end = self
                .path
                .iter()
                .map(|s| s.effective_end())
                .fold(start, SimTime::max);
            (start, end)
        });
        let elapsed = end - start;
        assert!(
            elapsed <= budget,
            "corr={:#x}: path took {elapsed} ({start}..{end}), over the {budget} budget",
            self.corr
        );
        self
    }

    /// Asserts every span in the matched path closed (no message died
    /// mid-pipeline).
    ///
    /// # Panics
    ///
    /// Panics listing the unclosed stages.
    pub fn all_closed(self) -> Self {
        let open: Vec<String> = self
            .path
            .iter()
            .filter(|s| s.end.is_none())
            .map(|s| format!("{} ({})", s.stage, s.source))
            .collect();
        assert!(
            open.is_empty(),
            "corr={:#x}: {} span(s) never closed: {:?}",
            self.corr,
            open.len(),
            open
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn demo_trace() -> Trace {
        let mut t = Trace::default();
        t.span(7, ms(0), "rt0", "connect", "");
        let q = t.span_begin(7, ms(1), "rt0", "queue.wait", "");
        t.span_end(q, ms(3));
        let x = t.span_begin(7, ms(3), "rt0", "transport.send", "");
        t.span_end(x, ms(6));
        let b = t.span_begin(7, ms(6), "upnp", "bridge.upnp.input", "");
        t.span_end(b, ms(10));
        t
    }

    #[test]
    fn tree_rebuilds_roots_and_nesting() {
        let mut t = Trace::default();
        let outer = t.span_begin(5, ms(0), "rt0", "outer", "");
        t.span(5, ms(1), "rt0", "inner", "");
        t.span_end(outer, ms(4));
        t.span(5, ms(5), "rt0", "after", "");
        t.span(6, ms(0), "rt1", "other-path", "");
        let tree = SpanTree::build(t.spans(), 5);
        assert_eq!(tree.span_count(), 3);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.roots[0].span.stage, "outer");
        assert_eq!(tree.roots[0].children[0].span.stage, "inner");
        assert_eq!(tree.roots[1].span.stage, "after");
        assert_eq!(tree.orphans, 0);
        assert_eq!(tree.unclosed, 0);
        assert_eq!(SpanTree::build_all(t.spans()).len(), 2);
    }

    #[test]
    fn orphans_and_unclosed_are_reported_not_dropped() {
        let mut t = Trace::default();
        let orphan = SpanRecord {
            id: SpanId(99),
            parent: Some(SpanId(42)), // never recorded
            corr: 1,
            source: "x".into(),
            stage: "lost-parent".into(),
            detail: String::new(),
            start: ms(1),
            end: None,
        };
        t.span(1, ms(0), "x", "root", "");
        let spans: Vec<SpanRecord> = t.spans().iter().cloned().chain([orphan]).collect();
        let tree = SpanTree::build(&spans, 1);
        assert_eq!(tree.span_count(), 2, "orphan is kept as a root");
        assert_eq!(tree.orphans, 1);
        assert_eq!(tree.unclosed, 1);
    }

    #[test]
    fn self_parent_reference_cannot_cycle() {
        let span = SpanRecord {
            id: SpanId(3),
            parent: Some(SpanId(3)),
            corr: 1,
            source: "x".into(),
            stage: "self-ref".into(),
            detail: String::new(),
            start: ms(0),
            end: Some(ms(1)),
        };
        let tree = SpanTree::build(&[span], 1);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.orphans, 1);
    }

    #[test]
    fn critical_path_attributes_every_nanosecond() {
        let t = demo_trace();
        let cp = CriticalPath::analyze(t.spans(), 7).unwrap();
        assert_eq!(cp.journeys, 1);
        assert_eq!(cp.total, SimDuration::from_millis(9)); // 1ms..10ms
        assert_eq!(cp.attributed, cp.total);
        assert!((cp.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(cp.dominant.as_deref(), Some("bridge.upnp.input"));
        let get = |name: &str| {
            cp.stages
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.total)
                .unwrap_or(SimDuration::ZERO)
        };
        assert_eq!(get("queue.wait"), SimDuration::from_millis(2));
        assert_eq!(get("transport.send"), SimDuration::from_millis(3));
        assert_eq!(get("bridge.upnp.input"), SimDuration::from_millis(4));
        assert!(cp.render().contains("dominant: bridge.upnp.input"));
    }

    #[test]
    fn gaps_become_named_edges() {
        let mut t = Trace::default();
        let q = t.span_begin(1, ms(0), "rt0", "queue.wait", "");
        t.span_end(q, ms(1));
        let b = t.span_begin(1, ms(4), "rt1", "bridge.rmi.input", "");
        t.span_end(b, ms(5));
        let cp = CriticalPath::analyze(t.spans(), 1).unwrap();
        let edge = cp
            .stages
            .iter()
            .find(|s| s.name == "queue.wait -> bridge.rmi.input")
            .expect("gap edge");
        assert_eq!(edge.total, SimDuration::from_millis(3));
        assert_eq!(
            cp.dominant.as_deref(),
            Some("queue.wait -> bridge.rmi.input")
        );
    }

    #[test]
    fn journeys_split_at_head_and_exclude_setup() {
        let mut t = Trace::default();
        t.span(1, ms(0), "rt0", "connect", ""); // setup, excluded
        for i in 0..3u64 {
            let q = t.span_begin(1, ms(10 * i + 1), "rt0", "queue.wait", "");
            t.span_end(q, ms(10 * i + 2));
        }
        let cp = CriticalPath::analyze(t.spans(), 1).unwrap();
        assert_eq!(cp.journeys, 3);
        assert_eq!(cp.total, SimDuration::from_millis(3));
    }

    #[test]
    fn trace_assert_passes_on_good_path() {
        let t = demo_trace();
        TraceAssert::new(&t)
            .expect_path(7)
            .through(&["connect", "queue.wait", "bridge.upnp.input"])
            .within(SimDuration::from_millis(10))
            .all_closed();
    }

    #[test]
    #[should_panic(expected = "never occurred")]
    fn trace_assert_rejects_missing_stage() {
        let t = demo_trace();
        TraceAssert::new(&t)
            .expect_path(7)
            .through(&["connect", "bridge.bluetooth.input"]);
    }

    #[test]
    #[should_panic(expected = "over the")]
    fn trace_assert_rejects_blown_budget() {
        let t = demo_trace();
        TraceAssert::new(&t)
            .expect_path(7)
            .through(&["queue.wait", "bridge.upnp.input"])
            .within(SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "no spans recorded")]
    fn trace_assert_rejects_unknown_corr() {
        let t = demo_trace();
        TraceAssert::new(&t).expect_path(0xdead);
    }

    #[test]
    fn merged_shard_spans_stitch_xfer_hops_into_one_journey() {
        // Shard 0: a message queues and leaves over the shard link.
        let mut a = Trace::default();
        let q = a.span_begin(0x10, ms(0), "sender", "queue.wait", "");
        a.span_end(q, ms(1));
        let eg = a.span(0x10, ms(1), "uplink", "shard.xfer.egress", "dst=s1 inlet=0");
        // Shard 1: the frame arrives two ms later and is consumed.
        let mut b = Trace::default();
        b.span(
            0x10,
            ms(3),
            "ingress",
            "shard.xfer.ingress",
            format!("src=s0 span={}", eg.0),
        );
        let d = b.span_begin(0x10, ms(3), "sink", "deliver.local", "");
        b.span_end(d, ms(4));

        let merged = merge_shard_spans(&[(0, a.spans()), (1, b.spans())]);
        assert_eq!(merged.len(), 4);
        // Ids are re-minted sequentially in (start, shard, id) order.
        for (i, s) in merged.iter().enumerate() {
            assert_eq!(s.id.0, i as u64 + 1);
        }
        assert!(merged[0].source.starts_with("s0/"));
        assert!(merged[3].source.starts_with("s1/"));
        // The ingress span is re-parented under the remote egress span.
        let ingress = merged
            .iter()
            .find(|s| s.stage == "shard.xfer.ingress")
            .unwrap();
        let egress = merged
            .iter()
            .find(|s| s.stage == "shard.xfer.egress")
            .unwrap();
        assert_eq!(ingress.parent, Some(egress.id));
        let tree = SpanTree::build(&merged, 0x10);
        assert_eq!(tree.orphans, 0, "no orphan spans at shard.xfer hops");
        assert_eq!(tree.unclosed, 0);
        // The shard link transfer (latency + any barrier wait) is
        // attributed to the egress -> ingress edge, not lost.
        let cp = CriticalPath::analyze(&merged, 0x10).unwrap();
        assert!((cp.coverage() - 1.0).abs() < 1e-12);
        let edge = cp
            .stages
            .iter()
            .find(|s| s.name == "shard.xfer.egress -> shard.xfer.ingress")
            .expect("xfer edge attributed");
        assert_eq!(edge.total, SimDuration::from_millis(2));
    }

    #[test]
    fn merged_ingress_without_resolvable_context_stays_a_root() {
        let mut b = Trace::default();
        // Egress span 999 was overwritten on the source shard.
        b.span(
            0x11,
            ms(0),
            "ingress",
            "shard.xfer.ingress",
            "src=s0 span=999",
        );
        let merged = merge_shard_spans(&[(1, b.spans())]);
        assert_eq!(merged[0].parent, None);
        let tree = SpanTree::build(&merged, 0x11);
        assert_eq!(tree.roots.len(), 1);
    }

    #[test]
    fn balanced_counts_matched_bridge_hops() {
        let mut t = Trace::default();
        for i in 0..3u64 {
            t.span(i + 1, ms(i), "mapper", "bridge.upnp.input", "");
        }
        t.span(0, ms(9), "mapper", "bridge.upnp.output", "");
        let (ingress, egress) = TraceAssert::new(&t).balanced("upnp");
        assert_eq!((ingress, egress), (3, 1));
    }

    #[test]
    #[should_panic(expected = "no hop spans")]
    fn balanced_rejects_a_bridge_with_no_hops() {
        let mut t = Trace::default();
        t.span(1, ms(0), "mapper", "bridge.rmi.input", "");
        // rmi recorded a hop; webservices recorded nothing.
        TraceAssert::new(&t).balanced("webservices");
    }

    #[test]
    #[should_panic(expected = "never closed")]
    fn balanced_rejects_unclosed_hop() {
        let mut t = Trace::default();
        t.span(1, ms(0), "mapper", "bridge.motes.input", "");
        t.span_begin(1, ms(1), "mapper", "bridge.motes.output", "");
        TraceAssert::new(&t).balanced("motes");
    }
}
