//! Hierarchical timer wheel: the event queue behind [`crate::World`].
//!
//! A discrete-event simulator spends most of its time inserting and
//! popping scheduled events. A single binary heap makes every operation
//! `O(log n)` in the *total* number of pending events — directory
//! re-announcements scheduled 30 virtual seconds out compete with
//! frame arrivals scheduled 40 µs out. The timer wheel splits the
//! timeline so the hot path only ever touches events that are about to
//! fire:
//!
//! * a **near heap** holds events within the current 2^16 ns (~65 µs)
//!   window, ordered by `(time, seq)`;
//! * six **wheel levels** of 64 slots each cover bits `[16, 52)` of the
//!   event time; an event is filed at the level of the highest bit in
//!   which it differs from the wheel horizon, so each level spans 64×
//!   the range of the one below;
//! * an **overflow heap** catches events more than 2^52 ns (~52 days)
//!   ahead.
//!
//! Far events cost `O(1)` to insert and at most [`LEVELS`] cascade hops
//! over their whole lifetime; the near heap stays small, so popping is
//! `O(log near)` rather than `O(log total)`.
//!
//! # Determinism
//!
//! Pop order is **exactly** ascending `(time, seq)` — byte-identical to
//! the `BinaryHeap<Reverse<(time, seq)>>` it replaces (the
//! `wheel_matches_reference_heap` property test enforces this). The
//! argument:
//!
//! 1. Entries at level `l` share all bits above `base(l) + 6` with the
//!    horizon, so their slot index is strictly ahead of the horizon's
//!    cursor at that level; slots never wrap within an epoch.
//! 2. Every entry at level `l` is earlier than every entry at any
//!    higher level (it matches the horizon in the higher level's bit
//!    range, where the higher entry exceeds it), and later than
//!    everything in the near heap; overflow entries are later still.
//! 3. Therefore the global minimum is always in the near heap once
//!    [`TimerWheel::pop`] has cascaded (lowest level, lowest slot
//!    first), and ties on `time` are all in the near heap together,
//!    where the heap order on `(time, seq)` resolves them FIFO.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Bits of event time covered by the near heap (2^16 ns ≈ 65 µs).
const NEAR_BITS: u32 = 16;
/// Bits per wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of coarse levels above the near window.
const LEVELS: usize = 6;
/// First bit beyond the top level; times differing here go to overflow.
const TOP_BITS: u32 = NEAR_BITS + LEVELS as u32 * LEVEL_BITS;

/// A scheduled entry's ordering key plus its slab slot. Heap sifts and
/// cascade hops move these 24-byte keys, never the payload — event
/// payloads are ~80 bytes in the simulator, and copying them through
/// every `O(log n)` sift dominated the scheduler's profile.
#[derive(Clone, Copy)]
struct Key {
    time: u64,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Key) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Key) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Key) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One scheduled entry. Ordering ignores the payload: `(time, seq)`
/// only, which is the simulator's total event order.
struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic hierarchical timer wheel.
///
/// Entries are tagged with a monotonically increasing sequence number at
/// insertion; [`TimerWheel::pop`] yields entries in ascending
/// `(time, seq)` order, i.e. earliest first with FIFO tie-breaking —
/// the same contract as a min-heap on `(time, seq)`.
///
/// # Examples
///
/// ```
/// use simnet::wheel::TimerWheel;
/// use simnet::SimTime;
///
/// let mut wheel = TimerWheel::new();
/// wheel.push(SimTime::from_secs(30), "directory re-announce");
/// wheel.push(SimTime::from_micros(40), "frame arrival");
/// assert_eq!(wheel.pop(), Some((SimTime::from_micros(40), "frame arrival")));
/// assert_eq!(wheel.pop(), Some((SimTime::from_secs(30), "directory re-announce")));
/// assert_eq!(wheel.pop(), None);
/// ```
pub struct TimerWheel<T> {
    /// Lower bound on every stored entry's time; advances on pop.
    horizon: u64,
    /// Next insertion sequence number.
    seq: u64,
    /// Payload storage; heaps and wheel slots hold [`Key`]s into it.
    /// Grows to the peak pending count and is then recycled via `free`.
    slab: Vec<Option<T>>,
    /// Vacated slab slots awaiting reuse.
    free: Vec<u32>,
    near: BinaryHeap<Reverse<Key>>,
    /// `LEVELS × SLOTS` buckets, flattened; capacity is retained across
    /// cascades so steady-state operation does not allocate.
    levels: Vec<Vec<Key>>,
    /// Per-level bitmask of occupied slots (bit `s` = slot `s`).
    occupied: [u64; LEVELS],
    overflow: BinaryHeap<Reverse<Key>>,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> TimerWheel<T> {
        TimerWheel::new()
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("horizon", &self.horizon)
            .field("len", &self.len)
            .field("near", &self.near.len())
            .field("overflow", &self.overflow.len())
            .finish_non_exhaustive()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel with the horizon at time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            horizon: 0,
            seq: 0,
            slab: Vec::new(),
            free: Vec::new(),
            near: BinaryHeap::new(),
            levels: std::iter::repeat_with(Vec::new)
                .take(LEVELS * SLOTS)
                .collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` at `time`, assigning the next sequence number.
    ///
    /// Times earlier than the wheel horizon (already-popped virtual
    /// time) are filed into the near heap, which yields them on the next
    /// pop — the same behavior a plain min-heap would exhibit.
    pub fn push(&mut self, time: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(item);
                s
            }
            None => {
                self.slab.push(Some(item));
                (self.slab.len() - 1) as u32
            }
        };
        self.file(Key {
            time: time.as_nanos(),
            seq,
            slot,
        });
    }

    /// Reclaims a key's payload from the slab, recycling its slot.
    fn take(&mut self, key: Key) -> T {
        let item = self.slab[key.slot as usize]
            .take()
            .expect("key references a live slab slot");
        self.free.push(key.slot);
        item
    }

    /// Removes and returns the earliest entry (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if !self.ensure_near() {
            return None;
        }
        let Reverse(k) = self.near.pop().expect("ensure_near filled the heap");
        self.len -= 1;
        self.horizon = self.horizon.max(k.time);
        Some((SimTime::from_nanos(k.time), self.take(k)))
    }

    /// Drains the entire run of entries sharing the earliest pending
    /// time into `out` (in sequence order) and returns that time.
    ///
    /// The run is the unit the dispatch batch plane works on: the world
    /// walks it grouping consecutive same-segment frame arrivals into
    /// single handler invocations, so sequence order here is what makes
    /// batched dispatch a pure re-grouping of the (time, seq) order.
    ///
    /// One cascade serves the whole run: same-time entries are always
    /// co-resident in the near heap (they share every bit, so they file
    /// identically), so no wheel level is touched between pops.
    pub fn pop_run(&mut self, out: &mut Vec<T>) -> Option<SimTime> {
        let (time, item) = self.pop()?;
        out.push(item);
        while let Some(Reverse(k)) = self.near.peek() {
            if k.time != time.as_nanos() {
                break;
            }
            let Reverse(k) = self.near.pop().expect("peeked entry exists");
            self.len -= 1;
            let item = self.take(k);
            out.push(item);
        }
        Some(time)
    }

    /// Time of the earliest pending entry, cascading lazily if needed.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.ensure_near() {
            return None;
        }
        self.near
            .peek()
            .map(|Reverse(k)| SimTime::from_nanos(k.time))
    }

    /// Files a key relative to the current horizon: near heap, a wheel
    /// slot at the level of the highest differing bit, or overflow.
    fn file(&mut self, k: Key) {
        // A time at (or before) the horizon belongs in the near window.
        let t = k.time.max(self.horizon);
        let diff = t ^ self.horizon;
        if diff >> NEAR_BITS == 0 {
            self.near.push(Reverse(k));
            return;
        }
        let top_bit = 63 - diff.leading_zeros();
        let level = ((top_bit - NEAR_BITS) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(k));
            return;
        }
        let base = NEAR_BITS + LEVEL_BITS * level as u32;
        let slot = ((t >> base) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.levels[level * SLOTS + slot].push(k);
    }

    /// Refills the near heap from the wheel, advancing the horizon to
    /// the next occupied bucket. Returns `false` when the wheel is
    /// completely empty.
    fn ensure_near(&mut self) -> bool {
        while self.near.is_empty() {
            if let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) {
                // Lowest occupied slot of the lowest occupied level is
                // the earliest bucket (slots never wrap within an
                // epoch; see module docs).
                let slot = self.occupied[level].trailing_zeros() as usize;
                let base = NEAR_BITS + LEVEL_BITS * level as u32;
                let above = base + LEVEL_BITS;
                let bucket = ((self.horizon >> above) << above) | ((slot as u64) << base);
                debug_assert!(bucket >= self.horizon, "cascade moved horizon backwards");
                self.horizon = bucket;
                self.occupied[level] &= !(1u64 << slot);
                let idx = level * SLOTS + slot;
                let mut keys = std::mem::take(&mut self.levels[idx]);
                // Against the advanced horizon every entry differs only
                // below `base`, so it re-files strictly lower — at most
                // LEVELS hops per entry over its lifetime.
                for k in keys.drain(..) {
                    self.file(k);
                }
                // Hand the (empty) buffer back so its capacity is
                // reused by later epochs.
                self.levels[idx] = keys;
            } else if let Some(Reverse(first)) = self.overflow.pop() {
                debug_assert!(first.time >= self.horizon);
                self.horizon = first.time;
                self.file(first);
                // Pull every overflow entry that now shares the top
                // bits with the horizon into the wheel, so later pushes
                // can never slip ahead of them via the levels.
                while let Some(Reverse(k)) = self.overflow.peek() {
                    if (k.time ^ self.horizon) >> TOP_BITS != 0 {
                        break;
                    }
                    let Reverse(k) = self.overflow.pop().expect("peeked entry exists");
                    self.file(k);
                }
            } else {
                return false;
            }
        }
        true
    }
}

/// The plain `(time, seq)` min-heap scheduler the wheel replaced.
///
/// Kept as a public type for two consumers: the wheel's property tests
/// (pop order must match this structure exactly) and the scheduler
/// micro-benchmarks, which A/B the wheel against it on identical
/// schedules. It intentionally mirrors [`TimerWheel`]'s API.
#[derive(Default)]
pub struct ReferenceHeap<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> ReferenceHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> ReferenceHeap<T> {
        ReferenceHeap {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `item` at `time`, assigning the next sequence number.
    pub fn push(&mut self, time: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: time.as_nanos(),
            seq,
            item,
        }));
    }

    /// Removes and returns the earliest entry (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap
            .pop()
            .map(|Reverse(e)| (SimTime::from_nanos(e.time), e.item))
    }

    /// Drains the run of entries sharing the earliest pending time into
    /// `out` (in sequence order) and returns that time.
    pub fn pop_run(&mut self, out: &mut Vec<T>) -> Option<SimTime> {
        let (time, item) = self.pop()?;
        out.push(item);
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.time != time.as_nanos() {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked entry exists");
            out.push(e.item);
        }
        Some(time)
    }

    /// Time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .peek()
            .map(|Reverse(e)| SimTime::from_nanos(e.time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{check_cases, SimRng};

    #[test]
    fn pops_in_time_then_seq_order_across_levels() {
        let mut wheel = TimerWheel::new();
        // One entry per storage tier: near, each level, overflow.
        let times: Vec<u64> = vec![
            3,                   // near
            1 << 17,             // level 0
            1 << 23,             // level 1
            1 << 29,             // level 2
            1 << 35,             // level 3
            1 << 41,             // level 4
            1 << 47,             // level 5
            1 << 60,             // overflow
            (1 << 60) + 500_000, // overflow, same epoch
        ];
        for (i, t) in times.iter().enumerate().rev() {
            wheel.push(SimTime::from_nanos(*t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = wheel.pop() {
            popped.push((t.as_nanos(), i));
        }
        let expected: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        assert_eq!(popped, expected);
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_tick_entries_drain_as_one_run() {
        let mut wheel = TimerWheel::new();
        let t = SimTime::from_millis(5);
        for i in 0..4 {
            wheel.push(t, i);
        }
        wheel.push(SimTime::from_millis(6), 99);
        let mut run = Vec::new();
        assert_eq!(wheel.pop_run(&mut run), Some(t));
        assert_eq!(run, vec![0, 1, 2, 3]);
        run.clear();
        assert_eq!(wheel.pop_run(&mut run), Some(SimTime::from_millis(6)));
        assert_eq!(run, vec![99]);
        assert_eq!(wheel.pop_run(&mut run), None);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut wheel = TimerWheel::new();
        wheel.push(SimTime::from_secs(1), "far");
        wheel.push(SimTime::from_nanos(10), "soon");
        assert_eq!(wheel.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(10), "soon")));
        assert_eq!(wheel.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(1), "far")));
        assert_eq!(wheel.peek_time(), None);
    }

    #[test]
    fn entries_behind_the_horizon_pop_next() {
        let mut wheel = TimerWheel::new();
        wheel.push(SimTime::from_secs(2), "a");
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(2), "a")));
        // The horizon is now at 2 s; a stale push must still surface.
        wheel.push(SimTime::from_secs(1), "late");
        wheel.push(SimTime::from_secs(3), "b");
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(1), "late")));
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(3), "b")));
    }

    /// Draws a schedule offset exercising every tier: same-tick ties,
    /// the near window, each wheel level, and the overflow epoch.
    fn random_offset(rng: &mut SimRng) -> u64 {
        match rng.gen_range(0..6u32) {
            0 => 0,                                   // same tick as `now`
            1 => rng.gen_range(0..1u64 << NEAR_BITS), // near window
            2 => rng.gen_range(0..1u64 << 30),        // low levels
            3 => rng.gen_range(0..1u64 << 45),        // high levels
            4 => rng.gen_range(0..1u64 << 55),        // top level / overflow edge
            _ => rng.gen_range(0..1u64 << 60),        // deep overflow
        }
    }

    #[test]
    fn wheel_matches_reference_heap() {
        check_cases("wheel_matches_reference_heap", 64, |_case, rng| {
            let mut wheel = TimerWheel::new();
            let mut reference = ReferenceHeap::new();
            let mut now = 0u64;
            let mut next_id = 0u32;
            // Cancellation is modeled the way the World models it: a
            // set of dead ids filtered at delivery, identically on
            // both structures.
            let mut cancelled = std::collections::HashSet::new();
            let ops = rng.gen_range(50..400usize);
            for _ in 0..ops {
                if rng.gen_bool(0.55) || wheel.is_empty() {
                    // Push a burst (bursts create same-tick ties).
                    let burst = rng.gen_range(1..4u32);
                    let t = now + random_offset(rng);
                    for _ in 0..burst {
                        let id = next_id;
                        next_id += 1;
                        wheel.push(SimTime::from_nanos(t), id);
                        reference.push(SimTime::from_nanos(t), id);
                        if rng.gen_bool(0.1) {
                            cancelled.insert(id);
                        }
                    }
                } else {
                    let got = wheel.pop().map(|(t, id)| (t.as_nanos(), id));
                    let want = reference.pop().map(|(t, id)| (t.as_nanos(), id));
                    assert_eq!(got, want, "pop order diverged");
                    if let Some((t, id)) = got {
                        assert!(t >= now, "time went backwards");
                        now = t;
                        // Delivery-time cancellation check, as in World.
                        let _ = cancelled.remove(&id);
                    }
                }
            }
            // Drain both completely; tails must agree too.
            loop {
                let got = wheel.pop().map(|(t, id)| (t.as_nanos(), id));
                let want = reference.pop().map(|(t, id)| (t.as_nanos(), id));
                assert_eq!(got, want, "drain order diverged");
                if got.is_none() {
                    break;
                }
            }
            assert!(wheel.is_empty());
        });
    }

    #[test]
    fn pop_run_matches_reference_heap_batching() {
        check_cases("pop_run_matches_reference_heap", 32, |_case, rng| {
            let mut wheel = TimerWheel::new();
            let mut reference = ReferenceHeap::new();
            let mut now = 0u64;
            for id in 0..200u32 {
                let t = now.max(rng.gen_range(0..1u64 << 40));
                // Cluster times so runs form.
                let t = t & !0xFFF;
                wheel.push(SimTime::from_nanos(t), id);
                reference.push(SimTime::from_nanos(t), id);
                if id % 16 == 0 {
                    now = t;
                }
            }
            let mut run = Vec::new();
            while let Some(t) = wheel.pop_run(&mut run) {
                for id in run.drain(..) {
                    assert_eq!(reference.pop(), Some((t, id)));
                }
            }
            assert_eq!(reference.pop(), None);
        });
    }
}
