//! The per-event context handed to [`Process`](crate::Process) handlers.

use std::any::Any;

use crate::error::SimResult;
use crate::process::{Addr, LocalMessage, NodeId, ProcId, Process, StreamId};
use crate::time::{SimDuration, SimTime};
use crate::world::{Delivery, World};

/// A handle to a running timer, usable with [`Ctx::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub(crate) u64);

/// Mutable access to the world, scoped to the process currently handling
/// an event.
///
/// All side effects a process can have — sending traffic, setting timers,
/// modeling CPU cost, spawning siblings — go through this type.
pub struct Ctx<'w> {
    world: &'w mut World,
    me: ProcId,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("me", &self.me)
            .finish_non_exhaustive()
    }
}

impl<'w> Ctx<'w> {
    pub(crate) fn new(world: &'w mut World, me: ProcId) -> Ctx<'w> {
        Ctx { world, me }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The id of the process handling this event.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Removes a process from the world — in-world failure injection,
    /// the event-driven twin of [`crate::World::remove_process`]. Lets a
    /// fault-injector process kill a victim mid-run, which is the only
    /// way to schedule a failure inside a sharded run (the conductor
    /// cannot pause sibling shards to edit a world between windows).
    /// Removing `me` is allowed; the dead slot is not resurrected.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`](crate::SimError::UnknownProcess)
    /// if the process does not exist or was already removed.
    pub fn remove_process(&mut self, proc: ProcId) -> SimResult<()> {
        self.world.remove_process(proc)
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.world.procs[self.me.index()].node
    }

    /// Seeded random number generator shared by the whole world.
    pub fn rng(&mut self) -> &mut crate::rng::SimRng {
        &mut self.world.rng
    }

    /// Logs a trace event attributed to this process.
    pub fn trace(&mut self, message: impl Into<String>) {
        let name = self.world.procs[self.me.index()].name.clone();
        let now = self.world.now();
        self.world.trace.log(now, name, message);
    }

    /// Adds `n` to a named world counter.
    pub fn bump(&mut self, counter: &str, n: u64) {
        self.world.trace.bump(counter, n);
    }

    /// Sets a named gauge to an absolute value.
    pub fn gauge_set(&mut self, gauge: &str, v: i64) {
        self.world.trace.metrics_mut().gauge_set(gauge, v);
    }

    /// Adds a (possibly negative) delta to a named gauge.
    pub fn gauge_add(&mut self, gauge: &str, delta: i64) {
        self.world.trace.metrics_mut().gauge_add(gauge, delta);
    }

    /// Records a virtual-time duration into the named latency histogram.
    pub fn observe(&mut self, histogram: &str, d: SimDuration) {
        self.world.trace.metrics_mut().observe(histogram, d);
    }

    /// Records a virtual-time duration into the named latency histogram
    /// tagged with the trace correlation id of the journey it measures,
    /// so the histogram keeps exemplars linking its slow buckets back to
    /// traces (see [`crate::Histogram::record_corr`]).
    pub fn observe_corr(&mut self, histogram: &str, d: SimDuration, corr: u64) {
        self.world
            .trace
            .metrics_mut()
            .observe_corr(histogram, d, corr);
    }

    /// Read access to the world's metrics registry (counters, gauges,
    /// histograms). Useful for answering metric queries from inside a
    /// process handler.
    pub fn metrics(&self) -> &crate::trace::Metrics {
        self.world.trace.metrics()
    }

    /// An owned window over the live telemetry series, optionally scoped
    /// to one metric prefix (e.g. `rt0`). `None` until the world enables
    /// telemetry ([`crate::World::enable_telemetry`]). This is how a
    /// runtime answers live `TelemetryWindow` pulls from inside a
    /// handler.
    pub fn telemetry_window(&self, scope: Option<&str>) -> Option<crate::TelemetryWindow> {
        self.world.telemetry_window(scope)
    }

    /// Records an instant (zero-duration) span on a correlated path,
    /// attributed to this process at the current virtual time. `corr` is
    /// the correlation id minted when the connection was established.
    pub fn span(
        &mut self,
        corr: u64,
        stage: impl Into<String>,
        detail: impl Into<String>,
    ) -> crate::SpanId {
        let name = self.world.procs[self.me.index()].name.clone();
        let now = self.world.now();
        self.world.trace.span(corr, now, name, stage, detail)
    }

    /// Opens a structured span on a correlated path, attributed to this
    /// process at the current virtual time. Close it with
    /// [`span_end`](Ctx::span_end) — possibly from a different process
    /// (the id can travel with the message it measures).
    pub fn span_begin(
        &mut self,
        corr: u64,
        stage: impl Into<String>,
        detail: impl Into<String>,
    ) -> crate::SpanId {
        let name = self.world.procs[self.me.index()].name.clone();
        let now = self.world.now();
        self.world.trace.span_begin(corr, now, name, stage, detail)
    }

    /// Closes a span at this process's *emit time* — the current virtual
    /// time plus any CPU work accumulated via [`busy`](Ctx::busy) in
    /// this handler — so modeled compute is inside the span, matching
    /// when the process's outputs actually leave it. Returns the span's
    /// duration (`None` for an unknown, already-closed, or sentinel id).
    pub fn span_end(&mut self, id: crate::SpanId) -> Option<crate::SimDuration> {
        let t = self.world.emit_time(self.me);
        self.world.trace.span_end(id, t)
    }

    /// The live dispatch batch bound (see
    /// [`World::dispatch_batch_limit`]). Layered runtimes consult this so
    /// the whole stack — frame delivery, translator invocation, wire
    /// framing — follows the world's single [`crate::BatchPolicy`] knob.
    pub fn dispatch_batch_limit(&self) -> usize {
        self.world.dispatch_batch_limit()
    }

    /// `true` if this process has modeled CPU time still pending — used
    /// by batched delivery to defer the rest of a batch exactly as
    /// individual deliveries would defer.
    pub(crate) fn proc_is_busy(&self) -> bool {
        self.world.procs[self.me.index()].busy_until > self.world.now()
    }

    /// Models CPU work: subsequent event deliveries to this process are
    /// deferred until the accumulated busy time elapses.
    pub fn busy(&mut self, duration: SimDuration) {
        let now = self.world.now();
        let slot = &mut self.world.procs[self.me.index()];
        let base = slot.busy_until.max(now);
        slot.busy_until = base + duration;
    }

    /// Sets a one-shot timer; `token` is returned to
    /// [`Process::on_timer`](crate::Process::on_timer) when it fires.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerHandle {
        TimerHandle(self.world.set_timer(self.me, after, token))
    }

    /// Cancels a timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.world.cancel_timer(handle.0);
    }

    /// Binds a datagram port on this node.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PortInUse`](crate::SimError::PortInUse) if the
    /// port is held by another live process.
    pub fn bind(&mut self, port: u16) -> SimResult<()> {
        self.world.bind(self.me, port)
    }

    /// Allocates a free ephemeral port on this node (not yet bound).
    pub fn ephemeral_port(&mut self) -> u16 {
        let node = self.node();
        self.world.alloc_ephemeral(node)
    }

    /// Sends a datagram from `src_port` on this node.
    ///
    /// Accepts anything convertible to a [`Payload`](crate::Payload)
    /// (`Vec<u8>`, `&[u8]`, an existing `Payload`, …); passing a `Payload`
    /// forwards it without copying.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoRoute`](crate::SimError::NoRoute) if this node
    /// shares no segment with the destination.
    pub fn send_to(
        &mut self,
        src_port: u16,
        dst: Addr,
        data: impl Into<crate::Payload>,
    ) -> SimResult<()> {
        self.world
            .send_datagram(self.me, src_port, dst, data.into())
    }

    /// Joins multicast group `group` on every segment this node is
    /// currently attached to.
    pub fn join_group(&mut self, group: u16) -> SimResult<()> {
        self.world.join_group(self.me, group)
    }

    /// Leaves multicast group `group` everywhere.
    pub fn leave_group(&mut self, group: u16) -> SimResult<()> {
        self.world.leave_group(self.me, group)
    }

    /// Multicasts `data` to group members on all attached segments. The
    /// sending node does not receive its own multicast. All recipients
    /// share one backing buffer: fan-out to N members copies no bytes.
    pub fn multicast(
        &mut self,
        src_port: u16,
        group: u16,
        data: impl Into<crate::Payload>,
    ) -> SimResult<()> {
        self.world
            .send_multicast(self.me, src_port, group, data.into())
    }

    /// Starts accepting stream connections on `port`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PortInUse`](crate::SimError::PortInUse) if the
    /// port is held by another live process.
    pub fn listen(&mut self, port: u16) -> SimResult<()> {
        self.world.listen(self.me, port)
    }

    /// Opens a stream to `dst`. Completion is reported asynchronously as
    /// [`StreamEvent::Connected`](crate::StreamEvent::Connected) or
    /// [`StreamEvent::ConnectFailed`](crate::StreamEvent::ConnectFailed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoRoute`](crate::SimError::NoRoute) if this node
    /// shares no segment with the destination.
    pub fn connect(&mut self, dst: Addr) -> SimResult<StreamId> {
        self.world.stream_connect(self.me, dst)
    }

    /// Queues bytes on a stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StreamBufferFull`](crate::SimError::StreamBufferFull)
    /// when the send buffer is at capacity — wait for
    /// [`StreamEvent::Writable`](crate::StreamEvent::Writable) — and
    /// [`SimError::StreamClosed`](crate::SimError::StreamClosed) on a
    /// closed stream.
    pub fn stream_send(
        &mut self,
        stream: StreamId,
        data: impl Into<crate::Payload>,
    ) -> SimResult<()> {
        self.world.stream_send(self.me, stream, data.into())
    }

    /// Bytes that can currently be queued on the stream without hitting
    /// [`SimError::StreamBufferFull`](crate::SimError::StreamBufferFull).
    pub fn stream_sendable(&self, stream: StreamId) -> usize {
        self.world.stream_sendable(self.me, stream)
    }

    /// Closes our direction of the stream after queued data drains. The
    /// peer observes [`StreamEvent::Closed`](crate::StreamEvent::Closed).
    pub fn stream_close(&mut self, stream: StreamId) {
        self.world.stream_close_deferred(self.me, stream);
    }

    /// Sends a local (same-node, zero-cost) message to another process.
    /// Delivery is asynchronous, at the current virtual time.
    pub fn send_local(&mut self, to: ProcId, msg: impl Any) {
        let now = self.world.now();
        self.world.schedule_delivery(
            now,
            to,
            Delivery::Local {
                from: self.me,
                msg: Box::new(msg) as LocalMessage,
            },
        );
    }

    /// Sends an already-boxed local message (avoids double boxing when
    /// forwarding).
    pub fn send_local_boxed(&mut self, to: ProcId, msg: LocalMessage) {
        let now = self.world.now();
        self.world
            .schedule_delivery(now, to, Delivery::Local { from: self.me, msg });
    }

    /// Spawns a new process on this node. Its `on_start` runs at the
    /// current virtual time.
    pub fn spawn_local(&mut self, process: Box<dyn Process>) -> ProcId {
        let node = self.node();
        self.world.add_process(node, process)
    }

    /// This world's shard identity in a sharded run, or `None` when the
    /// world runs standalone. Fixture code branches on this to add
    /// cross-shard wiring only when there is another shard to talk to.
    pub fn shard(&self) -> Option<crate::ShardConfig> {
        self.world.shard_config()
    }

    /// Sends `data` to inlet `inlet` on shard `dst_shard` over the
    /// inter-shard link. The message leaves at this process's emit time
    /// and arrives one link latency later, delivered as a datagram to
    /// whatever address the receiving shard registered for the inlet.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSharded`](crate::SimError::NotSharded)
    /// outside a sharded run and
    /// [`SimError::ShardUnknown`](crate::SimError::ShardUnknown) for an
    /// out-of-range destination shard.
    pub fn send_shard(
        &mut self,
        dst_shard: u16,
        inlet: u16,
        data: impl Into<crate::Payload>,
    ) -> SimResult<()> {
        self.world
            .send_shard(self.me, dst_shard, inlet, data.into())
    }

    /// Binds `port` on this node and registers it as the local delivery
    /// address for cross-shard inlet `inlet`: siblings' `send_shard`
    /// traffic for that inlet arrives at this process as datagrams.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSharded`](crate::SimError::NotSharded)
    /// outside a sharded run and
    /// [`SimError::PortInUse`](crate::SimError::PortInUse) if another
    /// live process holds the port.
    pub fn register_shard_inlet(&mut self, inlet: u16, port: u16) -> SimResult<()> {
        self.world
            .shard_config()
            .ok_or(crate::SimError::NotSharded)?;
        self.bind(port)?;
        let dst = Addr::new(self.node(), port);
        self.world.register_shard_inlet(inlet, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::SegmentConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct EphemeralProbe {
        ports: Rc<RefCell<Vec<u16>>>,
    }
    impl Process for EphemeralProbe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let p1 = ctx.ephemeral_port();
            ctx.bind(p1).unwrap();
            let p2 = ctx.ephemeral_port();
            self.ports.borrow_mut().extend([p1, p2]);
        }
    }

    #[test]
    fn ephemeral_ports_skip_bound_ones() {
        let mut w = World::new(0);
        let seg = w.add_segment(SegmentConfig::loopback());
        let n = w.add_node("n");
        w.attach(n, seg).unwrap();
        let ports = Rc::new(RefCell::new(Vec::new()));
        w.add_process(
            n,
            Box::new(EphemeralProbe {
                ports: Rc::clone(&ports),
            }),
        );
        w.run_until_idle();
        let ports = ports.borrow();
        assert_eq!(ports.len(), 2);
        assert_ne!(ports[0], ports[1]);
    }

    struct LocalSender {
        to: Option<ProcId>,
    }
    impl Process for LocalSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(to) = self.to {
                ctx.send_local(to, 41_u32);
            }
        }
    }

    struct LocalReceiver {
        got: Rc<RefCell<Option<u32>>>,
    }
    impl Process for LocalReceiver {
        fn on_local(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            *self.got.borrow_mut() = msg.downcast::<u32>().ok().map(|v| *v);
        }
    }

    #[test]
    fn local_messages_downcast() {
        let mut w = World::new(0);
        let n = w.add_node("n");
        let got = Rc::new(RefCell::new(None));
        let rx = w.add_process(
            n,
            Box::new(LocalReceiver {
                got: Rc::clone(&got),
            }),
        );
        w.add_process(n, Box::new(LocalSender { to: Some(rx) }));
        w.run_until_idle();
        assert_eq!(*got.borrow(), Some(41));
    }
}
