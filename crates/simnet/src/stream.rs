//! Reliable, in-order byte streams over the shared-medium model.
//!
//! The stream layer is a compact TCP analogue: three-way-ish handshake
//! (SYN / SYN-ACK), MSS segmentation, a fixed sender window, cumulative
//! ACKs, go-back-N retransmission with exponential RTO backoff, and
//! FIN/RST teardown. Every data *and* acknowledgment frame occupies the
//! medium, so on a half-duplex segment ACK traffic competes with data —
//! this is the mechanism that caps TCP goodput on the paper's 10 Mbps hub
//! below line rate.
//!
//! The implementation lives centrally in the [`World`] rather than in
//! per-node processes: it models the OS kernels of the simulated hosts.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::error::{SimError, SimResult};
use crate::payload::Payload;
use crate::process::{Addr, NodeId, ProcId, SegmentId, StreamEvent, StreamId};
use crate::time::SimDuration;
use crate::world::{Delivery, EventKind, Frame, FrameDst, FramePayload, World};

/// Initial retransmission timeout.
const RTO_INITIAL: SimDuration = SimDuration::from_millis(100);
/// Retransmission timeout ceiling.
const RTO_MAX: SimDuration = SimDuration::from_secs(2);
/// Interval between SYN retries.
const SYN_RETRY_AFTER: SimDuration = SimDuration::from_millis(500);
/// SYN attempts before giving up with `ConnectFailed`.
const SYN_MAX_ATTEMPTS: u32 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    SynSent,
    Established,
    Closed,
}

/// The sender-side byte queue, kept as the original [`Payload`] chunks so
/// that segmentation, retransmission (go-back-N rewind) and ACK trimming
/// are all O(1) views into the application's buffers instead of copies.
#[derive(Debug, Default)]
pub(crate) struct SendQueue {
    chunks: VecDeque<Payload>,
    len: usize,
}

impl SendQueue {
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn push(&mut self, p: Payload) {
        if p.is_empty() {
            return;
        }
        self.len += p.len();
        self.chunks.push_back(p);
    }

    /// Zero-copy view of up to `max` bytes starting `offset` bytes into the
    /// queue. Bounded by the chunk containing `offset`: a segment never
    /// straddles two application writes, which keeps every wire frame a
    /// pure sub-slice of one backing allocation.
    pub(crate) fn peek_at(&self, offset: usize, max: usize) -> Payload {
        debug_assert!(offset < self.len, "peek_at past end of queue");
        let mut skip = offset;
        for c in &self.chunks {
            if skip < c.len() {
                let end = (skip + max).min(c.len());
                return c.slice(skip..end);
            }
            skip -= c.len();
        }
        Payload::new()
    }

    /// Drops `n` acknowledged bytes from the front without copying.
    pub(crate) fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.len, "advance past end of queue");
        self.len -= n;
        while n > 0 {
            let front = self.chunks.front_mut().expect("advance within len");
            if n < front.len() {
                front.advance(n);
                break;
            }
            n -= front.len();
            self.chunks.pop_front();
        }
    }
}

#[derive(Debug)]
pub(crate) struct Side {
    pub(crate) proc: Option<ProcId>,
    pub(crate) node: NodeId,
    pub(crate) port: u16,
    // --- sender state ---
    send_buf: SendQueue,
    base_seq: u64,
    next_seq: u64,
    rto: SimDuration,
    rto_epoch: u64,
    rto_armed: bool,
    fin_queued: bool,
    fin_sent: bool,
    fin_acked: bool,
    was_full: bool,
    // --- receiver state ---
    recv_next: u64,
    ooo: BTreeMap<u64, Payload>,
    peer_fin_seq: Option<u64>,
    delivered_closed: bool,
}

impl Side {
    fn new(proc: Option<ProcId>, node: NodeId, port: u16) -> Side {
        Side {
            proc,
            node,
            port,
            send_buf: SendQueue::default(),
            base_seq: 0,
            next_seq: 0,
            rto: RTO_INITIAL,
            rto_epoch: 0,
            rto_armed: false,
            fin_queued: false,
            fin_sent: false,
            fin_acked: false,
            was_full: false,
            recv_next: 0,
            ooo: BTreeMap::new(),
            peer_fin_seq: None,
            delivered_closed: false,
        }
    }

    fn in_flight(&self) -> u64 {
        self.next_seq - self.base_seq
    }

    fn unsent(&self) -> u64 {
        self.send_buf.len() as u64 - self.in_flight()
    }

    fn all_sent_and_acked(&self) -> bool {
        self.send_buf.is_empty() && (!self.fin_sent || self.fin_acked)
    }
}

#[derive(Debug)]
pub(crate) struct StreamState {
    pub(crate) segment: SegmentId,
    pub(crate) phase: Phase,
    pub(crate) dst: Addr,
    /// `sides[0]` is the initiator, `sides[1]` the acceptor.
    pub(crate) sides: [Side; 2],
}

impl StreamState {
    fn side(&self, initiator: bool) -> &Side {
        &self.sides[usize::from(!initiator)]
    }
    fn side_mut(&mut self, initiator: bool) -> &mut Side {
        &mut self.sides[usize::from(!initiator)]
    }
    fn side_of(&self, proc: ProcId) -> Option<bool> {
        if self.sides[0].proc == Some(proc) {
            Some(true)
        } else if self.sides[1].proc == Some(proc) {
            Some(false)
        } else {
            None
        }
    }
}

/// A stream-layer frame on the wire.
#[derive(Debug)]
pub(crate) struct StreamFrame {
    pub(crate) stream: StreamId,
    /// `true` if the frame was transmitted by the initiator side.
    pub(crate) from_initiator: bool,
    pub(crate) kind: StreamFrameKind,
}

#[derive(Debug)]
pub(crate) enum StreamFrameKind {
    Syn { src: Addr, dst: Addr },
    SynAck,
    Rst,
    Data { seq: u64, bytes: Payload },
    Ack { ack: u64 },
    Fin { seq: u64 },
}

impl World {
    fn stream_state(&mut self, id: StreamId) -> Option<&mut StreamState> {
        self.streams.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    fn transmit_stream_frame(
        &mut self,
        segment: SegmentId,
        src_node: NodeId,
        dst_node: NodeId,
        frame: StreamFrame,
        payload_len: usize,
    ) {
        self.trace.bump("stream.frames", 1);
        let f = Frame {
            src_node,
            dst: FrameDst::Unicast(dst_node),
            payload: FramePayload::Stream(frame),
        };
        self.transmit(segment, f, payload_len + Self::STREAM_HEADER);
    }

    /// Opens a stream from `proc` to `dst`. See [`Ctx::connect`](crate::Ctx::connect).
    pub(crate) fn stream_connect(&mut self, proc: ProcId, dst: Addr) -> SimResult<StreamId> {
        let src_node = self.node_of(proc)?;
        let segment = self.route(src_node, dst.node)?;
        let src_port = self.alloc_ephemeral(src_node);
        let id = StreamId(self.streams.len() as u32);
        let state = StreamState {
            segment,
            phase: Phase::SynSent,
            dst,
            sides: [
                Side::new(Some(proc), src_node, src_port),
                Side::new(None, dst.node, dst.port),
            ],
        };
        self.streams.push(Some(state));
        self.send_syn(id, 1);
        Ok(id)
    }

    fn send_syn(&mut self, id: StreamId, attempt: u32) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase != Phase::SynSent {
            return;
        }
        let (segment, src_node, dst_node, src_port, dst) = (
            st.segment,
            st.sides[0].node,
            st.sides[1].node,
            st.sides[0].port,
            st.dst,
        );
        self.transmit_stream_frame(
            segment,
            src_node,
            dst_node,
            StreamFrame {
                stream: id,
                from_initiator: true,
                kind: StreamFrameKind::Syn {
                    src: Addr::new(src_node, src_port),
                    dst,
                },
            },
            0,
        );
        let at = self.now() + SYN_RETRY_AFTER;
        self.schedule(
            at,
            EventKind::SynRetry {
                stream: id,
                attempt,
            },
        );
    }

    pub(crate) fn syn_retry(&mut self, id: StreamId, attempt: u32) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase != Phase::SynSent {
            return;
        }
        if attempt >= SYN_MAX_ATTEMPTS {
            st.phase = Phase::Closed;
            let proc = st.sides[0].proc;
            if let Some(p) = proc {
                let now = self.now();
                self.schedule_delivery(
                    now,
                    p,
                    Delivery::Stream {
                        stream: id,
                        event: StreamEvent::ConnectFailed,
                    },
                );
            }
            self.free_if_done(id);
            return;
        }
        self.trace.bump("stream.syn_retries", 1);
        self.send_syn(id, attempt + 1);
    }

    /// Queues bytes for transmission. See [`Ctx::stream_send`](crate::Ctx::stream_send).
    ///
    /// Validation (existence, state, capacity) happens synchronously; the
    /// actual enqueue is deferred past the sender's modeled CPU time so
    /// declared processing costs precede the bytes on the wire.
    pub(crate) fn stream_send(
        &mut self,
        proc: ProcId,
        id: StreamId,
        data: Payload,
    ) -> SimResult<()> {
        let capacity = self.stream_send_capacity;
        let Some(st) = self.stream_state(id) else {
            return Err(SimError::UnknownStream(id));
        };
        if st.phase == Phase::Closed {
            return Err(SimError::StreamClosed(id));
        }
        let Some(initiator) = st.side_of(proc) else {
            return Err(SimError::UnknownStream(id));
        };
        let side = st.side_mut(initiator);
        if side.fin_queued {
            return Err(SimError::StreamClosed(id));
        }
        if side.send_buf.len() + data.len() > capacity {
            side.was_full = true;
            return Err(SimError::StreamBufferFull(id));
        }
        if self.emit_time(proc) > self.now() {
            self.emit_or_defer(
                proc,
                crate::world::EmitAction::StreamData { stream: id, data },
            );
            return Ok(());
        }
        self.stream_send_forced(proc, id, data)
    }

    /// Enqueues bytes without re-checking capacity (deferred sends were
    /// validated at call time).
    pub(crate) fn stream_send_forced(
        &mut self,
        proc: ProcId,
        id: StreamId,
        data: Payload,
    ) -> SimResult<()> {
        let Some(st) = self.stream_state(id) else {
            return Err(SimError::UnknownStream(id));
        };
        if st.phase == Phase::Closed {
            return Err(SimError::StreamClosed(id));
        }
        let Some(initiator) = st.side_of(proc) else {
            return Err(SimError::UnknownStream(id));
        };
        st.side_mut(initiator).send_buf.push(data);
        self.pump(id, initiator);
        Ok(())
    }

    pub(crate) fn stream_sendable(&self, proc: ProcId, id: StreamId) -> usize {
        let Some(Some(st)) = self.streams.get(id.index()) else {
            return 0;
        };
        if st.phase == Phase::Closed {
            return 0;
        }
        let Some(initiator) = st.side_of(proc) else {
            return 0;
        };
        self.stream_send_capacity
            .saturating_sub(st.side(initiator).send_buf.len())
    }

    /// Requests an orderly close of `proc`'s direction (deferred past the
    /// sender's modeled CPU time so queued responses leave first).
    pub(crate) fn stream_close_deferred(&mut self, proc: ProcId, id: StreamId) {
        if self.emit_time(proc) > self.now() {
            self.emit_or_defer(proc, crate::world::EmitAction::StreamClose { stream: id });
        } else {
            self.stream_close(proc, id);
        }
    }

    /// Requests an orderly close of `proc`'s direction.
    pub(crate) fn stream_close(&mut self, proc: ProcId, id: StreamId) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase == Phase::Closed {
            return;
        }
        let Some(initiator) = st.side_of(proc) else {
            return;
        };
        st.side_mut(initiator).fin_queued = true;
        self.pump(id, initiator);
    }

    /// Transmits as much pending data as the window allows; sends a FIN
    /// once everything queued has been transmitted.
    fn pump(&mut self, id: StreamId, initiator: bool) {
        let window = self.stream_window as u64;
        loop {
            let Some(st) = self.stream_state(id) else {
                return;
            };
            if st.phase != Phase::Established {
                return;
            }
            let segment = st.segment;
            let mss = (self.segments[segment.index()].config.mtu as usize)
                .saturating_sub(Self::STREAM_HEADER)
                .max(1) as u64;
            let st = self.stream_state(id).expect("stream checked above");
            let (src_node, dst_node) = (st.side(initiator).node, st.side(!initiator).node);
            let side = st.side_mut(initiator);
            let can_send = window.saturating_sub(side.in_flight()).min(side.unsent());
            if can_send == 0 {
                // Maybe send the FIN.
                if side.fin_queued && !side.fin_sent && side.send_buf.is_empty() {
                    side.fin_sent = true;
                    let seq = side.next_seq;
                    let need_rto = !side.rto_armed;
                    if need_rto {
                        side.rto_armed = true;
                        side.rto_epoch += 1;
                    }
                    let (epoch, rto) = (side.rto_epoch, side.rto);
                    self.transmit_stream_frame(
                        segment,
                        src_node,
                        dst_node,
                        StreamFrame {
                            stream: id,
                            from_initiator: initiator,
                            kind: StreamFrameKind::Fin { seq },
                        },
                        0,
                    );
                    if need_rto {
                        let at = self.now() + rto;
                        self.schedule(
                            at,
                            EventKind::StreamRto {
                                stream: id,
                                from_initiator: initiator,
                                epoch,
                            },
                        );
                    }
                }
                return;
            }
            let offset = side.in_flight() as usize;
            // Zero-copy view into the send queue; may be shorter than the
            // window allows when it hits an application-write boundary.
            let bytes = side.send_buf.peek_at(offset, can_send.min(mss) as usize);
            let chunk_len = bytes.len();
            debug_assert!(chunk_len > 0, "pump with unsent bytes yields a chunk");
            let seq = side.next_seq;
            side.next_seq += chunk_len as u64;
            let need_rto = !side.rto_armed;
            if need_rto {
                side.rto_armed = true;
                side.rto_epoch += 1;
            }
            let (epoch, rto) = (side.rto_epoch, side.rto);
            self.transmit_stream_frame(
                segment,
                src_node,
                dst_node,
                StreamFrame {
                    stream: id,
                    from_initiator: initiator,
                    kind: StreamFrameKind::Data { seq, bytes },
                },
                chunk_len,
            );
            if need_rto {
                let at = self.now() + rto;
                self.schedule(
                    at,
                    EventKind::StreamRto {
                        stream: id,
                        from_initiator: initiator,
                        epoch,
                    },
                );
            }
        }
    }

    pub(crate) fn stream_rto_fired(&mut self, id: StreamId, initiator: bool, epoch: u64) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase == Phase::Closed {
            return;
        }
        let side = st.side_mut(initiator);
        if !side.rto_armed || side.rto_epoch != epoch {
            return;
        }
        let has_outstanding = side.in_flight() > 0 || (side.fin_sent && !side.fin_acked);
        if !has_outstanding {
            side.rto_armed = false;
            return;
        }
        // Go-back-N: rewind to the first unacked byte and re-send.
        side.next_seq = side.base_seq;
        side.fin_sent = false;
        side.rto = (side.rto * 2).min(RTO_MAX);
        side.rto_epoch += 1;
        let (new_epoch, rto) = (side.rto_epoch, side.rto);
        self.trace.bump("stream.rto", 1);
        let at = self.now() + rto;
        self.schedule(
            at,
            EventKind::StreamRto {
                stream: id,
                from_initiator: initiator,
                epoch: new_epoch,
            },
        );
        self.pump(id, initiator);
    }

    /// Handles an arriving stream frame (called from the frame dispatcher).
    pub(crate) fn stream_frame_arrival(&mut self, segment: SegmentId, frame: StreamFrame) {
        let id = frame.stream;
        match frame.kind {
            StreamFrameKind::Syn { src, dst } => self.handle_syn(segment, id, src, dst),
            StreamFrameKind::SynAck => self.handle_syn_ack(id),
            StreamFrameKind::Rst => self.handle_rst(id, frame.from_initiator),
            StreamFrameKind::Data { seq, bytes } => {
                self.handle_data(id, frame.from_initiator, seq, bytes)
            }
            StreamFrameKind::Ack { ack } => self.handle_ack(id, frame.from_initiator, ack),
            StreamFrameKind::Fin { seq } => self.handle_fin(id, frame.from_initiator, seq),
        }
    }

    fn handle_syn(&mut self, segment: SegmentId, id: StreamId, src: Addr, dst: Addr) {
        // Duplicate SYN for an established stream: re-send SYN-ACK.
        if let Some(st) = self.stream_state(id) {
            let phase = st.phase;
            let (seg, a_node, b_node) = (st.segment, st.sides[0].node, st.sides[1].node);
            if phase == Phase::Established {
                self.transmit_stream_frame(
                    seg,
                    b_node,
                    a_node,
                    StreamFrame {
                        stream: id,
                        from_initiator: false,
                        kind: StreamFrameKind::SynAck,
                    },
                    0,
                );
            }
            if phase != Phase::SynSent {
                return;
            }
        }
        let listener = self
            .nodes
            .get(dst.node.index())
            .filter(|n| n.alive)
            .and_then(|n| n.ports.get(&dst.port))
            .filter(|b| b.listener)
            .map(|b| b.proc);
        match listener {
            Some(proc) => {
                // Ensure the streams vec can hold this id (initiator's world
                // allocated it; same world, so it exists already unless this
                // SYN was for a closed/freed slot).
                if self.stream_state(id).is_none() {
                    return;
                }
                let st = self.stream_state(id).expect("checked above");
                // Duplicate SYN (SYN-ACK lost): don't re-deliver Accepted.
                let first_syn = st.sides[1].proc.is_none();
                st.sides[1].proc = Some(proc);
                let (a_node, b_node) = (st.sides[0].node, st.sides[1].node);
                let local_port = dst.port;
                if first_syn {
                    self.schedule_delivery(
                        self.now(),
                        proc,
                        Delivery::Stream {
                            stream: id,
                            event: StreamEvent::Accepted {
                                peer: src,
                                local_port,
                            },
                        },
                    );
                }
                self.transmit_stream_frame(
                    segment,
                    b_node,
                    a_node,
                    StreamFrame {
                        stream: id,
                        from_initiator: false,
                        kind: StreamFrameKind::SynAck,
                    },
                    0,
                );
            }
            None => {
                let Some(st) = self.stream_state(id) else {
                    return;
                };
                let (a_node, b_node) = (st.sides[0].node, st.sides[1].node);
                self.transmit_stream_frame(
                    segment,
                    b_node,
                    a_node,
                    StreamFrame {
                        stream: id,
                        from_initiator: false,
                        kind: StreamFrameKind::Rst,
                    },
                    0,
                );
            }
        }
    }

    fn handle_syn_ack(&mut self, id: StreamId) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase != Phase::SynSent {
            return;
        }
        st.phase = Phase::Established;
        let proc = st.sides[0].proc;
        if let Some(p) = proc {
            self.schedule_delivery(
                self.now(),
                p,
                Delivery::Stream {
                    stream: id,
                    event: StreamEvent::Connected,
                },
            );
        }
        // Both directions may have queued data while connecting.
        self.pump(id, true);
        self.pump(id, false);
    }

    fn handle_rst(&mut self, id: StreamId, from_initiator: bool) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        let was = st.phase;
        st.phase = Phase::Closed;
        let victim = st.side(!from_initiator);
        let (proc, delivered) = (victim.proc, victim.delivered_closed);
        if let Some(p) = proc {
            if !delivered {
                let event = if was == Phase::SynSent {
                    StreamEvent::ConnectFailed
                } else {
                    StreamEvent::Closed
                };
                self.schedule_delivery(self.now(), p, Delivery::Stream { stream: id, event });
            }
        }
        if let Some(slot) = self.streams.get_mut(id.index()) {
            *slot = None;
        }
    }

    fn handle_data(&mut self, id: StreamId, from_initiator: bool, seq: u64, bytes: Payload) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase != Phase::Established {
            return;
        }
        let rx_initiator = !from_initiator;
        let end = seq + bytes.len() as u64;
        let mut deliveries: Vec<Payload> = Vec::new();
        let mut rx_proc = None;
        {
            let rx = st.side_mut(rx_initiator);
            if end > rx.recv_next {
                if seq <= rx.recv_next {
                    // In-order (possibly with an already-received prefix).
                    // Each contiguous piece stays a view of its wire frame;
                    // reassembly emits several Data events instead of one
                    // concatenated copy.
                    let skip = (rx.recv_next - seq) as usize;
                    deliveries.push(bytes.slice(skip..bytes.len()));
                    rx.recv_next = end;
                    // Drain contiguous out-of-order segments.
                    while let Some((&s, _)) = rx.ooo.iter().next() {
                        if s > rx.recv_next {
                            break;
                        }
                        let (s, chunk) = rx.ooo.pop_first().expect("peeked above");
                        let chunk_end = s + chunk.len() as u64;
                        if chunk_end > rx.recv_next {
                            let skip = (rx.recv_next - s) as usize;
                            deliveries.push(chunk.slice(skip..chunk.len()));
                            rx.recv_next = chunk_end;
                        }
                    }
                    rx_proc = rx.proc;
                } else {
                    rx.ooo.insert(seq, bytes);
                    self.trace.bump("stream.out_of_order", 1);
                }
            }
        }
        if let Some(p) = rx_proc {
            for deliver in deliveries {
                self.schedule_delivery(
                    self.now(),
                    p,
                    Delivery::Stream {
                        stream: id,
                        event: StreamEvent::Data(deliver),
                    },
                );
            }
        }
        self.send_ack(id, rx_initiator);
        self.check_fin_delivery(id, rx_initiator);
    }

    /// Sends a cumulative ACK from the given side, deferred past the
    /// receiving process's modeled CPU time. A busy receiver therefore
    /// stops acknowledging, the sender's window fills, and backpressure
    /// propagates — the moral equivalent of a TCP receive window.
    fn send_ack(&mut self, id: StreamId, rx_initiator: bool) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        let proc = st.side(rx_initiator).proc;
        if let Some(p) = proc {
            if self.emit_time(p) > self.now() {
                self.emit_or_defer(
                    p,
                    crate::world::EmitAction::StreamAck {
                        stream: id,
                        rx_initiator,
                    },
                );
                return;
            }
        }
        self.send_ack_now(id, rx_initiator);
    }

    /// Sends a cumulative ACK immediately. ACK frames occupy the medium
    /// like any other frame.
    pub(crate) fn send_ack_now(&mut self, id: StreamId, rx_initiator: bool) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        let segment = st.segment;
        let rx = st.side(rx_initiator);
        let mut ack = rx.recv_next;
        // FIN consumes one sequence number once fully received.
        if rx.peer_fin_seq == Some(rx.recv_next) {
            ack += 1;
        }
        let (src_node, dst_node) = (rx.node, st.side(!rx_initiator).node);
        self.trace.bump("stream.acks", 1);
        self.transmit_stream_frame(
            segment,
            src_node,
            dst_node,
            StreamFrame {
                stream: id,
                from_initiator: rx_initiator,
                kind: StreamFrameKind::Ack { ack },
            },
            0,
        );
    }

    fn handle_ack(&mut self, id: StreamId, from_initiator: bool, ack: u64) {
        let capacity = self.stream_send_capacity;
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase != Phase::Established {
            return;
        }
        let tx_initiator = !from_initiator;
        let tx = st.side_mut(tx_initiator);
        let data_ack = ack.min(tx.next_seq);
        if data_ack > tx.base_seq {
            let n = (data_ack - tx.base_seq) as usize;
            tx.send_buf.advance(n);
            tx.base_seq = data_ack;
            tx.rto = RTO_INITIAL;
        }
        if tx.fin_sent && ack > tx.next_seq {
            tx.fin_acked = true;
        }
        // Re-arm or disarm the retransmission timer.
        tx.rto_epoch += 1;
        let outstanding = tx.in_flight() > 0 || (tx.fin_sent && !tx.fin_acked);
        let emit_writable = tx.was_full && tx.send_buf.len() <= capacity / 2;
        if emit_writable {
            tx.was_full = false;
        }
        let proc = tx.proc;
        if outstanding {
            tx.rto_armed = true;
            let (epoch, rto) = (tx.rto_epoch, tx.rto);
            let at = self.now() + rto;
            self.schedule(
                at,
                EventKind::StreamRto {
                    stream: id,
                    from_initiator: tx_initiator,
                    epoch,
                },
            );
        } else {
            tx.rto_armed = false;
        }
        if emit_writable {
            if let Some(p) = proc {
                self.schedule_delivery(
                    self.now(),
                    p,
                    Delivery::Stream {
                        stream: id,
                        event: StreamEvent::Writable,
                    },
                );
            }
        }
        self.pump(id, tx_initiator);
        self.free_if_done(id);
    }

    fn handle_fin(&mut self, id: StreamId, from_initiator: bool, seq: u64) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        if st.phase != Phase::Established {
            return;
        }
        let rx_initiator = !from_initiator;
        st.side_mut(rx_initiator).peer_fin_seq = Some(seq);
        self.send_ack(id, rx_initiator);
        self.check_fin_delivery(id, rx_initiator);
    }

    /// Delivers `Closed` to the receiving side once all data preceding the
    /// peer's FIN has been delivered.
    fn check_fin_delivery(&mut self, id: StreamId, rx_initiator: bool) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        let rx = st.side_mut(rx_initiator);
        if let Some(fin_seq) = rx.peer_fin_seq {
            if rx.recv_next >= fin_seq && !rx.delivered_closed {
                rx.delivered_closed = true;
                let proc = rx.proc;
                if let Some(p) = proc {
                    self.schedule_delivery(
                        self.now(),
                        p,
                        Delivery::Stream {
                            stream: id,
                            event: StreamEvent::Closed,
                        },
                    );
                }
            }
        }
        self.free_if_done(id);
    }

    /// Frees the stream slot once both directions have shut down cleanly.
    fn free_if_done(&mut self, id: StreamId) {
        let Some(st) = self.stream_state(id) else {
            return;
        };
        let done = match st.phase {
            Phase::Closed => true,
            Phase::Established => st.sides.iter().all(|s| {
                (s.fin_sent && s.fin_acked && s.all_sent_and_acked()) && s.delivered_closed
            }),
            Phase::SynSent => false,
        };
        if done {
            if let Some(slot) = self.streams.get_mut(id.index()) {
                *slot = None;
            }
        }
    }

    /// Tears down every stream a removed process participated in; peers
    /// observe `Closed` (or `ConnectFailed` while connecting) after one
    /// segment latency, modeling an OS-generated RST.
    pub(crate) fn reset_streams_of(&mut self, proc: ProcId) {
        let ids: Vec<StreamId> = self
            .streams
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .and_then(|st| st.side_of(proc).map(|_| StreamId(i as u32)))
            })
            .collect();
        for id in ids {
            let Some(st) = self.stream_state(id) else {
                continue;
            };
            let initiator = st.side_of(proc).expect("filtered above");
            let was = st.phase;
            st.phase = Phase::Closed;
            let segment = st.segment;
            let latency = self.segments[segment.index()].config.latency;
            let st = self.stream_state(id).expect("still present");
            let peer = st.side(!initiator);
            let (peer_proc, delivered) = (peer.proc, peer.delivered_closed);
            if let Some(p) = peer_proc {
                if p != proc && !delivered {
                    let event = if was == Phase::SynSent {
                        StreamEvent::ConnectFailed
                    } else {
                        StreamEvent::Closed
                    };
                    let at = self.now() + latency;
                    self.schedule_delivery(at, p, Delivery::Stream { stream: id, event });
                }
            }
            if let Some(slot) = self.streams.get_mut(id.index()) {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Ctx;
    use crate::medium::SegmentConfig;
    use crate::process::{Datagram, Process};
    use crate::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Sink {
        received: Rc<RefCell<Vec<u8>>>,
        closed: Rc<RefCell<bool>>,
    }
    impl Process for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.listen(80).unwrap();
        }
        fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
            match ev {
                StreamEvent::Data(d) => self.received.borrow_mut().extend(d),
                StreamEvent::Closed => *self.closed.borrow_mut() = true,
                _ => {}
            }
        }
    }

    struct BulkSender {
        target: Addr,
        total: usize,
        sent: usize,
        stream: Option<StreamId>,
    }
    impl BulkSender {
        fn pump_app(&mut self, ctx: &mut Ctx<'_>) {
            let stream = self.stream.expect("connected");
            while self.sent < self.total {
                let n = (self.total - self.sent).min(8192);
                let chunk = vec![(self.sent % 251) as u8; n];
                match ctx.stream_send(stream, chunk) {
                    Ok(()) => self.sent += n,
                    Err(SimError::StreamBufferFull(_)) => break,
                    Err(e) => panic!("send failed: {e}"),
                }
            }
            if self.sent >= self.total {
                ctx.stream_close(stream);
            }
        }
    }
    impl Process for BulkSender {
        fn name(&self) -> &str {
            "bulk-sender"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.stream = Some(ctx.connect(self.target).unwrap());
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
            match ev {
                StreamEvent::Connected | StreamEvent::Writable => self.pump_app(ctx),
                _ => {}
            }
        }
    }

    fn bulk_world(loss: f64, total: usize) -> (Vec<u8>, bool, SimTime, World) {
        let mut w = World::new(99);
        let seg = w.add_segment(SegmentConfig::ethernet_10mbps_hub().with_loss(loss));
        let a = w.add_node("a");
        let b = w.add_node("b");
        w.attach(a, seg).unwrap();
        w.attach(b, seg).unwrap();
        let received = Rc::new(RefCell::new(Vec::new()));
        let closed = Rc::new(RefCell::new(false));
        w.add_process(
            b,
            Box::new(Sink {
                received: Rc::clone(&received),
                closed: Rc::clone(&closed),
            }),
        );
        w.add_process(
            a,
            Box::new(BulkSender {
                target: Addr::new(b, 80),
                total,
                sent: 0,
                stream: None,
            }),
        );
        w.run_until(SimTime::from_secs(120));
        let r = received.borrow().clone();
        let c = *closed.borrow();
        let now = w.now();
        (r, c, now, w)
    }

    #[test]
    fn bulk_transfer_is_complete_and_ordered() {
        let total = 200_000;
        let (received, closed, _, _) = bulk_world(0.0, total);
        assert_eq!(received.len(), total);
        assert!(closed, "receiver saw Closed after FIN");
        for (i, byte) in received.iter().enumerate() {
            // Chunks of 8192 start at multiples of 8192 with value (start % 251).
            let expected = ((i / 8192) * 8192 % 251) as u8;
            assert_eq!(*byte, expected, "byte {i}");
        }
    }

    #[test]
    fn bulk_transfer_survives_loss() {
        let total = 60_000;
        let (received, closed, _, w) = bulk_world(0.05, total);
        assert_eq!(received.len(), total);
        assert!(closed);
        assert!(
            w.trace().counter("stream.rto") > 0,
            "loss should trigger RTOs"
        );
    }

    #[test]
    fn goodput_on_10mbps_hub_is_in_tcp_range() {
        // 1 MB one-way bulk transfer on the paper's hub: goodput should be
        // well below line rate (overhead + half-duplex acks) but above half.
        let total = 1_000_000;
        let (received, _, _, w) = bulk_world(0.0, total);
        assert_eq!(received.len(), total);
        // Find completion time via segment busy stats instead: use now()
        // from a fresh run bounded by the transfer itself.
        let stats = w.segment_stats(SegmentId(0)).unwrap();
        assert!(
            stats.frames > 600,
            "expect hundreds of frames, got {}",
            stats.frames
        );
    }

    #[test]
    fn connect_to_missing_listener_fails() {
        struct TryConnect {
            target: Addr,
            outcome: Rc<RefCell<Option<bool>>>,
        }
        impl Process for TryConnect {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.target).unwrap();
            }
            fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
                match ev {
                    StreamEvent::Connected => *self.outcome.borrow_mut() = Some(true),
                    StreamEvent::ConnectFailed => *self.outcome.borrow_mut() = Some(false),
                    _ => {}
                }
            }
        }
        let mut w = World::new(5);
        let seg = w.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let a = w.add_node("a");
        let b = w.add_node("b");
        w.attach(a, seg).unwrap();
        w.attach(b, seg).unwrap();
        let outcome = Rc::new(RefCell::new(None));
        w.add_process(
            a,
            Box::new(TryConnect {
                target: Addr::new(b, 4444),
                outcome: Rc::clone(&outcome),
            }),
        );
        w.run_until(SimTime::from_secs(5));
        assert_eq!(*outcome.borrow(), Some(false));
    }

    #[test]
    fn peer_removal_delivers_closed() {
        struct Holder {
            target: Addr,
            closed: Rc<RefCell<bool>>,
        }
        impl Process for Holder {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.connect(self.target).unwrap();
            }
            fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
                if matches!(ev, StreamEvent::Closed) {
                    *self.closed.borrow_mut() = true;
                }
            }
        }
        let mut w = World::new(5);
        let seg = w.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let a = w.add_node("a");
        let b = w.add_node("b");
        w.attach(a, seg).unwrap();
        w.attach(b, seg).unwrap();
        let sink = w.add_process(b, Box::new(Sink::default()));
        let closed = Rc::new(RefCell::new(false));
        w.add_process(
            a,
            Box::new(Holder {
                target: Addr::new(b, 80),
                closed: Rc::clone(&closed),
            }),
        );
        w.run_until(SimTime::from_secs(1));
        w.remove_process(sink).unwrap();
        w.run_until(SimTime::from_secs(2));
        assert!(*closed.borrow());
    }

    // Silence an unused-field warning path: Datagram isn't used here.
    #[allow(dead_code)]
    fn _unused(_: Datagram) {}
}
