//! # simnet — deterministic discrete-event network simulator
//!
//! `simnet` is the substrate the uMiddle reproduction runs on. It replaces
//! the paper's physical testbed (three laptops on a 10 Mbps Ethernet hub,
//! a Bluetooth piconet, mote radios) with a deterministic simulation:
//!
//! * **Nodes** are simulated hosts running **processes** (actors
//!   implementing [`Process`]).
//! * **Segments** are shared media ([`SegmentConfig`]) — an Ethernet hub,
//!   a Bluetooth piconet, a mote radio channel — with bandwidth, latency,
//!   per-frame overhead, optional half-duplex contention and loss.
//! * **Datagrams** and **multicast** model UDP/SSDP-style traffic;
//!   **streams** ([`StreamEvent`]) model TCP connections including ACK
//!   traffic that competes for the medium.
//! * **CPU cost** is modeled with [`Ctx::busy`], deferring event delivery
//!   to a "computing" process.
//!
//! Runs are a pure function of the seed: the event queue is totally
//! ordered by `(time, insertion sequence)` and all randomness flows from
//! one seeded RNG.
//!
//! # Examples
//!
//! A two-node ping over a simulated 10 Mbps hub:
//!
//! ```
//! use simnet::{Addr, Ctx, Datagram, Process, SegmentConfig, SimTime, World};
//!
//! struct Echo;
//! impl Process for Echo {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.bind(7).unwrap();
//!     }
//!     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
//!         ctx.send_to(7, d.src, d.data).unwrap();
//!     }
//! }
//!
//! struct Ping { target: Addr }
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.bind(9).unwrap();
//!         ctx.send_to(9, self.target, b"hi".to_vec()).unwrap();
//!     }
//!     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, _d: Datagram) {
//!         ctx.trace(format!("pong after {}", ctx.now()));
//!     }
//! }
//!
//! # fn main() -> Result<(), simnet::SimError> {
//! let mut world = World::new(42);
//! let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
//! let a = world.add_node("a");
//! let b = world.add_node("b");
//! world.attach(a, hub)?;
//! world.attach(b, hub)?;
//! world.add_process(b, Box::new(Echo));
//! world.add_process(a, Box::new(Ping { target: Addr::new(b, 7) }));
//! world.run_until(SimTime::from_secs(1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
mod ctx;
mod error;
pub mod export;
pub mod health;
pub mod incident;
mod medium;
pub mod payload;
mod process;
pub mod rng;
pub mod shard;
pub mod span;
mod stream;
mod time;
pub mod timeseries;
mod trace;
pub mod wheel;
mod world;

pub use attrib::{AttributionPlane, AttributionReport, ComponentTimes};
pub use ctx::{Ctx, TimerHandle};
pub use error::{SimError, SimResult};
pub use export::{diff_attribution, folded_stacks, open_metrics, perfetto_trace_json};
pub use health::{
    AlertState, AlertStatus, AlertTransition, BurnRateRule, HealthReport, Objective, SloEngine,
    SloKind, TelemetryConfig,
};
pub use incident::{IncidentBundle, IncidentConfig, TopologyDigest, TriggerKind};
pub use medium::{schedule_tx, SegmentConfig, TxTiming};
pub use payload::{ChunkQueue, Payload, PayloadBuilder, PayloadStats};
pub use process::{
    Addr, Datagram, LocalMessage, NodeId, ProcId, Process, SegmentId, StreamEvent, StreamId,
};
pub use rng::{check_cases, SimRng};
pub use shard::{run_sharded, ShardInfo, ShardPanicIncident, ShardPlan, ShardReport, ShardRun};
pub use span::{
    merge_shard_spans, CriticalPath, PathExpectation, SpanNode, SpanTree, StageCost, TraceAssert,
};
pub use time::{SimDuration, SimTime};
pub use timeseries::{SamplerConfig, Telemetry, TelemetryWindow};
pub use trace::{
    Histogram, Metrics, MetricsSnapshot, SegmentStats, SpanId, SpanRecord, Trace, TraceEvent,
};
pub use wheel::{ReferenceHeap, TimerWheel};
pub use world::{BatchPolicy, CrossMessage, ShardConfig, World};
