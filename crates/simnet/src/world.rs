//! The simulation world: nodes, segments, processes, and the deterministic
//! event loop.

use std::collections::{HashMap, HashSet};

use crate::ctx::Ctx;
use crate::error::{SimError, SimResult};
use crate::health::{AlertState, HealthReport, SegmentSample, SloEngine, TelemetryConfig};
use crate::incident::{IncidentBundle, IncidentConfig, TopologyDigest, TriggerKind};
use crate::medium::{schedule_tx, SegmentConfig};
use crate::payload::Payload;
use crate::process::{Addr, Datagram, LocalMessage, NodeId, ProcId, Process, SegmentId, StreamId};
use crate::stream::{StreamFrame, StreamState};
use crate::time::{SimDuration, SimTime};
use crate::timeseries::{Telemetry, TelemetryWindow};
use crate::trace::{Histogram, SegmentStats, Trace};
use crate::wheel::TimerWheel;

/// First ephemeral port handed out by [`Ctx::ephemeral_port`].
const EPHEMERAL_BASE: u16 = 49_152;

/// Port base for the per-shard gateway node: a cross-shard message
/// injected into this world arrives as a datagram whose source address
/// is the gateway node at `SHARD_GW_PORT_BASE + src_shard`, so a
/// receiver can tell shards apart without any cross-world id sharing.
pub(crate) const SHARD_GW_PORT_BASE: u16 = 50_000;

/// Identity and synchronization bounds of one shard in a sharded run
/// (see [`crate::shard`] for the conductor that drives them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// This shard's id, `0..shards`.
    pub shard: u16,
    /// Total shard count in the run.
    pub shards: u16,
    /// Conservative lookahead: the window length each shard executes
    /// between barriers. Must be positive.
    pub lookahead: SimDuration,
    /// Modeled latency of the inter-shard link: every cross-shard
    /// message arrives exactly this far after its emit time. Must be at
    /// least `lookahead`, otherwise a message could land inside a
    /// window a sibling shard has already executed.
    pub link_latency: SimDuration,
}

impl ShardConfig {
    /// Validates the invariants the conservative-lookahead protocol
    /// rests on. Called by [`World::configure_shard`] and by the
    /// conductor before any thread spawns, so a bad bound is a build
    /// error with a clear message, never a silent causality violation.
    ///
    /// # Errors
    ///
    /// [`SimError::ShardUnknown`] for an out-of-range id or zero shard
    /// count; [`SimError::ShardLookahead`] when the lookahead is zero
    /// or exceeds the cross-shard link latency.
    pub fn validate(&self) -> SimResult<()> {
        if self.shards == 0 || self.shard >= self.shards {
            return Err(SimError::ShardUnknown {
                shard: self.shard,
                shards: self.shards,
            });
        }
        if self.lookahead.is_zero() || self.link_latency < self.lookahead {
            return Err(SimError::ShardLookahead {
                link_latency: self.link_latency,
                lookahead: self.lookahead,
            });
        }
        Ok(())
    }
}

/// A timestamped message crossing a shard boundary. `Payload` is
/// `Arc`-backed, so the message is `Send` and moving it between shard
/// threads shares the buffer without copying.
#[derive(Debug)]
pub struct CrossMessage {
    /// Arrival instant at the receiving shard (emit time plus the
    /// configured link latency — always at least one lookahead ahead).
    pub arrival: SimTime,
    /// The sending shard.
    pub src_shard: u16,
    /// Per-sender sequence number; `(arrival, src_shard, seq)` totally
    /// orders all cross traffic, which is what makes the merge at
    /// barriers deterministic regardless of thread interleaving.
    pub seq: u64,
    /// The destination shard.
    pub dst_shard: u16,
    /// The destination inlet (see [`World::register_shard_inlet`]).
    pub inlet: u16,
    /// The message bytes.
    pub data: Payload,
}

/// Per-world state of a sharded run (boxed to keep `World` small for
/// the common unsharded case; none of the unsharded hot paths touch
/// it).
struct ShardMembership {
    config: ShardConfig,
    /// Local gateway node cross-shard arrivals appear to come from.
    gateway: NodeId,
    /// Inlet id → local delivery address.
    inlets: HashMap<u16, Addr>,
    /// Outbound cross-shard messages accumulated this window; the
    /// conductor drains them at the barrier.
    outbox: Vec<CrossMessage>,
    next_seq: u64,
    /// Future cross-shard messages the conductor already holds for this
    /// world — part of the merged pending-work horizon, so the sampler
    /// and `sched.events_pending` see them even though they are not in
    /// this wheel yet.
    external_pending: u64,
    /// Wall-clock barrier wait times, recorded by the conductor and
    /// folded as `shard.barrier_stall_ns`.
    barrier_stall: Histogram,
}

pub(crate) struct NodeState {
    pub(crate) name: String,
    pub(crate) segments: Vec<SegmentId>,
    /// Bound datagram/listener ports on this node.
    pub(crate) ports: HashMap<u16, PortBinding>,
    pub(crate) next_ephemeral: u16,
    pub(crate) alive: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct PortBinding {
    pub(crate) proc: ProcId,
    pub(crate) listener: bool,
}

pub(crate) struct ProcSlot {
    pub(crate) node: NodeId,
    pub(crate) name: String,
    pub(crate) busy_until: SimTime,
    pub(crate) alive: bool,
    pub(crate) process: Option<Box<dyn Process>>,
}

pub(crate) struct SegmentState {
    pub(crate) config: SegmentConfig,
    pub(crate) nodes: Vec<NodeId>,
    pub(crate) busy_until: SimTime,
    /// Multicast group membership: group port -> member processes.
    pub(crate) groups: HashMap<u16, Vec<ProcId>>,
    pub(crate) stats: SegmentStats,
}

/// A frame in flight on a segment.
#[derive(Debug)]
pub(crate) struct Frame {
    pub(crate) src_node: NodeId,
    pub(crate) dst: FrameDst,
    pub(crate) payload: FramePayload,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameDst {
    Unicast(NodeId),
    Group(u16),
}

#[derive(Debug)]
pub(crate) enum FramePayload {
    Datagram {
        src: Addr,
        dst: Addr,
        data: Payload,
        multicast: bool,
    },
    Stream(StreamFrame),
}

/// An event deliverable to a process.
#[derive(Debug)]
pub(crate) enum Delivery {
    Start,
    Timer {
        timer_id: u64,
        token: u64,
    },
    Local {
        from: ProcId,
        msg: LocalMessage,
    },
    Datagram(Datagram),
    /// A run of datagrams that arrived for the same process at the same
    /// instant, delivered through one scheduler event (the batch plane).
    /// Items are stored last-first so delivery pops them in arrival
    /// order; a handler that models CPU time defers the unconsumed tail
    /// exactly as per-datagram delivery would have.
    DatagramBatch(Vec<Datagram>),
    Stream {
        stream: StreamId,
        event: crate::process::StreamEvent,
    },
}

/// The latency-vs-throughput knob for the dispatch batch plane.
///
/// Frames that arrive on one segment at the same virtual instant can be
/// drained into a single dispatch batch instead of one handler call per
/// event. Batching never reorders work — a batch is exactly a
/// consecutive run of the (time, seq) event order — so a batched run is
/// observationally identical to an unbatched one; the knob only trades
/// per-event dispatch overhead against the size of the work quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Upper bound on events grouped into one dispatch batch. `1`
    /// disables the batch plane entirely.
    pub max_batch: usize,
    /// When `true`, the live batch bound starts at 1, doubles toward
    /// `max_batch` under sustained same-tick frame load, and halves back
    /// toward 1 after a sustained frame-free stretch. When `false`, the
    /// bound is pinned at `max_batch`.
    pub adapt: bool,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            adapt: true,
        }
    }
}

impl BatchPolicy {
    /// A policy that disables the batch plane (every event dispatched
    /// individually, the pre-batching behavior).
    pub fn unbatched() -> BatchPolicy {
        BatchPolicy {
            max_batch: 1,
            adapt: false,
        }
    }
}

/// Consecutive frame-free ticks before an adaptive batch window halves.
/// Large enough that the timer ticks interleaved between traffic bursts
/// don't collapse the window, small enough that a genuinely idle
/// federation returns to single-event (lowest-latency) dispatch quickly.
const IDLE_TICKS_TO_SHRINK: u32 = 16;

impl std::fmt::Debug for ProcSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcSlot")
            .field("node", &self.node)
            .field("name", &self.name)
            .field("busy_until", &self.busy_until)
            .field("alive", &self.alive)
            .finish_non_exhaustive()
    }
}

pub(crate) enum EventKind {
    Deliver {
        proc: ProcId,
        delivery: Delivery,
    },
    FrameArrival {
        segment: SegmentId,
        frame: Frame,
    },
    StreamRto {
        stream: StreamId,
        from_initiator: bool,
        epoch: u64,
    },
    SynRetry {
        stream: StreamId,
        attempt: u32,
    },
    /// A deferred process output: sent from a handler while the process
    /// had accumulated modeled CPU time, executed once that time elapses.
    Emit {
        proc: ProcId,
        action: EmitAction,
    },
    /// Periodic telemetry sample (see [`World::enable_telemetry`]); the
    /// sampler re-arms itself on a fixed virtual-time grid while other
    /// work remains, and goes dormant when the queue drains so it never
    /// keeps [`World::run_until_idle`] alive on its own.
    TelemetrySample,
    /// A cross-shard message landing at its safe horizon. The receiving
    /// process is resolved at arrival time (like a frame arrival), so a
    /// binding established after injection but before arrival works.
    CrossArrival {
        src: Addr,
        dst: Addr,
        data: Payload,
    },
}

/// Deferred output actions (see [`EventKind::Emit`]).
pub(crate) enum EmitAction {
    Datagram {
        src_port: u16,
        dst: Addr,
        data: Payload,
    },
    Multicast {
        src_port: u16,
        group: u16,
        data: Payload,
    },
    StreamData {
        stream: StreamId,
        data: Payload,
    },
    StreamClose {
        stream: StreamId,
    },
    /// A deferred cumulative ACK: sent once the receiving process's
    /// modeled CPU time elapses, which applies backpressure to senders
    /// flooding a busy receiver.
    StreamAck {
        stream: StreamId,
        rx_initiator: bool,
    },
}

/// The deterministic discrete-event simulation world.
///
/// A `World` owns all nodes, network segments, processes and streams, and a
/// seeded random number generator, so a run is a pure function of the seed
/// and the process implementations.
///
/// # Examples
///
/// ```
/// use simnet::{Process, SegmentConfig, SimTime, World};
///
/// struct Quiet;
/// impl Process for Quiet {}
///
/// let mut world = World::new(7);
/// let seg = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
/// let node = world.add_node("host");
/// world.attach(node, seg)?;
/// world.add_process(node, Box::new(Quiet));
/// world.run_until(SimTime::from_secs(1));
/// assert_eq!(world.now(), SimTime::from_secs(1));
/// # Ok::<(), simnet::SimError>(())
/// ```
pub struct World {
    now: SimTime,
    queue: TimerWheel<EventKind>,
    /// Reusable buffer for same-tick event batches (see `step_batch`).
    batch: Vec<EventKind>,
    /// Events scheduled at the current tick while `step_batch` drains
    /// it; they extend the live batch instead of re-entering the wheel.
    tick_overflow: Vec<EventKind>,
    /// `true` while `step_batch` is dispatching a batch.
    in_tick_drain: bool,
    /// Total events dispatched since the world was created.
    events_processed: u64,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) procs: Vec<ProcSlot>,
    pub(crate) segments: Vec<SegmentState>,
    pub(crate) streams: Vec<Option<StreamState>>,
    pub(crate) rng: crate::rng::SimRng,
    pub(crate) trace: Trace,
    started: bool,
    next_timer_id: u64,
    cancelled_timers: HashSet<u64>,
    /// Lazily created loopback segment for same-node traffic.
    loopback: Option<SegmentId>,
    /// Upper bound on bytes queued but unsent per stream direction.
    pub(crate) stream_send_capacity: usize,
    /// Sender window: maximum unacknowledged bytes in flight.
    pub(crate) stream_window: usize,
    /// Live telemetry plane, when enabled: windowed series + SLO engine.
    telemetry: Option<Box<TelemetryPlane>>,
    /// `true` while a `TelemetrySample` event is in the queue.
    sampler_armed: bool,
    /// Scheduler lag (pop time minus due time), recorded allocation-free
    /// per queue advance and folded into the registry as `sched.lag_ns`.
    sched_lag: Histogram,
    /// The configured batch-plane knob (see [`BatchPolicy`]).
    batch_policy: BatchPolicy,
    /// Live adaptive batch bound: 1..=`batch_policy.max_batch`.
    batch_window: usize,
    /// Consecutive frame-free ticks; the window shrinks only after
    /// [`IDLE_TICKS_TO_SHRINK`] of them, so timer ticks interleaved
    /// between bursts don't collapse a window the load still needs.
    idle_ticks: u32,
    /// Sizes of dispatched frame batches, folded as `sched.batch_size`
    /// (bucket bounds are nanosecond-labelled but the recorded values
    /// are counts; min/mean/max are the meaningful fields).
    batch_sizes: Histogram,
    /// Reusable scratch for grouping same-segment frame runs.
    frame_batch: Vec<Frame>,
    /// Reusable scratch for grouping same-process datagram runs.
    dgram_batch: Vec<Datagram>,
    /// Shard identity when this world is one shard of a sharded run.
    shard: Option<Box<ShardMembership>>,
    /// The incident trigger plane, when the flight recorder is on.
    incident: Option<Box<IncidentPlane>>,
    /// The continuous latency-attribution profiler, when enabled.
    attrib: Option<Box<crate::attrib::AttributionPlane>>,
}

/// The world's in-run telemetry state (boxed to keep `World` small for
/// the common telemetry-off case).
struct TelemetryPlane {
    store: Telemetry,
    engine: SloEngine,
    liveness_timeout: SimDuration,
}

/// Trigger-plane state for the always-on flight recorder (see
/// [`crate::incident`]): captured bundles plus the watermarks that
/// detect *new* trigger conditions at each telemetry sample.
struct IncidentPlane {
    config: IncidentConfig,
    bundles: Vec<IncidentBundle>,
    /// SLO transitions already examined (index into the engine's log).
    seen_transitions: usize,
    /// The doctor's last ranked offender list, as `kind:name` keys.
    last_rank: Vec<String>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("procs", &self.procs.len())
            .field("segments", &self.segments.len())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl World {
    /// Creates an empty world with a deterministic RNG seed.
    pub fn new(seed: u64) -> World {
        World {
            now: SimTime::ZERO,
            queue: TimerWheel::new(),
            batch: Vec::new(),
            tick_overflow: Vec::new(),
            in_tick_drain: false,
            events_processed: 0,
            nodes: Vec::new(),
            procs: Vec::new(),
            segments: Vec::new(),
            streams: Vec::new(),
            rng: crate::rng::SimRng::seed_from_u64(seed),
            trace: Trace::default(),
            started: false,
            next_timer_id: 0,
            cancelled_timers: HashSet::new(),
            loopback: None,
            stream_send_capacity: 256 * 1024,
            stream_window: 64 * 1024,
            telemetry: None,
            sampler_armed: false,
            sched_lag: Histogram::default(),
            batch_policy: BatchPolicy::default(),
            batch_window: 1,
            idle_ticks: 0,
            batch_sizes: Histogram::default(),
            frame_batch: Vec::new(),
            dgram_batch: Vec::new(),
            shard: None,
            incident: None,
            attrib: None,
        }
    }

    /// Sets the dispatch batch-plane knob. The live adaptive bound
    /// resets: to 1 for an adapting policy, to `max_batch` for a pinned
    /// one. A `max_batch` of 0 is treated as 1 (batching off).
    pub fn set_batch_policy(&mut self, policy: BatchPolicy) {
        let max = policy.max_batch.max(1);
        self.batch_policy = BatchPolicy {
            max_batch: max,
            adapt: policy.adapt,
        };
        self.batch_window = if policy.adapt { 1 } else { max };
        self.idle_ticks = 0;
    }

    /// The configured batch-plane knob.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.batch_policy
    }

    /// The live batch bound: how many same-instant events the dispatch
    /// plane currently groups per handler invocation. Adapts between 1
    /// and [`BatchPolicy::max_batch`] when the policy adapts; layered
    /// runtimes use the same bound so the whole stack follows one knob.
    pub fn dispatch_batch_limit(&self) -> usize {
        self.batch_window
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the trace (events and counters).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace, e.g. to disable event logging for a
    /// long benchmark run.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Adds a network segment and returns its id.
    pub fn add_segment(&mut self, config: SegmentConfig) -> SegmentId {
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(SegmentState {
            config,
            nodes: Vec::new(),
            busy_until: SimTime::ZERO,
            groups: HashMap::new(),
            stats: SegmentStats::default(),
        });
        id
    }

    /// Adds a node (simulated host) and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeState {
            name: name.into(),
            segments: Vec::new(),
            ports: HashMap::new(),
            next_ephemeral: EPHEMERAL_BASE,
            alive: true,
        });
        id
    }

    /// Attaches a node to a segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SegmentFull`] if the segment's technology bounds
    /// membership (e.g. a Bluetooth piconet) and the bound is reached, and
    /// [`SimError::UnknownNode`]/[`SimError::UnknownSegment`] for invalid
    /// ids.
    pub fn attach(&mut self, node: NodeId, segment: SegmentId) -> SimResult<()> {
        if node.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(node));
        }
        let seg = self
            .segments
            .get_mut(segment.index())
            .ok_or(SimError::UnknownSegment(segment))?;
        if let Some(max) = seg.config.max_nodes {
            if seg.nodes.len() as u32 >= max {
                return Err(SimError::SegmentFull(segment));
            }
        }
        if !seg.nodes.contains(&node) {
            seg.nodes.push(node);
            self.nodes[node.index()].segments.push(segment);
        }
        Ok(())
    }

    /// Detaches a node from a segment (e.g. a Bluetooth device leaving
    /// range). In-flight frames already scheduled still arrive.
    pub fn detach(&mut self, node: NodeId, segment: SegmentId) -> SimResult<()> {
        let seg = self
            .segments
            .get_mut(segment.index())
            .ok_or(SimError::UnknownSegment(segment))?;
        seg.nodes.retain(|n| *n != node);
        if let Some(n) = self.nodes.get_mut(node.index()) {
            n.segments.retain(|s| *s != segment);
        }
        Ok(())
    }

    /// Adds a process to a node. Its [`Process::on_start`] runs at the
    /// current virtual time once the world is (or starts) running.
    pub fn add_process(&mut self, node: NodeId, process: Box<dyn Process>) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        let name = process.name().to_owned();
        self.procs.push(ProcSlot {
            node,
            name,
            busy_until: SimTime::ZERO,
            alive: true,
            process: Some(process),
        });
        self.schedule(
            self.now,
            EventKind::Deliver {
                proc: id,
                delivery: Delivery::Start,
            },
        );
        id
    }

    /// Removes a process: runs [`Process::on_stop`], releases its ports,
    /// resets its streams, and drops it. Used for failure injection.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] if the process does not exist
    /// or was already removed.
    pub fn remove_process(&mut self, proc: ProcId) -> SimResult<()> {
        let slot = self
            .procs
            .get_mut(proc.index())
            .ok_or(SimError::UnknownProcess(proc))?;
        if !slot.alive {
            return Err(SimError::UnknownProcess(proc));
        }
        // Run the stop hook while the slot is still alive.
        self.invoke(proc, |p, ctx| p.on_stop(ctx));
        let slot = &mut self.procs[proc.index()];
        slot.alive = false;
        slot.process = None;
        let node = slot.node;
        self.nodes[node.index()]
            .ports
            .retain(|_, binding| binding.proc != proc);
        for seg in &mut self.segments {
            for members in seg.groups.values_mut() {
                members.retain(|p| *p != proc);
            }
        }
        self.reset_streams_of(proc);
        Ok(())
    }

    /// Returns the node a process runs on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] for invalid or removed ids.
    pub fn node_of(&self, proc: ProcId) -> SimResult<NodeId> {
        self.procs
            .get(proc.index())
            .filter(|s| s.alive)
            .map(|s| s.node)
            .ok_or(SimError::UnknownProcess(proc))
    }

    /// Returns a node's name.
    pub fn node_name(&self, node: NodeId) -> SimResult<&str> {
        self.nodes
            .get(node.index())
            .map(|n| n.name.as_str())
            .ok_or(SimError::UnknownNode(node))
    }

    /// Binds `port` on the process's node for datagram reception.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PortInUse`] if another live process holds it.
    pub fn bind(&mut self, proc: ProcId, port: u16) -> SimResult<()> {
        self.bind_inner(proc, port, false)
    }

    /// Binds `port` as a stream listener for the process.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PortInUse`] if another live process holds it.
    pub fn listen(&mut self, proc: ProcId, port: u16) -> SimResult<()> {
        self.bind_inner(proc, port, true)
    }

    pub(crate) fn bind_inner(&mut self, proc: ProcId, port: u16, listener: bool) -> SimResult<()> {
        let node = self.node_of(proc)?;
        let ports = &mut self.nodes[node.index()].ports;
        if let Some(existing) = ports.get(&port) {
            if existing.proc != proc {
                return Err(SimError::PortInUse { node, port });
            }
        }
        ports.insert(port, PortBinding { proc, listener });
        Ok(())
    }

    /// Joins the process to multicast group `group` on every segment its
    /// node is attached to at this moment.
    pub fn join_group(&mut self, proc: ProcId, group: u16) -> SimResult<()> {
        let node = self.node_of(proc)?;
        // Index-based walk: the membership update borrows `self.segments`
        // mutably, so we avoid cloning the node's segment list.
        for i in 0..self.nodes[node.index()].segments.len() {
            let seg = self.nodes[node.index()].segments[i];
            let members = self.segments[seg.index()].groups.entry(group).or_default();
            if !members.contains(&proc) {
                members.push(proc);
            }
        }
        Ok(())
    }

    /// Removes the process from multicast group `group` everywhere.
    pub fn leave_group(&mut self, proc: ProcId, group: u16) -> SimResult<()> {
        self.node_of(proc)?;
        for seg in &mut self.segments {
            if let Some(members) = seg.groups.get_mut(&group) {
                members.retain(|p| *p != proc);
            }
        }
        Ok(())
    }

    /// Statistics for a segment.
    pub fn segment_stats(&self, segment: SegmentId) -> SimResult<SegmentStats> {
        self.segments
            .get(segment.index())
            .map(|s| s.stats)
            .ok_or(SimError::UnknownSegment(segment))
    }

    /// Changes a segment's frame-loss probability (failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn set_segment_loss(&mut self, segment: SegmentId, loss: f64) -> SimResult<()> {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        self.segments
            .get_mut(segment.index())
            .map(|s| s.config.loss = loss)
            .ok_or(SimError::UnknownSegment(segment))
    }

    /// Sets the per-direction stream sender window (max unacked bytes).
    pub fn set_stream_window(&mut self, bytes: usize) {
        self.stream_window = bytes.max(1);
    }

    // ------------------------------------------------------------------
    // Telemetry plane
    // ------------------------------------------------------------------

    /// Turns on the in-run telemetry plane: a timer-wheel-driven sampler
    /// that folds per-interval deltas of every metric into bounded ring
    /// windows ([`crate::timeseries`]) and re-evaluates the configured
    /// SLOs after every sample ([`crate::health`]). The enable pass
    /// takes a baseline sample (no deltas), so counters accumulated
    /// before this call never show up as one giant first interval.
    ///
    /// Calling it again replaces the plane (new config, empty windows).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        let mut store = Telemetry::new(config.sampler);
        self.fold_sched_metrics();
        store.sample(self.now, self.trace.metrics());
        self.telemetry = Some(Box::new(TelemetryPlane {
            store,
            engine: SloEngine::new(config.objectives),
            liveness_timeout: config.liveness_timeout,
        }));
        self.sampler_armed = false;
        self.arm_sampler();
    }

    /// Turns on the always-on flight recorder and its trigger plane:
    /// the trace switches to overwrite-oldest ring journals
    /// ([`Trace::enable_flight_recorder`]), and every telemetry sample
    /// checks for incident triggers — a new ok→firing SLO transition or
    /// a change in the doctor's ranked offender list — snapshotting a
    /// deterministic [`IncidentBundle`] for each (see
    /// [`crate::incident`]). Shard panics are captured by the sharded
    /// conductor through the same plane.
    ///
    /// SLO/doctor triggers need [`World::enable_telemetry`] as well;
    /// without it the recorder still bounds trace loss and captures
    /// shard-panic bundles, but nothing else trips.
    pub fn enable_flight_recorder(&mut self, config: IncidentConfig) {
        self.trace.enable_flight_recorder(config.ring_capacity);
        self.incident = Some(Box::new(IncidentPlane {
            config,
            bundles: Vec::new(),
            seen_transitions: 0,
            last_rank: Vec::new(),
        }));
    }

    /// Whether [`World::enable_flight_recorder`] is on.
    pub fn flight_recorder_enabled(&self) -> bool {
        self.incident.is_some()
    }

    /// Turns on the continuous latency-attribution profiler
    /// ([`crate::attrib`]): every telemetry sample incrementally folds
    /// the span journal into per-component self/queue/barrier time
    /// totals, each with an exemplar corr linking back to a trace
    /// journey. The continuous cadence needs
    /// [`World::enable_telemetry`]; without it the fold only advances
    /// when [`World::attribution_report`] is called. Calling it again
    /// resets the profiler.
    pub fn enable_attribution(&mut self) {
        self.attrib = Some(Box::new(crate::attrib::AttributionPlane::new()));
    }

    /// Whether [`World::enable_attribution`] is on.
    pub fn attribution_enabled(&self) -> bool {
        self.attrib.is_some()
    }

    /// Advances the attribution fold over everything begun or closed in
    /// the span journal since the last fold. No-op when attribution is
    /// off.
    fn fold_attribution(&mut self) {
        let Some(plane) = self.attrib.as_mut() else {
            return;
        };
        let barrier = self
            .shard
            .as_ref()
            .map(|m| (m.config.shard, m.barrier_stall.sum_ns()));
        plane.fold(self.trace.spans(), barrier);
    }

    /// Catches the attribution fold up to right now and snapshots it.
    /// `None` when [`World::enable_attribution`] is off.
    pub fn attribution_report(&mut self) -> Option<crate::AttributionReport> {
        self.attrib.as_ref()?;
        self.fold_attribution();
        let now = self.now;
        self.attrib.as_ref().map(|p| p.report(now))
    }

    /// The attribution aggregates as of the last fold (the most recent
    /// telemetry sample), without advancing the fold — this is what the
    /// doctor reads, since it only holds `&self`. `None` when
    /// attribution is off.
    pub fn attribution(&self) -> Option<crate::AttributionReport> {
        self.attrib.as_ref().map(|p| p.report(self.now))
    }

    /// The incident bundles captured so far, in trigger order.
    pub fn incidents(&self) -> &[IncidentBundle] {
        self.incident.as_ref().map_or(&[], |p| &p.bundles)
    }

    /// Snapshots an incident bundle right now: the trace window around
    /// this instant, the telemetry window, the SLO history, the doctor
    /// report, and the topology digest. Called by the trigger plane;
    /// also public so tests and tools can cut a bundle on demand.
    ///
    /// Every trigger bumps the `incident.triggers` counter; bundles past
    /// [`IncidentConfig::max_bundles`] are counted but not stored. A
    /// no-op when the flight recorder is off.
    pub fn capture_incident(&mut self, kind: TriggerKind, detail: String) {
        let Some(plane) = self.incident.as_ref() else {
            return;
        };
        let config = plane.config;
        self.trace.metrics_mut().counter_add("incident.triggers", 1);
        if self.incident.as_ref().expect("checked above").bundles.len() >= config.max_bundles {
            return;
        }
        let since = SimTime::from_nanos(
            self.now
                .as_nanos()
                .saturating_sub(config.trace_window.as_nanos()),
        );
        let spans: Vec<crate::SpanRecord> = self
            .trace
            .spans()
            .iter()
            .filter(|s| s.effective_end() >= since)
            .cloned()
            .collect();
        let telemetry_json = self.telemetry_window(None).map(|w| w.to_json());
        let doctor_json = self.doctor().map(|r| r.to_json());
        let transitions = self
            .slo_engine()
            .map(|e| e.transitions().to_vec())
            .unwrap_or_default();
        let topology = TopologyDigest::new(
            self.nodes.iter().map(|n| n.name.as_str()),
            self.procs.iter().map(|p| p.name.as_str()),
            self.segments
                .iter()
                .enumerate()
                .map(|(i, s)| format!("seg{i}:{}", s.config.name))
                .collect(),
        );
        let shard = self.shard.as_ref().map(|m| m.config.shard);
        let ring_overwrites = self.trace.ring_overwrites();
        let inc = self.incident.as_mut().expect("checked above");
        inc.bundles.push(IncidentBundle {
            kind,
            detail,
            at: self.now,
            seq: inc.bundles.len() as u64,
            shard,
            spans,
            ring_overwrites,
            telemetry_json,
            transitions,
            doctor_json,
            topology,
        });
    }

    /// Checks the trigger conditions after a telemetry sample: new
    /// firing transitions since the last check, and any change in the
    /// doctor's ranked offender list. A recovery to an *empty* offender
    /// list updates the watermark silently (so a re-emergence triggers
    /// again) without cutting a bundle.
    fn detect_incident_triggers(&mut self) {
        let (new_seen, slo_triggers) = {
            let (Some(inc), Some(plane)) = (self.incident.as_ref(), self.telemetry.as_ref()) else {
                return;
            };
            let transitions = plane.engine.transitions();
            let seen = inc.seen_transitions.min(transitions.len());
            let trig: Vec<String> = transitions[seen..]
                .iter()
                .filter(|t| t.to == AlertState::Firing)
                .map(|t| {
                    format!(
                        "{}: {} -> {} at {}",
                        t.objective,
                        t.from.as_str(),
                        t.to.as_str(),
                        t.at
                    )
                })
                .collect();
            (transitions.len(), trig)
        };
        let rank: Vec<String> = self
            .doctor()
            .map(|r| {
                r.top_offenders
                    .iter()
                    .map(|o| format!("{}:{}", o.kind, o.name))
                    .collect()
            })
            .unwrap_or_default();
        let rank_change = {
            let inc = self.incident.as_mut().expect("checked above");
            inc.seen_transitions = new_seen;
            if rank != inc.last_rank {
                let change = (!rank.is_empty()).then(|| {
                    format!(
                        "top offenders now [{}] (was [{}])",
                        rank.join(", "),
                        inc.last_rank.join(", ")
                    )
                });
                inc.last_rank = rank;
                change
            } else {
                None
            }
        };
        for detail in slo_triggers {
            self.capture_incident(TriggerKind::SloFiring, detail);
        }
        if let Some(detail) = rank_change {
            self.capture_incident(TriggerKind::OffenderRankChange, detail);
        }
    }

    /// The live telemetry store, when [`World::enable_telemetry`] is on.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref().map(|p| &p.store)
    }

    /// An owned window over the live series, optionally scoped to one
    /// prefix (e.g. `rt0`). `None` when telemetry is off.
    pub fn telemetry_window(&self, scope: Option<&str>) -> Option<TelemetryWindow> {
        self.telemetry.as_ref().map(|p| p.store.window(scope))
    }

    /// The live SLO engine, when telemetry is on.
    pub fn slo_engine(&self) -> Option<&SloEngine> {
        self.telemetry.as_ref().map(|p| &p.engine)
    }

    /// Runs the federation doctor: aggregates bridge liveness, segment
    /// utilization trends, scheduler health and SLO burn into one
    /// deterministic [`HealthReport`]. `None` when telemetry is off.
    pub fn doctor(&self) -> Option<HealthReport> {
        let plane = self.telemetry.as_ref()?;
        let segments: Vec<SegmentSample> = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, s)| SegmentSample {
                key: format!("seg{i}"),
                label: format!("seg{i}:{}", s.config.name),
                stats: s.stats,
            })
            .collect();
        let attribution = self.attribution();
        Some(HealthReport::build(
            self.now,
            &plane.store,
            &plane.engine,
            self.trace.metrics(),
            &segments,
            self.queue.len() as u64,
            plane.liveness_timeout,
            attribution.as_ref(),
        ))
    }

    /// Folds scheduler and segment state into the metrics registry:
    /// `sched.events_pending`, the cumulative `sched.lag_ns` histogram,
    /// and per-segment `segment.segN.busy_ns` gauges the doctor trends.
    /// Called at every sample and at run-loop sync points.
    ///
    /// With multiple wheels (a sharded run), the pending gauge counts
    /// the merged horizon — this wheel plus the future cross-shard
    /// messages the conductor holds for it — and the same scheduler
    /// state is re-published under a `shard.s{id}.` scope so per-shard
    /// windows can be pulled out of the merged registry.
    fn fold_sched_metrics(&mut self) {
        let pending = self.queue.len() as u64 + self.external_pending();
        let metrics = self.trace.metrics_mut();
        metrics.gauge_set("sched.events_pending", pending as i64);
        metrics.histogram_set("sched.lag_ns", self.sched_lag.clone());
        if self.batch_sizes.count() > 0 {
            metrics.histogram_set("sched.batch_size", self.batch_sizes.clone());
        }
        // `shard.barrier_stall_ns` is registered unconditionally — empty
        // when unsharded, or sharded with wall-health folding off — so
        // sharded and single-process exports carry the same metric set
        // and diff only in values.
        let stall = self
            .shard
            .as_ref()
            .map(|m| m.barrier_stall.clone())
            .unwrap_or_default();
        metrics.histogram_set("shard.barrier_stall_ns", stall);
        if let Some(m) = self.shard.as_ref() {
            let id = m.config.shard;
            let metrics = self.trace.metrics_mut();
            metrics.gauge_set(&format!("shard.s{id}.sched.events_pending"), pending as i64);
            metrics.histogram_set(&format!("shard.s{id}.sched.lag_ns"), self.sched_lag.clone());
        }
        for (i, seg) in self.segments.iter().enumerate() {
            self.trace.metrics_mut().gauge_set(
                &format!("segment.seg{i}.busy_ns"),
                seg.stats.busy.as_nanos() as i64,
            );
        }
    }

    /// Pushes the next grid-aligned `TelemetrySample` event. Direct
    /// queue push: `schedule` would recurse through its own re-arm
    /// check, and a sample time is always strictly in the future.
    fn arm_sampler(&mut self) {
        let Some(plane) = self.telemetry.as_ref() else {
            return;
        };
        let interval = plane.store.interval().as_nanos();
        let next = SimTime::from_nanos((self.now.as_nanos() / interval + 1) * interval);
        self.sampler_armed = true;
        self.queue.push(next, EventKind::TelemetrySample);
    }

    /// Handles a `TelemetrySample` event: folds scheduler metrics, takes
    /// the sample, re-evaluates the SLOs, and re-arms only while work
    /// remains on the merged horizon — this wheel, or cross-shard
    /// messages the conductor still holds for it (the sampler must not
    /// park just because one shard's local queue drained). A fully
    /// drained horizon parks the sampler; `schedule` wakes it again.
    fn telemetry_sample(&mut self) {
        self.sampler_armed = false;
        if self.telemetry.is_none() {
            return;
        }
        self.fold_sched_metrics();
        self.fold_attribution();
        let plane = self.telemetry.as_mut().expect("checked above");
        plane.store.sample(self.now, self.trace.metrics());
        plane
            .engine
            .evaluate(self.now, &plane.store, &mut self.trace);
        if self.incident.is_some() {
            self.detect_incident_triggers();
        }
        if !self.queue.is_empty() || self.external_pending() > 0 {
            self.arm_sampler();
        }
    }

    // ------------------------------------------------------------------
    // Sharding (see `crate::shard` for the conductor)
    // ------------------------------------------------------------------

    /// Declares this world one shard of a sharded run: validates the
    /// lookahead bounds, creates the local gateway node cross-shard
    /// arrivals appear to come from, and re-seeds the world RNG onto a
    /// per-shard stream ([`crate::rng::SimRng::split`]) so sibling
    /// shards draw independent randomness from one parent seed.
    ///
    /// Must be called before any processes are added (the conductor
    /// calls it before running the build closure).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ShardLookahead`] when the lookahead is zero
    /// or the cross-shard link latency is below it, and
    /// [`SimError::ShardUnknown`] for an invalid id/count pair — see
    /// [`ShardConfig::validate`].
    pub fn configure_shard(&mut self, config: ShardConfig) -> SimResult<()> {
        config.validate()?;
        let gateway = self.add_node(format!("shard{}-gw", config.shard));
        self.rng = self.rng.split(u64::from(config.shard));
        self.shard = Some(Box::new(ShardMembership {
            config,
            gateway,
            inlets: HashMap::new(),
            outbox: Vec::new(),
            next_seq: 0,
            external_pending: 0,
            barrier_stall: Histogram::default(),
        }));
        Ok(())
    }

    /// This world's shard identity, when configured.
    pub fn shard_config(&self) -> Option<ShardConfig> {
        self.shard.as_ref().map(|m| m.config)
    }

    /// Registers a local delivery address for cross-shard inlet
    /// `inlet`: messages other shards send to `(this shard, inlet)`
    /// arrive as datagrams at `dst`. Re-registering an inlet replaces
    /// the previous address (a restarted ingress process re-homes it).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSharded`] when the world was never
    /// configured as a shard.
    pub fn register_shard_inlet(&mut self, inlet: u16, dst: Addr) -> SimResult<()> {
        let m = self.shard.as_mut().ok_or(SimError::NotSharded)?;
        m.inlets.insert(inlet, dst);
        Ok(())
    }

    /// Sends `data` to inlet `inlet` on shard `dst_shard`. The message
    /// leaves at the sending process's emit time (CPU cost is modeled
    /// exactly like a datagram send) and arrives one link latency later
    /// — by construction at least one lookahead ahead, so the conductor
    /// can exchange it at the next barrier without violating the
    /// receiving shard's already-executed horizon. Sending to the local
    /// shard is allowed and takes the same path with the same timing,
    /// which keeps fixture behavior identical across shard counts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotSharded`] when the world was never
    /// configured as a shard and [`SimError::ShardUnknown`] for an
    /// out-of-range destination.
    pub fn send_shard(
        &mut self,
        from: ProcId,
        dst_shard: u16,
        inlet: u16,
        data: Payload,
    ) -> SimResult<()> {
        let config = self.shard_config().ok_or(SimError::NotSharded)?;
        if dst_shard >= config.shards {
            return Err(SimError::ShardUnknown {
                shard: dst_shard,
                shards: config.shards,
            });
        }
        let arrival = self.emit_time(from) + config.link_latency;
        let m = self.shard.as_mut().expect("shard config checked above");
        let seq = m.next_seq;
        m.next_seq += 1;
        m.outbox.push(CrossMessage {
            arrival,
            src_shard: config.shard,
            seq,
            dst_shard,
            inlet,
            data,
        });
        self.trace.bump("shard.cross_sent", 1);
        Ok(())
    }

    /// Drains the outbound cross-shard messages accumulated since the
    /// last call (conductor-facing; empty and allocation-free when no
    /// cross traffic happened).
    pub fn take_cross_outbox(&mut self) -> Vec<CrossMessage> {
        self.shard
            .as_mut()
            .map(|m| std::mem::take(&mut m.outbox))
            .unwrap_or_default()
    }

    /// Injects a cross-shard message: schedules its arrival event at
    /// `msg.arrival` (never in this world's past — the conductor only
    /// injects messages due in the window about to run). A message for
    /// an unregistered inlet is counted on `shard.cross_no_inlet` and
    /// dropped, mirroring a datagram with no listener.
    pub fn inject_cross(&mut self, msg: CrossMessage) {
        let Some(m) = self.shard.as_ref() else {
            return;
        };
        let Some(&dst) = m.inlets.get(&msg.inlet) else {
            self.trace.bump("shard.cross_no_inlet", 1);
            return;
        };
        let src = Addr::new(m.gateway, SHARD_GW_PORT_BASE.saturating_add(msg.src_shard));
        debug_assert!(msg.arrival >= self.now, "cross message in the past");
        self.trace.bump("shard.cross_received", 1);
        self.schedule(
            msg.arrival,
            EventKind::CrossArrival {
                src,
                dst,
                data: msg.data,
            },
        );
    }

    /// Records the count of future cross-shard messages the conductor
    /// holds for this world. Folded into `sched.events_pending` and
    /// consulted by the telemetry sampler's re-arm check, so the merged
    /// pending-work horizon — not just this wheel — decides whether the
    /// sampler parks.
    pub fn note_external_pending(&mut self, n: u64) {
        if let Some(m) = self.shard.as_mut() {
            m.external_pending = n;
        }
    }

    /// Records a wall-clock barrier wait (conductor-facing); folded as
    /// the `shard.barrier_stall_ns` histogram. Wall-derived and thus
    /// nondeterministic — the conductor skips it when a run needs
    /// byte-identical metrics (see `ShardPlan::without_wall_health`).
    pub fn record_barrier_stall(&mut self, wait: SimDuration) {
        if let Some(m) = self.shard.as_mut() {
            m.barrier_stall.record(wait);
        }
    }

    /// Events currently in this world's wheel (the conductor's work
    /// vote; includes an armed telemetry sample, which parks itself
    /// once everything else drains).
    pub fn events_pending(&self) -> u64 {
        self.queue.len() as u64
    }

    fn external_pending(&self) -> u64 {
        self.shard.as_ref().map_or(0, |m| m.external_pending)
    }

    /// Runs every event strictly before `end`, leaving `now` at the
    /// last executed instant. The bounded-window primitive of the
    /// sharded conductor: unlike [`World::run_until`] it neither
    /// advances time to the bound nor folds end-of-run metrics, so an
    /// empty window costs nothing beyond the peek.
    pub fn run_before(&mut self, end: SimTime) {
        self.begin_run();
        loop {
            match self.queue.peek_time() {
                Some(t) if t < end => {
                    self.step_batch();
                }
                _ => break,
            }
        }
    }

    /// The earliest instant this world has work scheduled for, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    pub(crate) fn schedule(&mut self, time: SimTime, kind: EventKind) {
        // A dormant sampler (it skips re-arming when the queue drains,
        // so it cannot keep `run_until_idle` alive) wakes up as soon as
        // any real work is scheduled.
        if !self.sampler_armed && self.telemetry.is_some() {
            self.arm_sampler();
        }
        // Same-tick fast path: an event scheduled for the tick currently
        // being drained (`send_local` cascades, mostly) joins the live
        // batch directly instead of round-tripping through the scheduler.
        // Order is preserved — schedule-call order is exactly the FIFO
        // `seq` order the wheel would have assigned, and every such event
        // would be popped as the immediately-next run anyway.
        if self.in_tick_drain && time <= self.now {
            self.tick_overflow.push(kind);
            return;
        }
        self.queue.push(time, kind);
    }

    pub(crate) fn schedule_delivery(&mut self, time: SimTime, proc: ProcId, delivery: Delivery) {
        self.schedule(time, EventKind::Deliver { proc, delivery });
    }

    /// Marks the world as running. The first time, it also drains the
    /// thread-local payload accounting, so copy counters left behind by
    /// a previous world on the same thread cannot leak into this
    /// world's metrics snapshot.
    fn begin_run(&mut self) {
        if !self.started {
            self.started = true;
            crate::payload::take_stats();
        }
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.begin_run();
        let Some((time, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.sched_lag.record(self.now.saturating_since(time));
        self.now = self.now.max(time);
        self.events_processed += 1;
        self.dispatch(kind);
        true
    }

    /// Total events dispatched so far (every popped scheduler entry:
    /// deliveries, frame arrivals, timers, stream bookkeeping). Useful
    /// as the denominator for throughput and allocation-rate metrics.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs every event scheduled for the next occupied tick in one
    /// queue advance. Same-tick events are drained into a reusable
    /// buffer and dispatched in sequence order; events the handlers
    /// schedule at the *same* instant carry larger sequence numbers and
    /// therefore correctly run on the next batch, so this is
    /// observationally identical to popping one event at a time.
    fn step_batch(&mut self) -> bool {
        self.begin_run();
        let mut batch = std::mem::take(&mut self.batch);
        let Some(time) = self.queue.pop_run(&mut batch) else {
            self.batch = batch;
            return false;
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.sched_lag.record(self.now.saturating_since(time));
        self.now = self.now.max(time);
        self.in_tick_drain = true;
        // Frames that arrived on one segment at this instant, this tick.
        // Drives the adaptive batch bound after the tick completes.
        let mut tick_frames: usize = 0;
        // Datagram deliveries dispatched this tick. Busy handlers turn
        // one burst into a train of deferred-delivery ticks with no
        // frame arrivals; those ticks are dispatch-plane load, not
        // idleness, and must not shrink the window mid-drain.
        let mut tick_dgrams: usize = 0;
        loop {
            self.events_processed += batch.len() as u64;
            let mut it = batch.drain(..).peekable();
            while let Some(kind) = it.next() {
                let EventKind::FrameArrival { segment, frame } = kind else {
                    if matches!(
                        kind,
                        EventKind::Deliver {
                            delivery: Delivery::Datagram(_) | Delivery::DatagramBatch(_),
                            ..
                        }
                    ) {
                        tick_dgrams += 1;
                    }
                    self.dispatch(kind);
                    continue;
                };
                tick_frames += 1;
                if self.batch_window <= 1 {
                    // Batch plane off (or fully shrunk): the exact
                    // pre-batching dispatch, with no bookkeeping.
                    self.frame_arrival(segment, frame);
                    continue;
                }
                // Group the consecutive run of same-segment arrivals —
                // a contiguous slice of the (time, seq) order, so the
                // batch dispatches in exactly the order per-event
                // dispatch would have.
                let mut group = std::mem::take(&mut self.frame_batch);
                group.push(frame);
                while group.len() < self.batch_window {
                    match it.peek() {
                        Some(EventKind::FrameArrival { segment: s, .. }) if *s == segment => {
                            let Some(EventKind::FrameArrival { frame, .. }) = it.next() else {
                                unreachable!("peeked a frame arrival");
                            };
                            tick_frames += 1;
                            group.push(frame);
                        }
                        _ => break,
                    }
                }
                self.frame_arrival_batch(segment, &mut group);
                group.clear();
                self.frame_batch = group;
            }
            drop(it);
            if self.tick_overflow.is_empty() {
                break;
            }
            // Handlers scheduled more work at this same tick; it extends
            // the live batch in schedule-call order, which is exactly the
            // FIFO sequence order the wheel would have assigned.
            std::mem::swap(&mut batch, &mut self.tick_overflow);
        }
        self.in_tick_drain = false;
        self.batch = batch;
        // Adapt the live bound: sustained same-instant frame load doubles
        // it toward the cap; a frame-free tick halves it back toward 1
        // (idle latency stays single-event). Purely a dispatch-plane
        // state — it changes how work is grouped, never what runs when.
        if self.batch_policy.adapt {
            if tick_frames >= self.batch_window.max(2) {
                self.batch_window = (self.batch_window * 2).min(self.batch_policy.max_batch);
                self.idle_ticks = 0;
            } else if tick_frames == 0 && tick_dgrams == 0 && self.batch_window > 1 {
                // Only a sustained stretch of ticks with no dispatch
                // traffic at all shrinks the window; isolated timer
                // ticks between bursts and deferred-delivery drains of
                // a busy handler don't.
                self.idle_ticks += 1;
                if self.idle_ticks >= IDLE_TICKS_TO_SHRINK {
                    self.batch_window /= 2;
                    self.idle_ticks = 0;
                }
            } else if tick_frames > 0 || tick_dgrams > 0 {
                self.idle_ticks = 0;
            }
        }
        true
    }

    /// Runs until the event queue drains.
    pub fn run_until_idle(&mut self) {
        self.begin_run();
        while self.step_batch() {}
        self.fold_sched_metrics();
        self.trace.sync_payload_stats();
        self.trace.sync_drop_stats();
    }

    /// Runs until virtual time reaches `deadline` (events at exactly the
    /// deadline are processed). Time is advanced to the deadline even if
    /// the queue drains earlier.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.begin_run();
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step_batch();
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
        self.fold_sched_metrics();
        self.trace.sync_payload_stats();
        self.trace.sync_drop_stats();
    }

    /// Runs for `duration` of virtual time from now.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { proc, delivery } => self.deliver(proc, delivery),
            EventKind::FrameArrival { segment, frame } => self.frame_arrival(segment, frame),
            EventKind::StreamRto {
                stream,
                from_initiator,
                epoch,
            } => self.stream_rto_fired(stream, from_initiator, epoch),
            EventKind::SynRetry { stream, attempt } => self.syn_retry(stream, attempt),
            EventKind::Emit { proc, action } => self.run_emit(proc, action),
            EventKind::TelemetrySample => self.telemetry_sample(),
            EventKind::CrossArrival { src, dst, data } => self.cross_arrival(src, dst, data),
        }
    }

    /// Delivers a cross-shard message: the destination is resolved at
    /// arrival time (like a frame arrival — the ingress process may
    /// have died since the sender emitted; `unicast_binding` counts the
    /// undeliverable ones).
    fn cross_arrival(&mut self, src: Addr, dst: Addr, data: Payload) {
        let Some(proc) = self.unicast_binding(dst) else {
            return;
        };
        self.schedule_delivery(
            self.now,
            proc,
            Delivery::Datagram(Datagram {
                src,
                dst,
                data,
                multicast: false,
            }),
        );
    }

    /// Executes a deferred output action, if the emitting process is
    /// still alive.
    fn run_emit(&mut self, proc: ProcId, action: EmitAction) {
        let alive = self
            .procs
            .get(proc.index())
            .map(|s| s.alive)
            .unwrap_or(false);
        if !alive {
            return;
        }
        match action {
            EmitAction::Datagram {
                src_port,
                dst,
                data,
            } => {
                let _ = self.send_datagram_now(proc, src_port, dst, data);
            }
            EmitAction::Multicast {
                src_port,
                group,
                data,
            } => {
                let _ = self.send_multicast_now(proc, src_port, group, data);
            }
            EmitAction::StreamData { stream, data } => {
                let _ = self.stream_send_forced(proc, stream, data);
            }
            EmitAction::StreamClose { stream } => {
                self.stream_close(proc, stream);
            }
            EmitAction::StreamAck {
                stream,
                rx_initiator,
            } => {
                self.send_ack_now(stream, rx_initiator);
            }
        }
    }

    /// Returns the instant at which output from `proc` may leave: now, or
    /// the end of its accumulated modeled CPU time.
    pub(crate) fn emit_time(&self, proc: ProcId) -> SimTime {
        self.procs
            .get(proc.index())
            .map(|s| s.busy_until.max(self.now))
            .unwrap_or(self.now)
    }

    /// Defers `action` until the process's CPU time elapses; runs it
    /// immediately when the process is idle.
    pub(crate) fn emit_or_defer(&mut self, proc: ProcId, action: EmitAction) {
        let at = self.emit_time(proc);
        if at > self.now {
            self.schedule(at, EventKind::Emit { proc, action });
        } else {
            self.run_emit(proc, action);
        }
    }

    fn deliver(&mut self, proc: ProcId, delivery: Delivery) {
        let Some(slot) = self.procs.get(proc.index()) else {
            return;
        };
        if !slot.alive {
            return;
        }
        // Defer delivery while the process is "computing".
        if slot.busy_until > self.now {
            let at = slot.busy_until;
            self.schedule_delivery(at, proc, delivery);
            return;
        }
        if let Delivery::Timer { timer_id, .. } = delivery {
            if self.cancelled_timers.remove(&timer_id) {
                return;
            }
        }
        if let Delivery::DatagramBatch(items) = delivery {
            self.deliver_datagram_batch(proc, items);
            return;
        }
        self.invoke(proc, move |p, ctx| match delivery {
            Delivery::Start => p.on_start(ctx),
            Delivery::Timer { token, .. } => p.on_timer(ctx, token),
            Delivery::Local { from, msg } => p.on_local(ctx, from, msg),
            Delivery::Datagram(d) => p.on_datagram(ctx, d),
            Delivery::DatagramBatch(_) => unreachable!("handled above"),
            Delivery::Stream { stream, event } => p.on_stream(ctx, stream, event),
        });
    }

    /// Delivers a same-instant datagram run to one process inside a
    /// single handler invocation. Busy semantics match per-datagram
    /// delivery: if the handler models CPU time mid-batch, the unconsumed
    /// tail is re-scheduled at the busy horizon (as its own batch),
    /// exactly where individual deferred deliveries would land. Each
    /// datagram counts as one processed event, so throughput accounting
    /// is identical between batched and unbatched runs.
    fn deliver_datagram_batch(&mut self, proc: ProcId, mut items: Vec<Datagram>) {
        let before = items.len() as u64;
        let mut leftover: Vec<Datagram> = Vec::new();
        {
            let stash = &mut leftover;
            let queue = &mut items;
            self.invoke(proc, move |p, ctx| {
                while let Some(d) = queue.pop() {
                    p.on_datagram(ctx, d);
                    if !queue.is_empty() && ctx.proc_is_busy() {
                        std::mem::swap(stash, queue);
                        break;
                    }
                }
            });
        }
        let handled = before - leftover.len() as u64;
        // The batch popped as one scheduler entry; count the rest here so
        // `events_processed` matches an unbatched run delivery-for-delivery.
        self.events_processed += handled.saturating_sub(1);
        if !leftover.is_empty() {
            let at = self.emit_time(proc);
            let delivery = if leftover.len() == 1 {
                Delivery::Datagram(leftover.pop().expect("checked len"))
            } else {
                Delivery::DatagramBatch(leftover)
            };
            self.schedule_delivery(at, proc, delivery);
        }
    }

    /// Temporarily extracts the process so the handler can borrow the
    /// world mutably through `Ctx`.
    fn invoke<F>(&mut self, proc: ProcId, f: F)
    where
        F: FnOnce(&mut dyn Process, &mut Ctx<'_>),
    {
        let Some(mut process) = self
            .procs
            .get_mut(proc.index())
            .and_then(|s| s.process.take())
        else {
            return;
        };
        {
            let mut ctx = Ctx::new(self, proc);
            f(process.as_mut(), &mut ctx);
        }
        // The process may have removed itself; only restore live slots.
        if let Some(slot) = self.procs.get_mut(proc.index()) {
            if slot.alive {
                slot.process = Some(process);
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers (called via Ctx)
    // ------------------------------------------------------------------

    pub(crate) fn set_timer(&mut self, proc: ProcId, after: SimDuration, token: u64) -> u64 {
        let timer_id = self.next_timer_id;
        self.next_timer_id += 1;
        self.schedule_delivery(self.now + after, proc, Delivery::Timer { timer_id, token });
        timer_id
    }

    pub(crate) fn cancel_timer(&mut self, timer_id: u64) {
        self.cancelled_timers.insert(timer_id);
    }

    // ------------------------------------------------------------------
    // Datagrams & multicast
    // ------------------------------------------------------------------

    /// Finds the first segment shared by two nodes. Traffic from a node
    /// to itself uses an implicit loopback segment (created lazily) so it
    /// never occupies a real medium.
    pub(crate) fn route(&mut self, src: NodeId, dst: NodeId) -> SimResult<SegmentId> {
        if src.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(SimError::UnknownNode(dst));
        }
        if src == dst {
            return Ok(self.loopback_segment());
        }
        let src_node = &self.nodes[src.index()];
        let dst_node = &self.nodes[dst.index()];
        for seg in &src_node.segments {
            if dst_node.segments.contains(seg) {
                return Ok(*seg);
            }
        }
        Err(SimError::NoRoute { src, dst })
    }

    /// The shared loopback segment for intra-node traffic.
    fn loopback_segment(&mut self) -> SegmentId {
        if let Some(id) = self.loopback {
            return id;
        }
        let id = self.add_segment(SegmentConfig::loopback());
        self.loopback = Some(id);
        id
    }

    /// Transmits one frame on a segment, modeling medium occupancy, and
    /// schedules its arrival. Returns the arrival time.
    pub(crate) fn transmit(
        &mut self,
        segment: SegmentId,
        frame: Frame,
        payload_bytes: usize,
    ) -> SimTime {
        let backoff_max = self.segments[segment.index()].config.backoff_max.as_nanos();
        let backoff = if backoff_max == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.rng.gen_range(0..=backoff_max))
        };
        let seg = &mut self.segments[segment.index()];
        let timing = schedule_tx(
            &seg.config,
            self.now,
            seg.busy_until,
            backoff,
            payload_bytes,
        );
        if seg.config.half_duplex {
            seg.stats.busy += timing.end - timing.start;
            seg.busy_until = timing.end;
        } else {
            seg.stats.busy += timing.end - timing.start;
        }
        seg.stats.frames += 1;
        seg.stats.payload_bytes += payload_bytes as u64;
        let lost = seg.config.loss > 0.0 && self.rng.gen_bool(seg.config.loss);
        if lost {
            self.segments[segment.index()].stats.dropped += 1;
            self.trace.bump("frames.lost", 1);
        } else {
            self.schedule(timing.arrival, EventKind::FrameArrival { segment, frame });
        }
        timing.arrival
    }

    /// Datagram wire overhead (UDP+IP style), bytes.
    pub(crate) const DGRAM_HEADER: usize = 28;
    /// Stream wire overhead (TCP+IP style), bytes.
    pub(crate) const STREAM_HEADER: usize = 40;

    pub(crate) fn send_datagram(
        &mut self,
        from: ProcId,
        src_port: u16,
        dst: Addr,
        data: Payload,
    ) -> SimResult<()> {
        // Validate early so callers get errors synchronously, then defer
        // past the sender's modeled CPU time.
        let src_node = self.node_of(from)?;
        self.route(src_node, dst.node)?;
        if self.emit_time(from) > self.now {
            self.emit_or_defer(
                from,
                EmitAction::Datagram {
                    src_port,
                    dst,
                    data,
                },
            );
            return Ok(());
        }
        self.send_datagram_now(from, src_port, dst, data)
    }

    fn send_datagram_now(
        &mut self,
        from: ProcId,
        src_port: u16,
        dst: Addr,
        data: Payload,
    ) -> SimResult<()> {
        let src_node = self.node_of(from)?;
        let segment = self.route(src_node, dst.node)?;
        let mtu = self.segments[segment.index()].config.mtu as usize;
        let wire = data.len() + Self::DGRAM_HEADER;
        // Oversized datagrams are silently truncated to the MTU budget in
        // real UDP/IP via fragmentation; we model the extra frames' cost by
        // charging the full wire size even when above MTU.
        let _ = mtu;
        let frame = Frame {
            src_node,
            dst: FrameDst::Unicast(dst.node),
            payload: FramePayload::Datagram {
                src: Addr::new(src_node, src_port),
                dst,
                data,
                multicast: false,
            },
        };
        self.transmit(segment, frame, wire);
        Ok(())
    }

    /// Multicasts `data` to `group` on every segment the sender's node is
    /// attached to. Local group members on the same node receive it too
    /// (with loopback delay of zero).
    pub(crate) fn send_multicast(
        &mut self,
        from: ProcId,
        src_port: u16,
        group: u16,
        data: Payload,
    ) -> SimResult<()> {
        self.node_of(from)?;
        if self.emit_time(from) > self.now {
            self.emit_or_defer(
                from,
                EmitAction::Multicast {
                    src_port,
                    group,
                    data,
                },
            );
            return Ok(());
        }
        self.send_multicast_now(from, src_port, group, data)
    }

    fn send_multicast_now(
        &mut self,
        from: ProcId,
        src_port: u16,
        group: u16,
        data: Payload,
    ) -> SimResult<()> {
        let src_node = self.node_of(from)?;
        let wire = data.len() + Self::DGRAM_HEADER;
        // Index-based walk (transmit needs `&mut self`), and `data.clone()`
        // is an O(1) refcount bump: one backing buffer serves every segment.
        for i in 0..self.nodes[src_node.index()].segments.len() {
            let segment = self.nodes[src_node.index()].segments[i];
            // IGMP-snooping-style pruning: a frame only occupies a segment
            // if some other attached node has a live member of the group.
            // Without this, a multi-homed host floods every low-bandwidth
            // native segment (mote radio, piconet) with middleware
            // announcements none of its nodes subscribe to, and an
            // oversubscribed medium backlogs the scheduler without bound.
            let seg_state = &self.segments[segment.index()];
            let has_listener = seg_state.groups.get(&group).is_some_and(|members| {
                members.iter().any(|p| {
                    self.procs
                        .get(p.index())
                        .map(|s| s.alive && s.node != src_node && seg_state.nodes.contains(&s.node))
                        .unwrap_or(false)
                })
            });
            if !has_listener {
                self.trace.bump("multicast.pruned", 1);
                continue;
            }
            let frame = Frame {
                src_node,
                dst: FrameDst::Group(group),
                payload: FramePayload::Datagram {
                    src: Addr::new(src_node, src_port),
                    dst: Addr::new(src_node, group),
                    data: data.clone(),
                    multicast: true,
                },
            };
            self.transmit(segment, frame, wire);
        }
        Ok(())
    }

    /// Dispatches a batch of frames that arrived on one segment at the
    /// same instant (a consecutive run of the (time, seq) event order).
    /// Within the batch, consecutive unicast datagrams bound for the same
    /// process collapse into one [`Delivery::DatagramBatch`] — one
    /// scheduler event and one handler wakeup for the whole run. Only
    /// *consecutive* same-destination runs are grouped, so the relative
    /// order of every delivery is exactly what per-frame dispatch
    /// produces.
    fn frame_arrival_batch(&mut self, segment: SegmentId, frames: &mut Vec<Frame>) {
        self.batch_sizes
            .record(SimDuration::from_nanos(frames.len() as u64));
        if frames.len() > 1 {
            self.trace
                .bump("dispatch.batched_frames", frames.len() as u64);
        }
        let mut pending = std::mem::take(&mut self.dgram_batch);
        let mut pending_proc: Option<ProcId> = None;
        // Consecutive frames of one burst share a destination, so the
        // port-binding hash lookup is memoized across the run. Safe
        // because grouping a plain-unicast run only *schedules* work —
        // no handler code runs, so bindings cannot change mid-run; any
        // other frame kind may run protocol code inline and drops the
        // memo. Negative lookups are never memoized: each undeliverable
        // datagram must bump its drop counter exactly as per-frame
        // arrival does.
        let mut memo: Option<(Addr, ProcId)> = None;
        for frame in frames.drain(..) {
            // Only plain unicast datagrams group; everything else keeps
            // its per-frame handling (after flushing any open group so
            // order is preserved).
            let is_plain_unicast = matches!(
                (&frame.dst, &frame.payload),
                (
                    FrameDst::Unicast(_),
                    FramePayload::Datagram {
                        multicast: false,
                        ..
                    }
                )
            );
            if !is_plain_unicast {
                memo = None;
                self.flush_dgram_batch(&mut pending, &mut pending_proc);
                self.frame_arrival(segment, frame);
                continue;
            }
            let FramePayload::Datagram { src, dst, data, .. } = frame.payload else {
                unreachable!("matched a datagram above");
            };
            // An undeliverable datagram schedules nothing, so it is
            // counted and dropped without disturbing the open group.
            let proc = match memo {
                Some((a, p)) if a == dst => p,
                _ => {
                    let Some(p) = self.unicast_binding(dst) else {
                        continue;
                    };
                    memo = Some((dst, p));
                    p
                }
            };
            if pending_proc.is_some() && pending_proc != Some(proc) {
                self.flush_dgram_batch(&mut pending, &mut pending_proc);
            }
            pending_proc = Some(proc);
            pending.push(Datagram {
                src,
                dst,
                data,
                multicast: false,
            });
        }
        self.flush_dgram_batch(&mut pending, &mut pending_proc);
        self.dgram_batch = pending;
    }

    /// Schedules the accumulated same-process datagram run: a singleton
    /// goes out as a plain [`Delivery::Datagram`] (byte-for-byte the
    /// unbatched path), a longer run as one [`Delivery::DatagramBatch`].
    fn flush_dgram_batch(&mut self, pending: &mut Vec<Datagram>, proc: &mut Option<ProcId>) {
        let Some(p) = proc.take() else {
            debug_assert!(pending.is_empty());
            return;
        };
        match pending.len() {
            0 => {}
            1 => {
                let d = pending.pop().expect("checked len");
                self.schedule_delivery(self.now, p, Delivery::Datagram(d));
            }
            _ => {
                // Stored last-first so delivery pops in arrival order.
                let mut items: Vec<Datagram> = std::mem::take(pending);
                items.reverse();
                self.schedule_delivery(self.now, p, Delivery::DatagramBatch(items));
            }
        }
    }

    /// Resolves the receiving process for a unicast datagram, counting
    /// undeliverable ones exactly as per-frame arrival does.
    fn unicast_binding(&mut self, dst: Addr) -> Option<ProcId> {
        let node = self.nodes.get(dst.node.index())?;
        if !node.alive {
            return None;
        }
        let Some(binding) = node.ports.get(&dst.port).copied() else {
            self.trace.bump("datagrams.no_listener", 1);
            return None;
        };
        if binding.listener {
            self.trace.bump("datagrams.no_listener", 1);
            return None;
        }
        Some(binding.proc)
    }

    fn frame_arrival(&mut self, segment: SegmentId, frame: Frame) {
        match frame.payload {
            FramePayload::Datagram {
                src,
                dst,
                data,
                multicast,
            } => {
                if multicast {
                    let group = match frame.dst {
                        FrameDst::Group(g) => g,
                        FrameDst::Unicast(_) => return,
                    };
                    let seg_state = &self.segments[segment.index()];
                    let attached = &seg_state.nodes;
                    let members: Vec<ProcId> = seg_state
                        .groups
                        .get(&group)
                        .map(|m| {
                            m.iter()
                                .copied()
                                .filter(|p| {
                                    // A node does not hear its own multicast,
                                    // and detached nodes hear nothing.
                                    self.procs
                                        .get(p.index())
                                        .map(|s| {
                                            s.alive
                                                && s.node != frame.src_node
                                                && attached.contains(&s.node)
                                        })
                                        .unwrap_or(false)
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    // Fan-out: every member gets a view of the same backing
                    // buffer; `clone()` bumps a refcount, no bytes move.
                    if members.len() > 1 {
                        self.trace.bump(
                            "payload.fanout_bytes_shared",
                            (data.len() * (members.len() - 1)) as u64,
                        );
                    }
                    for member in members {
                        let d = Datagram {
                            src,
                            dst: Addr::new(self.procs[member.index()].node, group),
                            data: data.clone(),
                            multicast: true,
                        };
                        self.schedule_delivery(self.now, member, Delivery::Datagram(d));
                    }
                } else {
                    let Some(proc) = self.unicast_binding(dst) else {
                        return;
                    };
                    let d = Datagram {
                        src,
                        dst,
                        data,
                        multicast: false,
                    };
                    self.schedule_delivery(self.now, proc, Delivery::Datagram(d));
                }
            }
            FramePayload::Stream(sf) => self.stream_frame_arrival(segment, sf),
        }
    }

    /// Allocates an ephemeral port on a node.
    pub(crate) fn alloc_ephemeral(&mut self, node: NodeId) -> u16 {
        let n = &mut self.nodes[node.index()];
        loop {
            let port = n.next_ephemeral;
            n.next_ephemeral = n.next_ephemeral.checked_add(1).unwrap_or(EPHEMERAL_BASE);
            if !n.ports.contains_key(&port) {
                return port;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::StreamEvent;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Echoer;
    impl Process for Echoer {
        fn name(&self) -> &str {
            "echoer"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(9).unwrap();
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
            ctx.send_to(9, d.src, d.data).unwrap();
        }
    }

    struct Pinger {
        got: Rc<RefCell<Vec<Vec<u8>>>>,
        target: Addr,
    }
    impl Process for Pinger {
        fn name(&self) -> &str {
            "pinger"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(7).unwrap();
            ctx.send_to(7, self.target, b"hello".to_vec()).unwrap();
        }
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: Datagram) {
            self.got.borrow_mut().push(d.data.to_vec());
        }
    }

    fn two_node_world() -> (World, NodeId, NodeId, SegmentId) {
        let mut w = World::new(1);
        let seg = w.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let a = w.add_node("a");
        let b = w.add_node("b");
        w.attach(a, seg).unwrap();
        w.attach(b, seg).unwrap();
        (w, a, b, seg)
    }

    #[test]
    fn datagram_round_trip() {
        let (mut w, a, b, _) = two_node_world();
        w.add_process(b, Box::new(Echoer));
        let got = Rc::new(RefCell::new(Vec::new()));
        w.add_process(
            a,
            Box::new(Pinger {
                got: Rc::clone(&got),
                target: Addr::new(b, 9),
            }),
        );
        w.run_until(SimTime::from_secs(1));
        assert_eq!(got.borrow().as_slice(), &[b"hello".to_vec()]);
    }

    #[test]
    fn no_route_between_disconnected_nodes() {
        let mut w = World::new(1);
        let s1 = w.add_segment(SegmentConfig::loopback());
        let s2 = w.add_segment(SegmentConfig::loopback());
        let a = w.add_node("a");
        let b = w.add_node("b");
        w.attach(a, s1).unwrap();
        w.attach(b, s2).unwrap();
        assert_eq!(w.route(a, b), Err(SimError::NoRoute { src: a, dst: b }));
    }

    #[test]
    fn piconet_rejects_ninth_member() {
        let mut w = World::new(1);
        let pico = w.add_segment(SegmentConfig::bluetooth_piconet());
        for i in 0..8 {
            let n = w.add_node(format!("dev{i}"));
            w.attach(n, pico).unwrap();
        }
        let extra = w.add_node("dev8");
        assert_eq!(w.attach(extra, pico), Err(SimError::SegmentFull(pico)));
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut w = World::new(1);
        w.run_until(SimTime::from_secs(3));
        assert_eq!(w.now(), SimTime::from_secs(3));
    }

    struct TimerProc {
        fired: Rc<RefCell<Vec<(u64, SimTime)>>>,
    }
    impl Process for TimerProc {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
            let cancel = ctx.set_timer(SimDuration::from_millis(20), 2);
            ctx.cancel_timer(cancel);
            ctx.set_timer(SimDuration::from_millis(30), 3);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.fired.borrow_mut().push((token, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let (mut w, a, _, _) = two_node_world();
        let fired = Rc::new(RefCell::new(Vec::new()));
        w.add_process(
            a,
            Box::new(TimerProc {
                fired: Rc::clone(&fired),
            }),
        );
        w.run_until(SimTime::from_secs(1));
        let fired = fired.borrow();
        assert_eq!(
            fired.as_slice(),
            &[(1, SimTime::from_millis(10)), (3, SimTime::from_millis(30)),]
        );
    }

    struct BusyProc {
        handled: Rc<RefCell<Vec<SimTime>>>,
    }
    impl Process for BusyProc {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Two timers at the same instant; the first handler burns 5 ms
            // of CPU, so the second fires 5 ms later.
            ctx.set_timer(SimDuration::from_millis(1), 0);
            ctx.set_timer(SimDuration::from_millis(1), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.handled.borrow_mut().push(ctx.now());
            ctx.busy(SimDuration::from_millis(5));
        }
    }

    #[test]
    fn busy_defers_subsequent_deliveries() {
        let (mut w, a, _, _) = two_node_world();
        let handled = Rc::new(RefCell::new(Vec::new()));
        w.add_process(
            a,
            Box::new(BusyProc {
                handled: Rc::clone(&handled),
            }),
        );
        w.run_until(SimTime::from_secs(1));
        assert_eq!(
            handled.borrow().as_slice(),
            &[SimTime::from_millis(1), SimTime::from_millis(6)]
        );
    }

    struct GroupReceiver {
        got: Rc<RefCell<u32>>,
    }
    impl Process for GroupReceiver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.join_group(1900).unwrap();
        }
        fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: Datagram) {
            assert!(d.multicast);
            *self.got.borrow_mut() += 1;
        }
    }

    struct GroupSender;
    impl Process for GroupSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(5000).unwrap();
            ctx.join_group(1900).unwrap();
            ctx.multicast(5000, 1900, b"NOTIFY".to_vec()).unwrap();
        }
    }

    #[test]
    fn multicast_reaches_other_members_not_sender() {
        let mut w = World::new(1);
        let seg = w.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let nodes: Vec<NodeId> = (0..3).map(|i| w.add_node(format!("n{i}"))).collect();
        for n in &nodes {
            w.attach(*n, seg).unwrap();
        }
        let got = Rc::new(RefCell::new(0));
        w.add_process(
            nodes[0],
            Box::new(GroupReceiver {
                got: Rc::clone(&got),
            }),
        );
        w.add_process(
            nodes[1],
            Box::new(GroupReceiver {
                got: Rc::clone(&got),
            }),
        );
        w.add_process(nodes[2], Box::new(GroupSender));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(*got.borrow(), 2);
    }

    #[test]
    fn removed_process_gets_no_events() {
        let (mut w, a, b, _) = two_node_world();
        let p = w.add_process(b, Box::new(Echoer));
        let got = Rc::new(RefCell::new(Vec::new()));
        w.run_until(SimTime::from_millis(1));
        w.remove_process(p).unwrap();
        w.add_process(
            a,
            Box::new(Pinger {
                got: Rc::clone(&got),
                target: Addr::new(b, 9),
            }),
        );
        w.run_until(SimTime::from_secs(1));
        assert!(got.borrow().is_empty());
        assert_eq!(w.remove_process(p), Err(SimError::UnknownProcess(p)));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<SimTime> {
            let mut w2 = World::new(seed);
            let seg = w2.add_segment(SegmentConfig::ethernet_10mbps_hub().with_loss(0.3));
            let a = w2.add_node("a");
            let b = w2.add_node("b");
            w2.attach(a, seg).unwrap();
            w2.attach(b, seg).unwrap();
            w2.add_process(b, Box::new(Echoer));
            let got = Rc::new(RefCell::new(Vec::new()));
            w2.add_process(
                a,
                Box::new(Pinger {
                    got: Rc::clone(&got),
                    target: Addr::new(b, 9),
                }),
            );
            w2.run_until(SimTime::from_secs(1));
            w2.trace().events().iter().map(|e| e.time).collect()
        }
        assert_eq!(run(42), run(42));
    }

    // Stream smoke test lives in stream.rs; here we only check listener
    // bookkeeping through the public API.
    struct Listener;
    impl Process for Listener {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.listen(80).unwrap();
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
            if let StreamEvent::Data(d) = event {
                ctx.stream_send(stream, d).unwrap();
            }
        }
    }

    struct Connector {
        target: Addr,
        got: Rc<RefCell<Vec<u8>>>,
        stream: Option<StreamId>,
    }
    impl Process for Connector {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.stream = Some(ctx.connect(self.target).unwrap());
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
            match event {
                StreamEvent::Connected => {
                    ctx.stream_send(stream, b"ping".to_vec()).unwrap();
                }
                StreamEvent::Data(d) => self.got.borrow_mut().extend(d),
                _ => {}
            }
        }
    }

    #[test]
    fn stream_echo_round_trip() {
        let (mut w, a, b, _) = two_node_world();
        w.add_process(b, Box::new(Listener));
        let got = Rc::new(RefCell::new(Vec::new()));
        w.add_process(
            a,
            Box::new(Connector {
                target: Addr::new(b, 80),
                got: Rc::clone(&got),
                stream: None,
            }),
        );
        w.run_until(SimTime::from_secs(2));
        assert_eq!(got.borrow().as_slice(), b"ping");
    }

    /// Sends `per_burst` equal-sized datagrams to `target` every 10 ms.
    /// On a full-duplex switch they all arrive at the same instant, so
    /// each burst is one same-tick frame run for the batch plane.
    struct BurstSender {
        target: Addr,
        per_burst: u32,
        bursts: u32,
        sent: u32,
    }
    impl Process for BurstSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(7).unwrap();
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            for i in 0..self.per_burst {
                ctx.send_to(7, self.target, vec![(self.sent + i) as u8; 8])
                    .unwrap();
            }
            self.sent += self.per_burst;
            self.bursts -= 1;
            if self.bursts > 0 {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
    }

    struct RecordingSink {
        got: Rc<RefCell<Vec<(SimTime, u8)>>>,
        cost: SimDuration,
    }
    impl Process for RecordingSink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(9).unwrap();
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
            self.got.borrow_mut().push((ctx.now(), d.data[0]));
            if !self.cost.is_zero() {
                ctx.busy(self.cost);
            }
        }
    }

    type Recorded = Rc<RefCell<Vec<(SimTime, u8)>>>;

    fn burst_world(policy: BatchPolicy, cost: SimDuration) -> (World, Recorded) {
        let mut w = World::new(7);
        w.set_batch_policy(policy);
        let seg = w.add_segment(SegmentConfig::ethernet_100mbps_switch());
        let a = w.add_node("sender");
        let b = w.add_node("sink");
        w.attach(a, seg).unwrap();
        w.attach(b, seg).unwrap();
        let got = Rc::new(RefCell::new(Vec::new()));
        w.add_process(
            b,
            Box::new(RecordingSink {
                got: Rc::clone(&got),
                cost,
            }),
        );
        w.add_process(
            a,
            Box::new(BurstSender {
                target: Addr::new(b, 9),
                per_burst: 8,
                bursts: 6,
                sent: 0,
            }),
        );
        (w, got)
    }

    #[test]
    fn batched_delivery_preserves_arrival_times_and_order() {
        let (mut w_off, got_off) = burst_world(BatchPolicy::unbatched(), SimDuration::ZERO);
        let (mut w_on, got_on) = burst_world(BatchPolicy::default(), SimDuration::ZERO);
        w_off.run_until(SimTime::from_secs(1));
        w_on.run_until(SimTime::from_secs(1));
        assert_eq!(got_off.borrow().len(), 48);
        assert_eq!(got_off.borrow().as_slice(), got_on.borrow().as_slice());
        // The batched run actually exercised the batch plane.
        assert!(w_on.trace().metrics().counter("dispatch.batched_frames") > 0);
        assert_eq!(
            w_off.trace().metrics().counter("dispatch.batched_frames"),
            0
        );
        // Both runs account the same number of processed events.
        assert_eq!(w_off.events_processed(), w_on.events_processed());
    }

    #[test]
    fn batched_delivery_defers_tail_exactly_like_busy_per_item() {
        // A sink that burns CPU per datagram: the batch plane must land
        // every item at the same instant per-item delivery would have.
        let cost = SimDuration::from_micros(300);
        let (mut w_off, got_off) = burst_world(BatchPolicy::unbatched(), cost);
        let (mut w_on, got_on) = burst_world(BatchPolicy::default(), cost);
        w_off.run_until(SimTime::from_secs(1));
        w_on.run_until(SimTime::from_secs(1));
        assert_eq!(got_off.borrow().len(), 48);
        assert_eq!(got_off.borrow().as_slice(), got_on.borrow().as_slice());
    }

    #[test]
    fn adaptive_window_grows_under_load_and_shrinks_when_idle() {
        let (mut w, _got) = burst_world(BatchPolicy::default(), SimDuration::ZERO);
        assert_eq!(w.dispatch_batch_limit(), 1, "starts single-event");
        // Run through the bursts: the window must have grown past 1 and
        // batches must have been recorded.
        w.run_until(SimTime::from_millis(65));
        assert!(
            w.dispatch_batch_limit() > 1,
            "sustained 8-frame bursts must widen the window (got {})",
            w.dispatch_batch_limit()
        );
        // A long idle stretch (driven by timer-only ticks) shrinks back
        // to single-event dispatch.
        struct IdleTicker;
        impl Process for IdleTicker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        let n = w.add_node("ticker");
        w.add_process(n, Box::new(IdleTicker));
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.dispatch_batch_limit(), 1, "idle shrinks back to 1");
    }

    #[test]
    fn pinned_policy_skips_adaptation() {
        let (mut w, got) = burst_world(
            BatchPolicy {
                max_batch: 4,
                adapt: false,
            },
            SimDuration::ZERO,
        );
        assert_eq!(w.dispatch_batch_limit(), 4, "pinned at max from the start");
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.dispatch_batch_limit(), 4);
        assert_eq!(got.borrow().len(), 48);
        // Groups are capped at max_batch: 8-frame bursts become 4+4.
        let h = w
            .trace()
            .metrics()
            .histogram("sched.batch_size")
            .expect("batches recorded");
        assert_eq!(h.max(), SimDuration::from_nanos(4));
    }
}
