//! Virtual time for the simulator.
//!
//! Simulated time is a monotonically non-decreasing count of nanoseconds
//! since the start of the simulation, wrapped in [`SimTime`]. Durations are
//! represented by [`SimDuration`]. Both are plain `u64` nanosecond counts
//! with saturating arithmetic, so a simulation can run for ~584 years of
//! virtual time before overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, measured in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use simnet::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a nanosecond count.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Creates a time from a microsecond count.
    pub const fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// Creates a time from a millisecond count.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time from a second count.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the time in seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, or
    /// [`SimDuration::ZERO`] if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of virtual time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use simnet::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a nanosecond count.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// Creates a duration from a microsecond count.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from a millisecond count.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from a second count.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a floating point second count.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Computes the time needed to transmit `bytes` bytes at
    /// `bits_per_second`, i.e. the serialization delay on a link.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_second` is zero.
    pub fn transmission(bytes: u64, bits_per_second: u64) -> SimDuration {
        assert!(bits_per_second > 0, "link bandwidth must be non-zero");
        // bytes * 8 * 1e9 / bps, computed in u128 to avoid overflow.
        let nanos = (bytes as u128 * 8 * 1_000_000_000) / bits_per_second as u128;
        SimDuration(nanos as u64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 10_250);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_micros(250));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn transmission_delay_matches_hand_computation() {
        // 1250 bytes at 10 Mbps = 10_000 bits / 10e6 bps = 1 ms.
        assert_eq!(
            SimDuration::transmission(1250, 10_000_000),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn duration_scalar_ops() {
        assert_eq!(SimDuration::from_millis(4) / 2, SimDuration::from_millis(2));
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
