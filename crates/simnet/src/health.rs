//! SLO burn-rate alerting and the federation health doctor.
//!
//! Sits on top of [`crate::timeseries`]: an [`SloEngine`] re-evaluates a
//! set of [`Objective`]s against the sampler's windowed series after
//! every sample, driving a deterministic ok → warning → firing alert
//! state machine whose transitions land in the trace as instant spans.
//! The [`HealthReport`] "doctor" aggregates alerts, per-bridge liveness
//! watermarks, segment utilization trends and scheduler health into one
//! deterministic JSON document.
//!
//! All math is integer-only. Error budgets are expressed in parts per
//! million (ppm); burn rates in *milli* (1000 = consuming the budget at
//! exactly the sustainable rate). A classic multi-window rule such as
//! "14.4× burn over 1 h and 5 m" becomes `factor_milli: 14_400` with
//! `long_intervals`/`short_intervals` counted in sampler intervals.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};
use crate::timeseries::{SamplerConfig, Telemetry};
use crate::trace::{Metrics, SegmentStats, Trace};

/// What an [`Objective`] measures, over the sampler's windowed series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloKind {
    /// Fraction of histogram observations above a latency threshold.
    /// The threshold should sit on a histogram bucket bound (the 1–2–5
    /// series) for exact accounting; off-bound thresholds round down.
    LatencyAbove {
        /// Histogram name, e.g. `rt0.transport_latency`.
        histogram: String,
        /// Threshold in nanoseconds.
        threshold_ns: u64,
        /// Error budget: tolerated fraction above threshold, in ppm.
        budget_ppm: u64,
    },
    /// Ratio of an error counter to a total counter.
    ErrorRatio {
        /// Error counter name.
        errors: String,
        /// Total counter name.
        total: String,
        /// Error budget in ppm.
        budget_ppm: u64,
    },
    /// Liveness of a traffic counter: a sampling interval with a zero
    /// delta is a *bad* interval. An absent series (nothing sampled
    /// yet) counts as healthy, so startup is graceful.
    Liveness {
        /// Traffic counter name, e.g. `bridge.upnp.traffic`.
        counter: String,
        /// Error budget: tolerated fraction of silent intervals, ppm.
        budget_ppm: u64,
    },
}

impl SloKind {
    /// Error fraction in ppm over the last `n` sampler intervals.
    fn error_frac_ppm(&self, telemetry: &Telemetry, n: usize) -> u64 {
        match self {
            SloKind::LatencyAbove {
                histogram,
                threshold_ns,
                ..
            } => {
                let Some(series) = telemetry.histogram_series(histogram) else {
                    return 0;
                };
                let w = series.window(n);
                if w.count == 0 {
                    return 0;
                }
                w.above_ns(*threshold_ns).saturating_mul(1_000_000) / w.count
            }
            SloKind::ErrorRatio { errors, total, .. } => {
                let err = telemetry
                    .counter_series(errors)
                    .map(|s| s.window_sum(n).0)
                    .unwrap_or(0);
                let tot = telemetry
                    .counter_series(total)
                    .map(|s| s.window_sum(n).0)
                    .unwrap_or(0);
                if tot == 0 {
                    return 0;
                }
                err.saturating_mul(1_000_000) / tot
            }
            SloKind::Liveness { counter, .. } => {
                let Some(series) = telemetry.counter_series(counter) else {
                    return 0;
                };
                let (_, intervals, zeros) = series.window_sum(n);
                if intervals == 0 {
                    return 0;
                }
                (zeros as u64).saturating_mul(1_000_000) / intervals as u64
            }
        }
    }

    fn budget_ppm(&self) -> u64 {
        match self {
            SloKind::LatencyAbove { budget_ppm, .. }
            | SloKind::ErrorRatio { budget_ppm, .. }
            | SloKind::Liveness { budget_ppm, .. } => (*budget_ppm).max(1),
        }
    }
}

/// A multi-window burn-rate rule: trips when the burn rate over *both*
/// the long and the short window is at least `factor_milli`. The short
/// window makes the alert reset quickly once the fault clears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurnRateRule {
    /// Long window, in sampler intervals.
    pub long_intervals: usize,
    /// Short window, in sampler intervals.
    pub short_intervals: usize,
    /// Minimum burn rate, in milli (1000 = exactly sustainable).
    pub factor_milli: u64,
}

/// One service-level objective with its alerting rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Objective {
    /// Unique objective name, e.g. `upnp-liveness`.
    pub name: String,
    /// The federation entity this objective guards, e.g. `bridge:upnp`
    /// or a segment label — what the doctor blames when it burns.
    pub subject: String,
    /// What is measured.
    pub kind: SloKind,
    /// Rule for the warning state.
    pub warning: BurnRateRule,
    /// Rule for the firing state (checked first; usually a higher
    /// factor or longer confirmation than `warning`).
    pub firing: BurnRateRule,
}

/// Alert state of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Burn rate below every rule.
    Ok,
    /// The warning rule tripped.
    Warning,
    /// The firing rule tripped.
    Firing,
}

impl AlertState {
    /// Stable lowercase name, used in span stages and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warning => "warning",
            AlertState::Firing => "firing",
        }
    }

    fn as_gauge(self) -> i64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Warning => 1,
            AlertState::Firing => 2,
        }
    }
}

/// Current status of one objective, refreshed every evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertStatus {
    /// Current state.
    pub state: AlertState,
    /// When the current state was entered.
    pub since: SimTime,
    /// Burn rate over the firing rule's long window, in milli.
    pub burn_long_milli: u64,
    /// Burn rate over the firing rule's short window, in milli.
    pub burn_short_milli: u64,
}

/// One recorded state transition, for assertions and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertTransition {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// Objective name.
    pub objective: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
}

/// Evaluates objectives against the telemetry store after every sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEngine {
    objectives: Vec<Objective>,
    status: Vec<AlertStatus>,
    transitions: Vec<AlertTransition>,
}

impl SloEngine {
    /// Creates an engine with every objective in the `Ok` state.
    pub fn new(objectives: Vec<Objective>) -> SloEngine {
        let status = objectives
            .iter()
            .map(|_| AlertStatus {
                state: AlertState::Ok,
                since: SimTime::ZERO,
                burn_long_milli: 0,
                burn_short_milli: 0,
            })
            .collect();
        SloEngine {
            objectives,
            status,
            transitions: Vec::new(),
        }
    }

    /// The configured objectives.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Status of each objective, index-aligned with [`objectives`].
    ///
    /// [`objectives`]: SloEngine::objectives
    pub fn status(&self) -> &[AlertStatus] {
        &self.status
    }

    /// Every state transition so far, in evaluation order.
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.transitions
    }

    /// Re-evaluates every objective against the current windows.
    /// Transitions are recorded as instant `slo-engine` spans plus the
    /// `slo.transitions` counter; `slo.<name>.state` gauges and the
    /// `slo.firing` gauge are refreshed on every call.
    pub fn evaluate(&mut self, now: SimTime, telemetry: &Telemetry, trace: &mut Trace) {
        let mut firing = 0i64;
        for (obj, status) in self.objectives.iter().zip(self.status.iter_mut()) {
            let budget = obj.kind.budget_ppm();
            let burn = |intervals: usize| -> u64 {
                obj.kind
                    .error_frac_ppm(telemetry, intervals)
                    .saturating_mul(1_000)
                    / budget
            };
            let trips = |rule: &BurnRateRule| -> bool {
                burn(rule.long_intervals) >= rule.factor_milli
                    && burn(rule.short_intervals) >= rule.factor_milli
            };
            let next = if trips(&obj.firing) {
                AlertState::Firing
            } else if trips(&obj.warning) {
                AlertState::Warning
            } else {
                AlertState::Ok
            };
            status.burn_long_milli = burn(obj.firing.long_intervals);
            status.burn_short_milli = burn(obj.firing.short_intervals);
            if next != status.state {
                let from = status.state;
                trace.span(
                    0,
                    now,
                    "slo-engine",
                    format!("alert.{}", next.as_str()),
                    format!(
                        "{}: {} -> {} (burn {}m/{}m, subject {})",
                        obj.name,
                        from.as_str(),
                        next.as_str(),
                        status.burn_long_milli,
                        status.burn_short_milli,
                        obj.subject
                    ),
                );
                trace.metrics_mut().counter_add("slo.transitions", 1);
                self.transitions.push(AlertTransition {
                    at: now,
                    objective: obj.name.clone(),
                    from,
                    to: next,
                });
                status.state = next;
                status.since = now;
            }
            trace
                .metrics_mut()
                .gauge_set(&format!("slo.{}.state", obj.name), next.as_gauge());
            if next == AlertState::Firing {
                firing += 1;
            }
        }
        trace.metrics_mut().gauge_set("slo.firing", firing);
    }
}

/// Full configuration of the telemetry plane
/// ([`World::enable_telemetry`](crate::World::enable_telemetry)).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Sampler interval and ring capacity.
    pub sampler: SamplerConfig,
    /// Objectives for the SLO engine.
    pub objectives: Vec<Objective>,
    /// A bridge whose last-traffic watermark is older than this is
    /// reported silent by the doctor.
    pub liveness_timeout: SimDuration,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            sampler: SamplerConfig::default(),
            objectives: Vec::new(),
            liveness_timeout: SimDuration::from_secs(5),
        }
    }
}

/// One segment's identity and whole-run stats, as fed to the doctor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSample {
    /// Metric key, e.g. `seg0` — matches the `segment.seg0.*` gauges.
    pub key: String,
    /// Human label, e.g. `seg0:ethernet-10mbps-hub`.
    pub label: String,
    /// Whole-run transmission stats.
    pub stats: SegmentStats,
}

/// Liveness of one bridge, from its last-traffic watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeHealth {
    /// Platform name, e.g. `upnp`.
    pub platform: String,
    /// Virtual time of the last translated traffic, in nanoseconds.
    pub last_traffic_ns: u64,
    /// Idle time since then, in nanoseconds.
    pub idle_ns: u64,
    /// `true` when idle longer than the liveness timeout.
    pub silent: bool,
}

/// Utilization health of one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentHealth {
    /// Segment label.
    pub label: String,
    /// Trailing-window utilization in milli (1000 = fully busy); falls
    /// back to the whole-run mean when the sampler has too few points.
    pub utilization_milli: u64,
    /// Whole-run frames transmitted.
    pub frames: u64,
    /// Whole-run frames dropped by the loss model.
    pub dropped: u64,
}

/// One objective's status inside the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertReport {
    /// Objective name.
    pub name: String,
    /// Guarded entity.
    pub subject: String,
    /// Current state.
    pub state: AlertState,
    /// When the state was entered, in nanoseconds.
    pub since_ns: u64,
    /// Burn over the firing rule's long window, milli.
    pub burn_long_milli: u64,
    /// Burn over the firing rule's short window, milli.
    pub burn_short_milli: u64,
}

/// One ranked problem in the federation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Offender {
    /// Problem class: `slo`, `bridge-silent`, `segment-hot` or
    /// `shard-straggler`.
    pub kind: String,
    /// Objective name, bridge platform, or segment label.
    pub name: String,
    /// The blamed federation entity.
    pub subject: String,
    /// Severity in milli, comparable across kinds (1000 ≈ at limit).
    pub severity_milli: u64,
    /// Where the time went: `{component}/{kind}` from the attribution
    /// plane (e.g. `process:umiddle-runtime/queue`), empty when
    /// attribution is off or has nothing folded.
    pub dominant: String,
    /// Trace correlation id of an exemplar journey for this offender —
    /// a latency SLO's slow-tail exemplar, or the blamed component's
    /// longest-span corr. Zero when no exemplar exists.
    pub exemplar_corr: u64,
}

/// The federation doctor's aggregated health report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Virtual time the report was generated, in nanoseconds.
    pub generated_ns: u64,
    /// Sampler interval in nanoseconds.
    pub interval_ns: u64,
    /// Samples taken so far.
    pub samples: u64,
    /// Events pending in the scheduler right now.
    pub events_pending: u64,
    /// Sampled `sched.events_pending` trend, oldest first.
    pub events_pending_trend: Vec<i64>,
    /// p99 scheduler lag (pop time minus due time), nanoseconds.
    pub sched_lag_p99_ns: u64,
    /// Maximum scheduler lag, nanoseconds.
    pub sched_lag_max_ns: u64,
    /// Per-bridge liveness, sorted by platform.
    pub bridges: Vec<BridgeHealth>,
    /// Per-segment utilization, sorted busiest first.
    pub segments: Vec<SegmentHealth>,
    /// Per-objective status, in configuration order.
    pub alerts: Vec<AlertReport>,
    /// Ranked problems, most severe first.
    pub top_offenders: Vec<Offender>,
    /// Busiest segment's label, if any segments exist.
    pub top_segment: Option<String>,
}

/// How many trailing samples the doctor uses for segment utilization
/// and how hot (in milli) a segment must be to rank as an offender.
const SEGMENT_TREND_INTERVALS: usize = 8;
const SEGMENT_HOT_MILLI: u64 = 800;
/// Exec share (milli, 1000 = balanced) at which a shard ranks as a
/// `shard-straggler` offender: 1.5x its fair share of execution time.
const SHARD_STRAGGLER_MILLI: u64 = 1_500;

impl HealthReport {
    /// Builds the report from the live telemetry plane. Pure function
    /// of its inputs; two identical runs produce identical reports.
    /// `attribution` (when the attribution plane is on) annotates each
    /// ranked offender with its dominant time component and an exemplar
    /// corr.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        now: SimTime,
        telemetry: &Telemetry,
        engine: &SloEngine,
        metrics: &Metrics,
        segments: &[SegmentSample],
        events_pending: u64,
        liveness_timeout: SimDuration,
        attribution: Option<&crate::attrib::AttributionReport>,
    ) -> HealthReport {
        let now_ns = now.as_nanos();
        let timeout_ns = liveness_timeout.as_nanos().max(1);

        let mut bridges = Vec::new();
        for (name, v) in metrics.gauges() {
            if let Some(rest) = name.strip_prefix("bridge.") {
                if let Some(platform) = rest.strip_suffix(".last_traffic_ns") {
                    let last = v.max(0) as u64;
                    let idle = now_ns.saturating_sub(last);
                    bridges.push(BridgeHealth {
                        platform: platform.to_owned(),
                        last_traffic_ns: last,
                        idle_ns: idle,
                        silent: idle > timeout_ns,
                    });
                }
            }
        }

        let interval_ns = telemetry.interval().as_nanos();
        let mut seg_health: Vec<SegmentHealth> = segments
            .iter()
            .map(|s| {
                let trailing = telemetry
                    .gauge_series(&format!("segment.{}.busy_ns", s.key))
                    .and_then(|series| {
                        let w = (series.len().saturating_sub(1)).min(SEGMENT_TREND_INTERVALS);
                        if w == 0 {
                            return None;
                        }
                        let newest = series.last_value()?;
                        let oldest = series.value_back(w)?;
                        let delta = (newest - oldest).max(0) as u64;
                        Some(delta.saturating_mul(1_000) / (w as u64 * interval_ns).max(1))
                    });
                let utilization_milli = trailing.unwrap_or_else(|| {
                    s.stats.busy.as_nanos().saturating_mul(1_000) / now_ns.max(1)
                });
                SegmentHealth {
                    label: s.label.clone(),
                    utilization_milli,
                    frames: s.stats.frames,
                    dropped: s.stats.dropped,
                }
            })
            .collect();
        seg_health.sort_by(|a, b| {
            b.utilization_milli
                .cmp(&a.utilization_milli)
                .then_with(|| a.label.cmp(&b.label))
        });

        let events_pending_trend = telemetry
            .gauge_series("sched.events_pending")
            .map(|s| s.values().collect())
            .unwrap_or_default();
        let (sched_lag_p99_ns, sched_lag_max_ns) = metrics
            .histogram("sched.lag_ns")
            .map(|h| {
                (
                    h.quantile_bound_ns(0.99).unwrap_or(0),
                    h.quantile_bound_ns(1.0).unwrap_or(0),
                )
            })
            .unwrap_or((0, 0));

        let alerts: Vec<AlertReport> = engine
            .objectives()
            .iter()
            .zip(engine.status().iter())
            .map(|(o, s)| AlertReport {
                name: o.name.clone(),
                subject: o.subject.clone(),
                state: s.state,
                since_ns: s.since.as_nanos(),
                burn_long_milli: s.burn_long_milli,
                burn_short_milli: s.burn_short_milli,
            })
            .collect();

        let mut top_offenders = Vec::new();
        for a in &alerts {
            if a.state != AlertState::Ok {
                top_offenders.push(Offender {
                    kind: "slo".to_owned(),
                    name: a.name.clone(),
                    subject: a.subject.clone(),
                    severity_milli: a.burn_long_milli,
                    dominant: String::new(),
                    exemplar_corr: 0,
                });
            }
        }
        for b in &bridges {
            if b.silent {
                top_offenders.push(Offender {
                    kind: "bridge-silent".to_owned(),
                    name: b.platform.clone(),
                    subject: format!("bridge:{}", b.platform),
                    severity_milli: b.idle_ns.saturating_mul(1_000) / timeout_ns,
                    dominant: String::new(),
                    exemplar_corr: 0,
                });
            }
        }
        for s in &seg_health {
            if s.utilization_milli >= SEGMENT_HOT_MILLI {
                top_offenders.push(Offender {
                    kind: "segment-hot".to_owned(),
                    name: s.label.clone(),
                    subject: s.label.clone(),
                    severity_milli: s.utilization_milli,
                    dominant: String::new(),
                    exemplar_corr: 0,
                });
            }
        }
        // A straggler shard holds an outsized share of the fleet's
        // execution time; its siblings' barrier stalls mirror it. The
        // conductor plants `shard.s{N}.exec_share_milli` gauges (1000 =
        // a perfectly balanced shard).
        for (name, v) in metrics.gauges() {
            let Some(rest) = name.strip_prefix("shard.s") else {
                continue;
            };
            let Some(id) = rest.strip_suffix(".exec_share_milli") else {
                continue;
            };
            let share = v.max(0) as u64;
            if id.bytes().all(|b| b.is_ascii_digit()) && share >= SHARD_STRAGGLER_MILLI {
                top_offenders.push(Offender {
                    kind: "shard-straggler".to_owned(),
                    name: format!("shard{id}"),
                    subject: format!("shard:{id}"),
                    severity_milli: share,
                    dominant: String::new(),
                    exemplar_corr: 0,
                });
            }
        }
        top_offenders.sort_by(|a, b| {
            b.severity_milli
                .cmp(&a.severity_milli)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.name.cmp(&b.name))
        });

        // Annotate each ranked offender with where the time actually
        // went. A latency SLO pulls an exemplar from its histogram's
        // slow tail (the first journey to cross a bucket above the
        // threshold). Subjects that map onto an attribution component
        // (`bridge:X`, `shard:N`) read their own row; an unmapped
        // subject — a shared segment, typically — is annotated with
        // the federation's hottest component, the doctor's best answer
        // to "whose time is it".
        for o in &mut top_offenders {
            if o.kind == "slo" {
                if let Some(obj) = engine.objectives().iter().find(|x| x.name == o.name) {
                    if let SloKind::LatencyAbove {
                        histogram,
                        threshold_ns,
                        ..
                    } = &obj.kind
                    {
                        if let Some(h) = metrics.histogram(histogram) {
                            o.exemplar_corr = h.exemplar_above_ns(*threshold_ns).unwrap_or(0);
                        }
                    }
                }
            }
            let Some(attr) = attribution else {
                continue;
            };
            let mapped = if o.subject.starts_with("bridge:") {
                attr.components
                    .get_key_value(o.subject.as_str())
                    .map(|(k, v)| (k.as_str(), v))
            } else if let Some(id) = o.subject.strip_prefix("shard:") {
                attr.components
                    .get_key_value(format!("shard:s{id}").as_str())
                    .map(|(k, v)| (k.as_str(), v))
            } else {
                None
            };
            if let Some((key, c)) = mapped.or_else(|| attr.top_component()) {
                o.dominant = format!("{key}/{}", c.dominant());
                if o.exemplar_corr == 0 {
                    o.exemplar_corr = c.exemplar_corr;
                }
            }
        }

        HealthReport {
            generated_ns: now_ns,
            interval_ns,
            samples: telemetry.samples(),
            events_pending,
            events_pending_trend,
            sched_lag_p99_ns,
            sched_lag_max_ns,
            bridges,
            top_segment: seg_health.first().map(|s| s.label.clone()),
            segments: seg_health,
            alerts,
            top_offenders,
        }
    }

    /// Renders the report as deterministic JSON (stable field order,
    /// integers only), byte-identical across identical runs.
    pub fn to_json(&self) -> String {
        use crate::trace::push_json_string;
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"generated_ns\": {},\n  \"interval_ns\": {},\n  \"samples\": {},\n",
            self.generated_ns, self.interval_ns, self.samples
        ));
        out.push_str(&format!(
            "  \"scheduler\": {{\"events_pending\": {}, \"lag_p99_ns\": {}, \"lag_max_ns\": {}, \"pending_trend\": [",
            self.events_pending, self.sched_lag_p99_ns, self.sched_lag_max_ns
        ));
        for (i, v) in self.events_pending_trend.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.to_string());
        }
        out.push_str("]},\n  \"bridges\": [");
        for (i, b) in self.bridges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"platform\": ");
            push_json_string(&mut out, &b.platform);
            out.push_str(&format!(
                ", \"last_traffic_ns\": {}, \"idle_ns\": {}, \"silent\": {}}}",
                b.last_traffic_ns, b.idle_ns, b.silent
            ));
        }
        if !self.bridges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"segments\": [");
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\": ");
            push_json_string(&mut out, &s.label);
            out.push_str(&format!(
                ", \"utilization_milli\": {}, \"frames\": {}, \"dropped\": {}}}",
                s.utilization_milli, s.frames, s.dropped
            ));
        }
        if !self.segments.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            push_json_string(&mut out, &a.name);
            out.push_str(", \"subject\": ");
            push_json_string(&mut out, &a.subject);
            out.push_str(&format!(
                ", \"state\": \"{}\", \"since_ns\": {}, \"burn_long_milli\": {}, \"burn_short_milli\": {}}}",
                a.state.as_str(),
                a.since_ns,
                a.burn_long_milli,
                a.burn_short_milli
            ));
        }
        if !self.alerts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"top_offenders\": [");
        for (i, o) in self.top_offenders.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"kind\": ");
            push_json_string(&mut out, &o.kind);
            out.push_str(", \"name\": ");
            push_json_string(&mut out, &o.name);
            out.push_str(", \"subject\": ");
            push_json_string(&mut out, &o.subject);
            out.push_str(&format!(", \"severity_milli\": {}", o.severity_milli));
            out.push_str(", \"dominant\": ");
            push_json_string(&mut out, &o.dominant);
            out.push_str(&format!(", \"exemplar_corr\": {}}}", o.exemplar_corr));
        }
        if !self.top_offenders.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"top_segment\": ");
        match &self.top_segment {
            Some(label) => push_json_string(&mut out, label),
            None => out.push_str("null"),
        }
        out.push_str("\n}\n");
        out
    }

    /// Summary map for quick assertions: objective name → state.
    pub fn alert_states(&self) -> BTreeMap<&str, AlertState> {
        self.alerts
            .iter()
            .map(|a| (a.name.as_str(), a.state))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::SamplerConfig;

    fn sample_cfg(ms: u64) -> SamplerConfig {
        SamplerConfig {
            interval: SimDuration::from_millis(ms),
            window: 16,
        }
    }

    fn liveness_objective(counter: &str) -> Objective {
        Objective {
            name: "live".to_owned(),
            subject: "bridge:test".to_owned(),
            kind: SloKind::Liveness {
                counter: counter.to_owned(),
                budget_ppm: 100_000,
            },
            warning: BurnRateRule {
                long_intervals: 4,
                short_intervals: 2,
                factor_milli: 2_500,
            },
            firing: BurnRateRule {
                long_intervals: 4,
                short_intervals: 2,
                factor_milli: 5_000,
            },
        }
    }

    #[test]
    fn liveness_objective_fires_when_counter_goes_silent() {
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();
        let mut t = Telemetry::new(sample_cfg(100));
        let mut engine = SloEngine::new(vec![liveness_objective("traffic")]);
        metrics.counter_add("traffic", 1);
        t.sample(SimTime::ZERO, &metrics);
        // Four healthy intervals.
        for i in 1..=4u64 {
            metrics.counter_add("traffic", 1);
            t.sample(SimTime::from_millis(100 * i), &metrics);
            engine.evaluate(SimTime::from_millis(100 * i), &t, &mut trace);
        }
        assert_eq!(engine.status()[0].state, AlertState::Ok);
        // Silence: counter stops moving.
        let mut fired_at = None;
        for i in 5..=10u64 {
            let now = SimTime::from_millis(100 * i);
            t.sample(now, &metrics);
            engine.evaluate(now, &t, &mut trace);
            if fired_at.is_none() && engine.status()[0].state == AlertState::Firing {
                fired_at = Some(now);
            }
        }
        // 2/4 long-window zeros → 500000 ppm → burn 5000 milli, and the
        // short window is all-zero, so the rule trips at the 2nd silent
        // sample.
        assert_eq!(fired_at, Some(SimTime::from_millis(600)));
        let fired: Vec<_> = engine
            .transitions()
            .iter()
            .filter(|tr| tr.to == AlertState::Firing)
            .collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].objective, "live");
        // Ok → Warning (one silent interval) → Firing.
        assert_eq!(trace.metrics().counter("slo.transitions"), 2);
        assert_eq!(trace.metrics().gauge("slo.live.state"), 2);
        assert_eq!(trace.metrics().gauge("slo.firing"), 1);
        // The transition is visible as an instant slo-engine span.
        assert!(trace
            .spans()
            .iter()
            .any(|s| s.source == "slo-engine" && s.stage == "alert.firing"));
    }

    #[test]
    fn latency_objective_burns_proportionally_to_violations() {
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();
        let mut t = Telemetry::new(sample_cfg(100));
        let obj = Objective {
            name: "lat".to_owned(),
            subject: "seg0".to_owned(),
            kind: SloKind::LatencyAbove {
                histogram: "h".to_owned(),
                threshold_ns: 1_000_000,
                budget_ppm: 100_000,
            },
            warning: BurnRateRule {
                long_intervals: 4,
                short_intervals: 1,
                factor_milli: 1_000,
            },
            firing: BurnRateRule {
                long_intervals: 4,
                short_intervals: 1,
                factor_milli: 4_000,
            },
        };
        let mut engine = SloEngine::new(vec![obj]);
        // The histogram must exist at the baseline sample; a metric's
        // first sighting records a baseline and pushes no delta.
        metrics.observe("h", SimDuration::from_micros(10));
        t.sample(SimTime::ZERO, &metrics);
        // Interval with 1 of 2 observations above 1 ms: 500000 ppm over
        // a 100000 ppm budget → burn 5000 milli → firing.
        metrics.observe("h", SimDuration::from_micros(10));
        metrics.observe("h", SimDuration::from_millis(5));
        t.sample(SimTime::from_millis(100), &metrics);
        engine.evaluate(SimTime::from_millis(100), &t, &mut trace);
        assert_eq!(engine.status()[0].state, AlertState::Firing);
        assert_eq!(engine.status()[0].burn_long_milli, 5_000);
        // All-good interval brings the short window back under.
        for _ in 0..8 {
            metrics.observe("h", SimDuration::from_micros(10));
        }
        t.sample(SimTime::from_millis(200), &metrics);
        engine.evaluate(SimTime::from_millis(200), &t, &mut trace);
        assert_eq!(engine.status()[0].state, AlertState::Ok);
        assert_eq!(engine.transitions().len(), 2);
    }

    #[test]
    fn doctor_localizes_silent_bridge_and_hot_segment() {
        let mut metrics = Metrics::default();
        let mut t = Telemetry::new(sample_cfg(100));
        metrics.gauge_set("bridge.upnp.last_traffic_ns", 100_000_000);
        metrics.gauge_set(
            "bridge.bluetooth.last_traffic_ns",
            SimTime::from_secs(9).as_nanos() as i64,
        );
        // Hot segment: busy 95 of every 100 ms across the window.
        for i in 0..=9i64 {
            metrics.gauge_set("segment.seg0.busy_ns", i * 95_000_000);
            metrics.gauge_set("segment.seg1.busy_ns", i * 1_000_000);
            metrics.gauge_set("sched.events_pending", 10 + i);
            t.sample(SimTime::from_millis(100 * i as u64), &metrics);
        }
        let engine = SloEngine::new(Vec::new());
        let segs = vec![
            SegmentSample {
                key: "seg0".to_owned(),
                label: "seg0:ethernet-10mbps-hub".to_owned(),
                stats: SegmentStats::default(),
            },
            SegmentSample {
                key: "seg1".to_owned(),
                label: "seg1:bluetooth-piconet".to_owned(),
                stats: SegmentStats::default(),
            },
        ];
        let report = HealthReport::build(
            SimTime::from_secs(10),
            &t,
            &engine,
            &metrics,
            &segs,
            7,
            SimDuration::from_secs(5),
            None,
        );
        assert_eq!(report.bridges.len(), 2);
        let upnp = report
            .bridges
            .iter()
            .find(|b| b.platform == "upnp")
            .unwrap();
        assert!(upnp.silent, "9.9 s idle > 5 s timeout");
        let bt = report
            .bridges
            .iter()
            .find(|b| b.platform == "bluetooth")
            .unwrap();
        assert!(!bt.silent);
        assert_eq!(
            report.top_segment.as_deref(),
            Some("seg0:ethernet-10mbps-hub")
        );
        assert_eq!(report.segments[0].utilization_milli, 950);
        assert_eq!(report.events_pending, 7);
        assert_eq!(report.events_pending_trend.len(), 10);
        // Offenders: the hot segment and the silent bridge, ranked.
        assert_eq!(report.top_offenders.len(), 2);
        assert_eq!(report.top_offenders[0].kind, "bridge-silent");
        assert_eq!(report.top_offenders[1].kind, "segment-hot");
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.contains("\"silent\": true"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn doctor_ranks_straggler_shard() {
        let mut metrics = Metrics::default();
        let t = Telemetry::new(sample_cfg(100));
        // Shard 2 holds 2.1x its fair share of execution time; its three
        // siblings idle at barriers. Shard 0 is busy but under the 1.5x
        // threshold.
        metrics.gauge_set("shard.s0.exec_share_milli", 1_200);
        metrics.gauge_set("shard.s1.exec_share_milli", 350);
        metrics.gauge_set("shard.s2.exec_share_milli", 2_100);
        metrics.gauge_set("shard.s3.exec_share_milli", 350);
        let engine = SloEngine::new(Vec::new());
        let report = HealthReport::build(
            SimTime::from_secs(1),
            &t,
            &engine,
            &metrics,
            &[],
            0,
            SimDuration::from_secs(5),
            None,
        );
        assert_eq!(report.top_offenders.len(), 1);
        assert_eq!(report.top_offenders[0].kind, "shard-straggler");
        assert_eq!(report.top_offenders[0].name, "shard2");
        assert_eq!(report.top_offenders[0].subject, "shard:2");
        assert_eq!(report.top_offenders[0].severity_milli, 2_100);
    }

    /// Equal-severity offenders rank on (kind, name), never on map
    /// iteration or insertion order: the incident trigger plane diffs
    /// consecutive rank lists, so a severity tie that re-shuffled the
    /// ranking would snapshot phantom `OffenderRankChange` bundles.
    #[test]
    fn doctor_offender_ranking_breaks_ties_deterministically() {
        let mut metrics = Metrics::default();
        let mut t = Telemetry::new(sample_cfg(100));
        // Silent bridge idle 7.5 s of a 5 s timeout: severity 1500.
        metrics.gauge_set(
            "bridge.upnp.last_traffic_ns",
            SimTime::from_millis(2_500).as_nanos() as i64,
        );
        // Two straggler shards at exactly the same share: severity 1500.
        metrics.gauge_set("shard.s3.exec_share_milli", 1_500);
        metrics.gauge_set("shard.s1.exec_share_milli", 1_500);
        // Two equally hot segments, busy 90 of every 100 ms: 900 each.
        for i in 0..=9i64 {
            metrics.gauge_set("segment.seg0.busy_ns", i * 90_000_000);
            metrics.gauge_set("segment.seg1.busy_ns", i * 90_000_000);
            t.sample(SimTime::from_millis(100 * i as u64), &metrics);
        }
        let engine = SloEngine::new(Vec::new());
        let segs = vec![
            SegmentSample {
                key: "seg1".to_owned(),
                label: "seg1:ethernet-100mbps-switch".to_owned(),
                stats: SegmentStats::default(),
            },
            SegmentSample {
                key: "seg0".to_owned(),
                label: "seg0:ethernet-100mbps-switch".to_owned(),
                stats: SegmentStats::default(),
            },
        ];
        let report = HealthReport::build(
            SimTime::from_secs(10),
            &t,
            &engine,
            &metrics,
            &segs,
            0,
            SimDuration::from_secs(5),
            None,
        );
        let ranked: Vec<(&str, &str, u64)> = report
            .top_offenders
            .iter()
            .map(|o| (o.kind.as_str(), o.name.as_str(), o.severity_milli))
            .collect();
        assert_eq!(
            ranked,
            vec![
                ("bridge-silent", "upnp", 1_500),
                ("shard-straggler", "shard1", 1_500),
                ("shard-straggler", "shard3", 1_500),
                ("segment-hot", "seg0:ethernet-100mbps-switch", 900),
                ("segment-hot", "seg1:ethernet-100mbps-switch", 900),
            ]
        );
    }

    /// Pins the engine's ordering guarantees across interleaved
    /// objectives: `transitions` is strictly ordered by evaluation time
    /// and, within one evaluation instant, by objective configuration
    /// order; `HealthReport::alert_states` is a `BTreeMap`, so its
    /// iteration order is the lexicographic name order regardless of
    /// how the objectives were configured or when they transitioned.
    #[test]
    fn alert_states_and_transitions_keep_total_order_across_interleaved_objectives() {
        let mut metrics = Metrics::default();
        let mut trace = Trace::default();
        let mut t = Telemetry::new(sample_cfg(100));
        // Deliberately non-lexicographic configuration order.
        let objective = |name: &str, counter: &str| Objective {
            name: name.to_owned(),
            subject: format!("bridge:{name}"),
            ..liveness_objective(counter)
        };
        let mut engine = SloEngine::new(vec![
            objective("zeta", "c1"),
            objective("alpha", "c2"),
            objective("mid", "c3"),
        ]);
        for c in ["c1", "c2", "c3"] {
            metrics.counter_add(c, 1);
        }
        t.sample(SimTime::ZERO, &metrics);
        // Four healthy intervals, then zeta and mid go silent together
        // while alpha stays healthy two intervals longer — their
        // transitions interleave with alpha's.
        for i in 1..=10u64 {
            if i <= 4 {
                metrics.counter_add("c1", 1);
                metrics.counter_add("c3", 1);
            }
            if i <= 6 {
                metrics.counter_add("c2", 1);
            }
            let now = SimTime::from_millis(100 * i);
            t.sample(now, &metrics);
            engine.evaluate(now, &t, &mut trace);
        }
        let seen: Vec<(u64, &str, AlertState)> = engine
            .transitions()
            .iter()
            .map(|tr| (tr.at.as_nanos(), tr.objective.as_str(), tr.to))
            .collect();
        // Times never decrease, and same-instant transitions follow the
        // configuration order (zeta before mid — alpha transitions at
        // its own, later instants).
        for pair in seen.windows(2) {
            assert!(
                pair[0].0 <= pair[1].0,
                "transition log out of order: {seen:?}"
            );
        }
        let config_index = |name: &str| {
            ["zeta", "alpha", "mid"]
                .iter()
                .position(|n| *n == name)
                .unwrap()
        };
        for pair in seen.windows(2) {
            if pair[0].0 == pair[1].0 {
                assert!(
                    config_index(pair[0].1) < config_index(pair[1].1),
                    "same-instant transitions must follow configuration order: {seen:?}"
                );
            }
        }
        // zeta and mid walked Ok→Warning→Firing in lockstep; alpha
        // followed two intervals later.
        let per = |name: &str| {
            seen.iter()
                .filter(|(_, n, _)| *n == name)
                .map(|&(at, _, to)| (at, to))
                .collect::<Vec<_>>()
        };
        assert_eq!(per("zeta"), per("mid"));
        assert_eq!(per("zeta").len(), 2);
        assert_eq!(per("alpha").len(), 2);
        assert!(per("alpha")[0].0 > per("zeta")[1].0);

        // The report's summary map re-sorts lexicographically.
        let report = HealthReport::build(
            SimTime::from_secs(1),
            &t,
            &engine,
            &metrics,
            &[],
            0,
            SimDuration::from_secs(5),
            None,
        );
        // Alerts stay in configuration order…
        let configured: Vec<&str> = report.alerts.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(configured, vec!["zeta", "alpha", "mid"]);
        // …while the BTreeMap summary iterates in name order.
        let keys: Vec<&str> = report.alert_states().into_keys().collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    /// Offenders carry their attribution annotation: mapped subjects
    /// read their own component, unmapped subjects fall back to the
    /// federation's hottest component, and a latency SLO pulls its
    /// exemplar from the guarded histogram's slow tail.
    #[test]
    fn offenders_annotated_with_dominant_component_and_exemplar() {
        use crate::attrib::{AttributionReport, ComponentTimes};

        let mut metrics = Metrics::default();
        let mut trace = Trace::default();
        let mut t = Telemetry::new(sample_cfg(100));
        // A latency SLO driven straight to firing, with a correlated
        // slow observation planting the exemplar.
        let obj = Objective {
            name: "lat".to_owned(),
            subject: "seg0:hub".to_owned(),
            kind: SloKind::LatencyAbove {
                histogram: "h".to_owned(),
                threshold_ns: 1_000_000,
                budget_ppm: 100_000,
            },
            warning: BurnRateRule {
                long_intervals: 4,
                short_intervals: 1,
                factor_milli: 1_000,
            },
            firing: BurnRateRule {
                long_intervals: 4,
                short_intervals: 1,
                factor_milli: 4_000,
            },
        };
        let mut engine = SloEngine::new(vec![obj]);
        metrics.observe("h", SimDuration::from_micros(10));
        t.sample(SimTime::ZERO, &metrics);
        metrics.observe_corr("h", SimDuration::from_millis(5), 0x77);
        t.sample(SimTime::from_millis(100), &metrics);
        engine.evaluate(SimTime::from_millis(100), &t, &mut trace);
        assert_eq!(engine.status()[0].state, AlertState::Firing);
        // A silent bridge with its own attribution component.
        metrics.gauge_set("bridge.upnp.last_traffic_ns", 0);

        let mut attribution = AttributionReport::default();
        attribution.components.insert(
            "bridge:upnp".to_owned(),
            ComponentTimes {
                self_ns: 10,
                exemplar_corr: 42,
                ..ComponentTimes::default()
            },
        );
        attribution.components.insert(
            "process:umiddle-runtime".to_owned(),
            ComponentTimes {
                self_ns: 5,
                queue_ns: 999,
                exemplar_corr: 9,
                ..ComponentTimes::default()
            },
        );
        let report = HealthReport::build(
            SimTime::from_secs(10),
            &t,
            &engine,
            &metrics,
            &[],
            0,
            SimDuration::from_secs(5),
            Some(&attribution),
        );
        let by_kind = |kind: &str| {
            report
                .top_offenders
                .iter()
                .find(|o| o.kind == kind)
                .unwrap_or_else(|| panic!("offender {kind} present"))
        };
        let slo = by_kind("slo");
        // Unmapped subject → hottest component; exemplar from the
        // histogram's slow tail, not from the component.
        assert_eq!(slo.dominant, "process:umiddle-runtime/queue");
        assert_eq!(slo.exemplar_corr, 0x77);
        let silent = by_kind("bridge-silent");
        assert_eq!(silent.dominant, "bridge:upnp/self");
        assert_eq!(silent.exemplar_corr, 42);
        // The annotations survive the JSON render.
        let json = report.to_json();
        assert!(json.contains("\"dominant\": \"process:umiddle-runtime/queue\""));
        assert!(json.contains(&format!("\"exemplar_corr\": {}", 0x77)));
    }
}
