//! Shared, immutable byte buffers for the zero-copy data path.
//!
//! A [`Payload`] is an offline-friendly `bytes`-lite: a reference-counted
//! allocation (`Arc<Vec<u8>>`) plus an `(offset, len)` view into it.
//! `clone()`, [`Payload::slice`], and [`Payload::split_to`] are O(1) and
//! never copy bytes; the underlying allocation is immutable once frozen,
//! so any number of views — a multicast fan-out, a retransmit queue, a
//! decoded message body — can alias it safely.
//!
//! [`PayloadBuilder`] covers the encode side: incremental appends into a
//! private `Vec<u8>`, then a zero-copy [`PayloadBuilder::freeze`] that
//! moves the vector behind the `Arc`.
//!
//! The module keeps thread-local **copy accounting** so copy-elimination
//! is observable rather than asserted: every fresh allocation, every byte
//! physically copied into payload storage, and every shared (O(1)) clone
//! is counted. Benches and experiments read [`stats`] / [`take_stats`]
//! and export the numbers next to their timing results.

use std::borrow::Borrow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, Range};
use std::sync::Arc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES_COPIED: Cell<u64> = const { Cell::new(0) };
    static SHARED_CLONES: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the thread-local payload copy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PayloadStats {
    /// Fresh backing allocations (builder freezes, `From` conversions).
    pub allocs: u64,
    /// Bytes physically copied into payload storage. Zero-copy paths
    /// (clone, slice, split, `From<Vec<u8>>`) never increment this.
    pub bytes_copied: u64,
    /// O(1) clones that shared an existing allocation.
    pub shared_clones: u64,
}

/// Reads the current thread's payload accounting counters.
pub fn stats() -> PayloadStats {
    PayloadStats {
        allocs: ALLOCS.with(Cell::get),
        bytes_copied: BYTES_COPIED.with(Cell::get),
        shared_clones: SHARED_CLONES.with(Cell::get),
    }
}

/// Reads and resets the current thread's payload accounting counters.
pub fn take_stats() -> PayloadStats {
    let s = stats();
    ALLOCS.with(|c| c.set(0));
    BYTES_COPIED.with(|c| c.set(0));
    SHARED_CLONES.with(|c| c.set(0));
    s
}

fn count_alloc(copied: usize) {
    ALLOCS.with(|c| c.set(c.get() + 1));
    if copied > 0 {
        BYTES_COPIED.with(|c| c.set(c.get() + copied as u64));
    }
}

fn count_copy(copied: usize) {
    if copied > 0 {
        BYTES_COPIED.with(|c| c.set(c.get() + copied as u64));
    }
}

/// A cheaply cloneable, immutable view of a shared byte buffer.
///
/// # Examples
///
/// ```
/// use simnet::Payload;
///
/// let p = Payload::from(vec![1u8, 2, 3, 4, 5]);
/// let head = p.slice(0..2);
/// let tail = p.slice(2..5);
/// assert_eq!(&head[..], &[1, 2]);
/// assert_eq!(&tail[..], &[3, 4, 5]);
/// // All three views share one allocation.
/// assert!(p.shares_buffer(&head) && p.shares_buffer(&tail));
/// ```
pub struct Payload {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Clone for Payload {
    fn clone(&self) -> Payload {
        SHARED_CLONES.with(|c| c.set(c.get() + 1));
        Payload {
            buf: Arc::clone(&self.buf),
            off: self.off,
            len: self.len,
        }
    }
}

impl Payload {
    /// The empty payload. Does not allocate per call (a shared static
    /// would need lazy init; an `Arc<Vec>` of capacity 0 is allocation
    /// of the header only).
    pub fn new() -> Payload {
        Payload {
            buf: Arc::new(Vec::new()),
            off: 0,
            len: 0,
        }
    }

    /// Wraps an existing vector without copying its bytes.
    pub fn from_vec(v: Vec<u8>) -> Payload {
        count_alloc(0);
        let len = v.len();
        Payload {
            buf: Arc::new(v),
            off: 0,
            len,
        }
    }

    /// Copies a slice into a fresh payload (the one place a copy is the
    /// point — counted as such).
    pub fn copy_from_slice(s: &[u8]) -> Payload {
        count_alloc(s.len());
        Payload {
            buf: Arc::new(s.to_vec()),
            off: 0,
            len: s.len(),
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// O(1) sub-view of `range` (relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: Range<usize>) -> Payload {
        assert!(range.start <= range.end, "slice range is decreasing");
        assert!(range.end <= self.len, "slice range out of bounds");
        SHARED_CLONES.with(|c| c.set(c.get() + 1));
        Payload {
            buf: Arc::clone(&self.buf),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Splits off and returns the first `n` bytes; `self` advances to the
    /// remainder. O(1), no copy.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Payload {
        assert!(n <= self.len, "split_to out of bounds");
        let head = self.slice(0..n);
        self.off += n;
        self.len -= n;
        head
    }

    /// Drops the first `n` bytes of the view in place. O(1), no copy.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance out of bounds");
        self.off += n;
        self.len -= n;
    }

    /// Returns `true` if both views alias the same backing allocation
    /// (regardless of offsets). The cheap-clone identity check used by
    /// the property tests.
    pub fn shares_buffer(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// Copies the viewed bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::new()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Payload {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Bounded hex preview so debug-printing a frame doesn't dump MBs.
        const PREVIEW: usize = 16;
        write!(f, "Payload[{}B:", self.len)?;
        for b in self.as_slice().iter().take(PREVIEW) {
            write!(f, " {b:02x}")?;
        }
        if self.len > PREVIEW {
            write!(f, " …")?;
        }
        write!(f, "]")
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Payload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Payload {
    fn partial_cmp(&self, other: &Payload) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Payload {
    fn cmp(&self, other: &Payload) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::from_vec(v)
    }
}
impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Payload {
        Payload::copy_from_slice(s)
    }
}
impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(s: &[u8; N]) -> Payload {
        Payload::copy_from_slice(s)
    }
}
impl From<String> for Payload {
    fn from(s: String) -> Payload {
        Payload::from_vec(s.into_bytes())
    }
}
impl From<&str> for Payload {
    fn from(s: &str) -> Payload {
        Payload::copy_from_slice(s.as_bytes())
    }
}
impl From<Box<[u8]>> for Payload {
    fn from(b: Box<[u8]>) -> Payload {
        Payload::from_vec(b.into_vec())
    }
}

impl From<Payload> for Vec<u8> {
    /// Recovers the bytes. When this view is the whole buffer and the
    /// last reference, the vector is moved out without copying.
    fn from(p: Payload) -> Vec<u8> {
        if p.off == 0 {
            match Arc::try_unwrap(p.buf) {
                Ok(mut v) => {
                    v.truncate(p.len);
                    return v;
                }
                Err(buf) => return buf[p.off..p.off + p.len].to_vec(),
            }
        }
        p.to_vec()
    }
}

impl IntoIterator for Payload {
    type Item = u8;
    type IntoIter = PayloadIter;
    fn into_iter(self) -> PayloadIter {
        PayloadIter {
            payload: self,
            pos: 0,
        }
    }
}

impl<'p> IntoIterator for &'p Payload {
    type Item = &'p u8;
    type IntoIter = std::slice::Iter<'p, u8>;
    fn into_iter(self) -> std::slice::Iter<'p, u8> {
        self.as_slice().iter()
    }
}

/// Owning byte iterator over a [`Payload`].
#[derive(Debug)]
pub struct PayloadIter {
    payload: Payload,
    pos: usize,
}

impl Iterator for PayloadIter {
    type Item = u8;
    fn next(&mut self) -> Option<u8> {
        let b = self.payload.as_slice().get(self.pos).copied();
        self.pos += 1;
        b
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.payload.len().saturating_sub(self.pos);
        (left, Some(left))
    }
}
impl ExactSizeIterator for PayloadIter {}

/// Incremental encoder producing a [`Payload`] with a single allocation
/// and a zero-copy freeze.
///
/// # Examples
///
/// ```
/// use simnet::PayloadBuilder;
///
/// let mut b = PayloadBuilder::with_capacity(8);
/// b.push(0x01);
/// b.extend_from_slice(b"abc");
/// let at = b.reserve_u32_le();
/// b.patch_u32_le(at, 7);
/// let p = b.freeze();
/// assert_eq!(&p[..], &[0x01, b'a', b'b', b'c', 7, 0, 0, 0]);
/// ```
#[derive(Debug, Default)]
pub struct PayloadBuilder {
    buf: Vec<u8>,
}

impl PayloadBuilder {
    /// Creates an empty builder.
    pub fn new() -> PayloadBuilder {
        PayloadBuilder::default()
    }

    /// Creates a builder with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> PayloadBuilder {
        PayloadBuilder {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn push(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Appends a little-endian `u16`.
    pub fn u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a zeroed 4-byte slot and returns its offset, for length
    /// prefixes patched after the body is encoded (this is what lets
    /// framing avoid a second buffer + copy).
    pub fn reserve_u32_le(&mut self) -> usize {
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0; 4]);
        at
    }

    /// Overwrites a previously reserved 4-byte slot.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not a valid reserved offset.
    pub fn patch_u32_le(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Overwrites one already-written byte (for codecs whose length or
    /// flag fields are not 4-byte LE).
    ///
    /// # Panics
    ///
    /// Panics if `at` is past the bytes written so far.
    pub fn patch_u8(&mut self, at: usize, v: u8) {
        self.buf[at] = v;
    }

    /// Back-patches a batch of length-prefixed records in one sweep —
    /// the vectored-framing finish step. Each offset in `marks` must be
    /// a slot from [`reserve_u32_le`](PayloadBuilder::reserve_u32_le),
    /// and the records must be contiguous: record *i*'s body runs from
    /// just after its slot to the next mark (or the end of the buffer),
    /// so one pass over the marks finalizes the whole batch. The bytes
    /// produced are identical to framing each record in its own builder
    /// and concatenating the results.
    ///
    /// # Panics
    ///
    /// Panics if a mark is out of bounds or the marks are not in
    /// ascending order.
    pub fn patch_frame_lens(&mut self, marks: &[usize]) {
        for (i, &at) in marks.iter().enumerate() {
            let next = marks.get(i + 1).copied().unwrap_or(self.buf.len());
            let body = next
                .checked_sub(at + 4)
                .expect("frame marks must ascend with 4-byte slots");
            self.patch_u32_le(at, body as u32);
        }
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Freezes the builder into an immutable [`Payload`] without copying:
    /// the accumulated vector moves behind the `Arc`.
    pub fn freeze(self) -> Payload {
        Payload::from_vec(self.buf)
    }

    /// Consumes the builder and returns the raw vector (for callers that
    /// still need `Vec<u8>`).
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// An ordered queue of [`Payload`] chunks acting as one logical byte
/// stream.
///
/// This is the shared building block for stream reassembly and frame
/// decoding: bytes arriving from a stream are pushed as whole chunks
/// (no concatenation copy), and consumers read from the front either by
/// peeking a bounded prefix (for length fields that may straddle chunk
/// boundaries) or by taking `n` bytes. A take that falls inside the head
/// chunk is zero-copy (`split_to`); only takes that span chunks assemble
/// a fresh buffer.
///
/// Draining from the front is O(bytes drained) regardless of how much is
/// buffered behind it — unlike the `Vec::drain(..n)` pattern, which
/// shifts the entire tail and turns bulk decoding quadratic.
///
/// # Examples
///
/// ```
/// use simnet::{ChunkQueue, Payload};
///
/// let mut q = ChunkQueue::new();
/// q.push(Payload::from(vec![1u8, 2, 3]));
/// q.push(Payload::from(vec![4u8, 5]));
/// assert_eq!(q.len(), 5);
/// let head = q.take(2);
/// assert_eq!(&head[..], &[1, 2]);
/// let rest = q.take(3);
/// assert_eq!(&rest[..], &[3, 4, 5]);
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ChunkQueue {
    chunks: VecDeque<Payload>,
    total: usize,
}

impl ChunkQueue {
    /// Creates an empty queue.
    pub fn new() -> ChunkQueue {
        ChunkQueue::default()
    }

    /// Total buffered bytes across all chunks.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Returns `true` if no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Appends a chunk to the back of the stream without copying. Empty
    /// chunks are dropped.
    pub fn push(&mut self, chunk: Payload) {
        if chunk.is_empty() {
            return;
        }
        self.total += chunk.len();
        self.chunks.push_back(chunk);
    }

    /// Appends a borrowed slice (one copy into a fresh chunk). Prefer
    /// [`push`](Self::push) when a `Payload` is already in hand.
    pub fn push_slice(&mut self, bytes: &[u8]) {
        self.push(Payload::copy_from_slice(bytes));
    }

    /// Copies up to `out.len()` bytes from the front of the stream into
    /// `out` without consuming them; returns how many were written. Used
    /// to read fixed-size headers that may straddle chunk boundaries.
    pub fn peek_into(&self, out: &mut [u8]) -> usize {
        let mut written = 0;
        for chunk in &self.chunks {
            if written == out.len() {
                break;
            }
            let n = (out.len() - written).min(chunk.len());
            out[written..written + n].copy_from_slice(&chunk[..n]);
            written += n;
        }
        written
    }

    /// Removes and returns exactly `n` bytes from the front. Zero-copy
    /// when `n` falls within the head chunk; assembles one fresh buffer
    /// when it spans several.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes are buffered.
    pub fn take(&mut self, n: usize) -> Payload {
        assert!(n <= self.total, "ChunkQueue::take past end of stream");
        self.total -= n;
        if n == 0 {
            return Payload::new();
        }
        let head_len = self.chunks[0].len();
        if n < head_len {
            return self.chunks[0].split_to(n);
        }
        if n == head_len {
            return self.chunks.pop_front().expect("head chunk exists");
        }
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let head = &mut self.chunks[0];
            if head.len() <= remaining {
                remaining -= head.len();
                let chunk = self.chunks.pop_front().expect("head chunk exists");
                out.extend_from_slice(&chunk);
            } else {
                out.extend_from_slice(&head.split_to(remaining));
                remaining = 0;
            }
        }
        count_copy(out.len());
        Payload::from_vec(out)
    }

    /// Discards all buffered bytes.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_backing() {
        let p = Payload::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let c = p.clone();
        let s = p.slice(2..6);
        assert!(p.shares_buffer(&c));
        assert!(p.shares_buffer(&s));
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        assert_eq!(c, p);
    }

    #[test]
    fn split_to_partitions_without_copy() {
        let mut p = Payload::from(vec![9u8; 10]);
        let orig = p.clone();
        let head = p.split_to(4);
        assert_eq!(head.len(), 4);
        assert_eq!(p.len(), 6);
        assert!(head.shares_buffer(&orig) && p.shares_buffer(&orig));
    }

    #[test]
    fn advance_drops_prefix() {
        let mut p = Payload::from(vec![1u8, 2, 3]);
        p.advance(2);
        assert_eq!(&p[..], &[3]);
        p.advance(1);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut p = Payload::from(vec![1u8]);
        let _ = p.split_to(2);
    }

    #[test]
    fn from_vec_does_not_copy_bytes() {
        let before = take_stats();
        assert_eq!(before.bytes_copied, 0);
        let _p = Payload::from(vec![0u8; 4096]);
        let s = take_stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.bytes_copied, 0, "From<Vec> must not copy");
    }

    #[test]
    fn copy_from_slice_is_counted() {
        let _ = take_stats();
        let _p = Payload::from(&b"hello"[..]);
        let s = take_stats();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.bytes_copied, 5);
    }

    #[test]
    fn clones_are_counted_as_shared() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let _ = take_stats();
        let _a = p.slice(0..2);
        let mut b = p.clone();
        let _c = b.split_to(1);
        let s = take_stats();
        assert_eq!(s.allocs, 0);
        assert_eq!(s.bytes_copied, 0);
        // slice + clone + split_to each count as a share.
        assert_eq!(s.shared_clones, 3);
    }

    #[test]
    fn into_vec_moves_when_unique() {
        let p = Payload::from(vec![7u8; 32]);
        let v: Vec<u8> = p.into();
        assert_eq!(v, vec![7u8; 32]);
        // Truncating view still moves when it starts at offset 0.
        let mut p = Payload::from(vec![1u8, 2, 3, 4]);
        p.advance(0);
        let head_only = {
            let mut q = p.clone();
            let h = q.split_to(2);
            drop(q);
            drop(p);
            h
        };
        let v: Vec<u8> = head_only.into();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn builder_freeze_round_trip() {
        let mut b = PayloadBuilder::new();
        b.u16_le(0x0102);
        b.u32_le(0x03040506);
        b.u64_le(0x0708090a0b0c0d0e);
        let at = b.reserve_u32_le();
        b.extend_from_slice(b"xyz");
        b.patch_u32_le(at, 3);
        let p = b.freeze();
        assert_eq!(p.len(), 2 + 4 + 8 + 4 + 3);
        assert_eq!(&p[0..2], &[0x02, 0x01]);
        assert_eq!(&p[14..18], &[3, 0, 0, 0]);
        assert_eq!(&p[18..], b"xyz");
    }

    #[test]
    fn builder_patch_frame_lens_back_patches_every_slot() {
        // Three length-prefixed frames built in one pass: each slot gets
        // the byte count between it and the next mark (or the end).
        let mut b = PayloadBuilder::new();
        let mut marks = Vec::new();
        for body in [&b"a"[..], &b"bcd"[..], &b""[..]] {
            marks.push(b.reserve_u32_le());
            b.extend_from_slice(body);
        }
        b.patch_frame_lens(&marks);
        let p = b.freeze();
        assert_eq!(&p[0..4], &[1, 0, 0, 0]);
        assert_eq!(p[4], b'a');
        assert_eq!(&p[5..9], &[3, 0, 0, 0]);
        assert_eq!(&p[9..12], b"bcd");
        assert_eq!(&p[12..16], &[0, 0, 0, 0]);
        assert_eq!(p.len(), 16);
    }

    #[test]
    #[should_panic(expected = "frame marks must ascend")]
    fn builder_patch_frame_lens_rejects_descending_marks() {
        let mut b = PayloadBuilder::new();
        let first = b.reserve_u32_le();
        let second = b.reserve_u32_le();
        b.patch_frame_lens(&[second, first]);
    }

    #[test]
    fn chunk_queue_take_within_head_is_zero_copy() {
        let mut q = ChunkQueue::new();
        let big = Payload::from(vec![7u8; 100]);
        q.push(big.clone());
        let _ = take_stats();
        let head = q.take(40);
        let rest = q.take(60);
        let s = take_stats();
        assert!(head.shares_buffer(&big) && rest.shares_buffer(&big));
        assert_eq!(s.allocs, 0);
        assert_eq!(s.bytes_copied, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn chunk_queue_take_spanning_chunks_assembles_once() {
        let mut q = ChunkQueue::new();
        q.push(Payload::from(vec![1u8, 2]));
        q.push(Payload::from(vec![3u8, 4, 5]));
        q.push(Payload::from(vec![6u8]));
        let _ = take_stats();
        let all = q.take(6);
        let s = take_stats();
        assert_eq!(&all[..], &[1, 2, 3, 4, 5, 6]);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.bytes_copied, 6);
    }

    #[test]
    fn chunk_queue_peek_straddles_boundaries() {
        let mut q = ChunkQueue::new();
        q.push(Payload::from(vec![0x78u8, 0x56]));
        q.push(Payload::from(vec![0x34u8, 0x12, 0xaa]));
        let mut hdr = [0u8; 4];
        assert_eq!(q.peek_into(&mut hdr), 4);
        assert_eq!(u32::from_le_bytes(hdr), 0x12345678);
        // Peeking does not consume.
        assert_eq!(q.len(), 5);
        let mut long = [0u8; 8];
        assert_eq!(q.peek_into(&mut long), 5);
    }

    #[test]
    #[should_panic(expected = "take past end")]
    fn chunk_queue_take_past_end_panics() {
        let mut q = ChunkQueue::new();
        q.push_slice(b"ab");
        let _ = q.take(3);
    }

    #[test]
    fn equality_and_ordering_are_by_bytes() {
        let a = Payload::from(vec![1u8, 2]);
        let b = Payload::from(vec![1u8, 2]);
        let c = Payload::from(vec![1u8, 3]);
        assert_eq!(a, b);
        assert!(a < c);
        assert!(a == vec![1u8, 2]);
        assert!(a == [1u8, 2]);
    }

    #[test]
    fn iterators_cover_the_view() {
        let p = Payload::from(vec![5u8, 6, 7]);
        let owned: Vec<u8> = p.clone().into_iter().collect();
        assert_eq!(owned, vec![5, 6, 7]);
        let borrowed: Vec<u8> = (&p).into_iter().copied().collect();
        assert_eq!(borrowed, vec![5, 6, 7]);
        let sliced: Vec<u8> = p.slice(1..3).into_iter().collect();
        assert_eq!(sliced, vec![6, 7]);
    }

    #[test]
    fn debug_preview_is_bounded() {
        let p = Payload::from(vec![0xAAu8; 100]);
        let s = format!("{p:?}");
        assert!(s.starts_with("Payload[100B:"));
        assert!(s.len() < 80, "debug output stays short: {s}");
    }
}
