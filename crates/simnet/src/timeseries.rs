//! In-run windowed time series over the metrics registry.
//!
//! A [`Telemetry`] store holds one bounded ring buffer per metric. The
//! world's timer-wheel-driven sampler (see
//! [`World::enable_telemetry`](crate::World::enable_telemetry)) calls
//! [`Telemetry::sample`] at a fixed virtual-time interval; each sample
//! folds the *delta* since the previous sample of every counter and
//! histogram (and the current value of every gauge) into the rings, so
//! rates, trends and high-watermarks are available while the federation
//! is still running instead of only at exit.
//!
//! Everything is integer nanoseconds and ordered maps, so two seeded
//! runs produce byte-identical windows ([`TelemetryWindow::to_json`]).
//!
//! Baseline rule: the first time a metric is seen, the sampler records
//! its current value as the baseline and pushes *no* delta — a counter
//! that accumulated before telemetry was enabled does not appear as one
//! giant first interval. Gauges push their value from the first sighting.

use std::collections::{BTreeMap, VecDeque};

use crate::time::{SimDuration, SimTime};
use crate::trace::{Histogram, Metrics, LATENCY_BUCKET_BOUNDS_NS};

/// Number of histogram buckets (the 1–2–5 bounds plus overflow).
pub const BUCKET_COUNT: usize = LATENCY_BUCKET_BOUNDS_NS.len() + 1;

/// Configuration of the periodic sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Virtual time between samples. Sample instants snap to multiples
    /// of the interval, so timestamps are stable across topology edits.
    pub interval: SimDuration,
    /// Ring capacity: how many per-interval samples each series keeps.
    pub window: usize,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: SimDuration::from_secs(1),
            window: 64,
        }
    }
}

/// Ring of per-interval deltas of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSeries {
    deltas: VecDeque<u64>,
    last: u64,
    high_watermark: u64,
}

impl CounterSeries {
    fn new(baseline: u64) -> CounterSeries {
        CounterSeries {
            deltas: VecDeque::new(),
            last: baseline,
            high_watermark: 0,
        }
    }

    fn push(&mut self, value: u64, window: usize) {
        let delta = value.saturating_sub(self.last);
        self.last = value;
        self.high_watermark = self.high_watermark.max(delta);
        if self.deltas.len() >= window {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
    }

    /// Per-interval deltas, oldest first.
    pub fn deltas(&self) -> impl Iterator<Item = u64> + '_ {
        self.deltas.iter().copied()
    }

    /// Number of sampled intervals currently in the ring.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` when no interval has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Cumulative counter value at the last sample.
    pub fn last_value(&self) -> u64 {
        self.last
    }

    /// Largest per-interval delta ever observed (not bounded by the
    /// ring: a spike stays visible after its samples age out).
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Sum of the last `n` deltas plus how many intervals that covered
    /// and how many of them were zero (silent).
    pub fn window_sum(&self, n: usize) -> (u64, usize, usize) {
        let take = n.min(self.deltas.len());
        let mut sum = 0u64;
        let mut zeros = 0usize;
        for &d in self.deltas.iter().rev().take(take) {
            sum = sum.saturating_add(d);
            if d == 0 {
                zeros += 1;
            }
        }
        (sum, take, zeros)
    }
}

/// Ring of sampled values of one gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSeries {
    values: VecDeque<i64>,
    high_watermark: i64,
    low_watermark: i64,
}

impl GaugeSeries {
    fn new() -> GaugeSeries {
        GaugeSeries {
            values: VecDeque::new(),
            high_watermark: i64::MIN,
            low_watermark: i64::MAX,
        }
    }

    fn push(&mut self, value: i64, window: usize) {
        self.high_watermark = self.high_watermark.max(value);
        self.low_watermark = self.low_watermark.min(value);
        if self.values.len() >= window {
            self.values.pop_front();
        }
        self.values.push_back(value);
    }

    /// Sampled values, oldest first.
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        self.values.iter().copied()
    }

    /// Number of samples currently in the ring.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the gauge has not been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Most recently sampled value, if any.
    pub fn last_value(&self) -> Option<i64> {
        self.values.back().copied()
    }

    /// Value `n` samples before the newest one, if the ring reaches
    /// that far back.
    pub fn value_back(&self, n: usize) -> Option<i64> {
        let len = self.values.len();
        if n < len {
            self.values.get(len - 1 - n).copied()
        } else {
            None
        }
    }

    /// Largest value ever sampled.
    pub fn high_watermark(&self) -> i64 {
        self.high_watermark
    }

    /// Smallest value ever sampled.
    pub fn low_watermark(&self) -> i64 {
        self.low_watermark
    }
}

/// Delta of one histogram over one sampling interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramDelta {
    /// Observations recorded during the interval.
    pub count: u64,
    /// Nanoseconds added to the sum during the interval.
    pub sum_ns: u128,
    /// Per-bucket deltas (1–2–5 bounds plus overflow).
    pub buckets: [u64; BUCKET_COUNT],
}

/// Ring of per-interval deltas of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSeries {
    deltas: VecDeque<HistogramDelta>,
    last_count: u64,
    last_sum_ns: u128,
    last_buckets: [u64; BUCKET_COUNT],
}

impl HistogramSeries {
    fn new(baseline: &Histogram) -> HistogramSeries {
        let mut last_buckets = [0u64; BUCKET_COUNT];
        last_buckets.copy_from_slice(baseline.bucket_counts());
        HistogramSeries {
            deltas: VecDeque::new(),
            last_count: baseline.count(),
            last_sum_ns: baseline.sum_ns(),
            last_buckets,
        }
    }

    fn push(&mut self, h: &Histogram, window: usize) {
        let mut buckets = [0u64; BUCKET_COUNT];
        for (i, (&now, &then)) in h
            .bucket_counts()
            .iter()
            .zip(self.last_buckets.iter())
            .enumerate()
        {
            buckets[i] = now.saturating_sub(then);
        }
        let delta = HistogramDelta {
            count: h.count().saturating_sub(self.last_count),
            sum_ns: h.sum_ns().saturating_sub(self.last_sum_ns),
            buckets,
        };
        self.last_count = h.count();
        self.last_sum_ns = h.sum_ns();
        self.last_buckets.copy_from_slice(h.bucket_counts());
        if self.deltas.len() >= window {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
    }

    /// Per-interval deltas, oldest first.
    pub fn deltas(&self) -> impl Iterator<Item = &HistogramDelta> {
        self.deltas.iter()
    }

    /// Number of sampled intervals currently in the ring.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` when no interval has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Merged histogram of the last `n` intervals.
    pub fn window(&self, n: usize) -> WindowHistogram {
        let take = n.min(self.deltas.len());
        let mut out = WindowHistogram {
            count: 0,
            sum_ns: 0,
            buckets: [0; BUCKET_COUNT],
            intervals: take,
        };
        for d in self.deltas.iter().rev().take(take) {
            out.count = out.count.saturating_add(d.count);
            out.sum_ns = out.sum_ns.saturating_add(d.sum_ns);
            for (b, &v) in out.buckets.iter_mut().zip(d.buckets.iter()) {
                *b = b.saturating_add(v);
            }
        }
        out
    }
}

/// A histogram merged over a trailing window of sampling intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowHistogram {
    /// Observations in the window.
    pub count: u64,
    /// Summed nanoseconds in the window.
    pub sum_ns: u128,
    /// Per-bucket counts in the window.
    pub buckets: [u64; BUCKET_COUNT],
    /// How many intervals the window actually covered.
    pub intervals: usize,
}

impl WindowHistogram {
    /// Observations above `threshold_ns`, conservatively: an observation
    /// counts as *good* only if its whole bucket is ≤ the threshold, so
    /// thresholds should sit on a bucket bound
    /// ([`LATENCY_BUCKET_BOUNDS_NS`](crate::trace::Histogram)) for exact
    /// results. Overflow-bucket observations always count as above.
    pub fn above_ns(&self, threshold_ns: u64) -> u64 {
        let mut good = 0u64;
        for (i, &bound) in LATENCY_BUCKET_BOUNDS_NS.iter().enumerate() {
            if bound <= threshold_ns {
                good = good.saturating_add(self.buckets[i]);
            } else {
                break;
            }
        }
        self.count.saturating_sub(good)
    }
}

/// Bounded ring-buffer time series over every metric in a registry.
///
/// Owned by the world's telemetry plane; sampled on timer-wheel events.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    interval: SimDuration,
    window: usize,
    samples: u64,
    last_sample: SimTime,
    counters: BTreeMap<String, CounterSeries>,
    gauges: BTreeMap<String, GaugeSeries>,
    histograms: BTreeMap<String, HistogramSeries>,
}

impl Telemetry {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero or the window is zero.
    pub fn new(config: SamplerConfig) -> Telemetry {
        assert!(!config.interval.is_zero(), "sampler interval must be > 0");
        assert!(config.window > 0, "sampler window must be > 0");
        Telemetry {
            interval: config.interval,
            window: config.window,
            samples: 0,
            last_sample: SimTime::ZERO,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Ring capacity in samples.
    pub fn window_len(&self) -> usize {
        self.window
    }

    /// Total samples taken (including the baseline pass at enable time).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Virtual time of the most recent sample.
    pub fn last_sample(&self) -> SimTime {
        self.last_sample
    }

    /// Takes one sample: pushes counter/histogram deltas and gauge
    /// values into the rings. Metrics seen for the first time record a
    /// baseline and push no delta (see the module docs).
    pub fn sample(&mut self, now: SimTime, metrics: &Metrics) {
        for (name, v) in metrics.counters() {
            match self.counters.get_mut(name) {
                Some(series) => series.push(v, self.window),
                None => {
                    self.counters.insert(name.to_owned(), CounterSeries::new(v));
                }
            }
        }
        for (name, v) in metrics.gauges() {
            match self.gauges.get_mut(name) {
                Some(series) => series.push(v, self.window),
                None => {
                    let mut series = GaugeSeries::new();
                    series.push(v, self.window);
                    self.gauges.insert(name.to_owned(), series);
                }
            }
        }
        for (name, h) in metrics.histograms() {
            match self.histograms.get_mut(name) {
                Some(series) => series.push(h, self.window),
                None => {
                    self.histograms
                        .insert(name.to_owned(), HistogramSeries::new(h));
                }
            }
        }
        self.samples += 1;
        self.last_sample = now;
    }

    /// Series of one counter, if it has been sampled.
    pub fn counter_series(&self, name: &str) -> Option<&CounterSeries> {
        self.counters.get(name)
    }

    /// Series of one gauge, if it has been sampled.
    pub fn gauge_series(&self, name: &str) -> Option<&GaugeSeries> {
        self.gauges.get(name)
    }

    /// Series of one histogram, if it has been sampled.
    pub fn histogram_series(&self, name: &str) -> Option<&HistogramSeries> {
        self.histograms.get(name)
    }

    /// Counter rate over the last `n` intervals, in events per virtual
    /// second (integer division; `None` before the first full interval).
    pub fn counter_rate_per_sec(&self, name: &str, n: usize) -> Option<u64> {
        let series = self.counters.get(name)?;
        let (sum, intervals, _) = series.window_sum(n);
        if intervals == 0 {
            return None;
        }
        let window_ns = (intervals as u64).saturating_mul(self.interval.as_nanos());
        if window_ns == 0 {
            return None;
        }
        Some(
            sum.saturating_mul(1_000_000_000)
                .checked_div(window_ns)
                .unwrap_or(0),
        )
    }

    /// An owned window over the rings, optionally scoped: with
    /// `Some("rt0")`, only metrics named `rt0.*` are included, prefix
    /// stripped — the live-pull analogue of
    /// [`Metrics::scoped`](crate::Metrics::scoped).
    pub fn window(&self, scope: Option<&str>) -> TelemetryWindow {
        let prefix = scope.map(|s| format!("{s}."));
        let keep = |name: &str| -> Option<String> {
            match &prefix {
                None => Some(name.to_owned()),
                Some(p) => name.strip_prefix(p.as_str()).map(|n| n.to_owned()),
            }
        };
        let mut out = TelemetryWindow {
            interval_ns: self.interval.as_nanos(),
            samples: self.samples,
            last_sample_ns: self.last_sample.as_nanos(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for (name, s) in &self.counters {
            if let Some(key) = keep(name) {
                out.counters.insert(
                    key,
                    CounterWindow {
                        deltas: s.deltas().collect(),
                        total: s.last_value(),
                        high_watermark: s.high_watermark(),
                    },
                );
            }
        }
        for (name, s) in &self.gauges {
            if let Some(key) = keep(name) {
                out.gauges.insert(
                    key,
                    GaugeWindow {
                        values: s.values().collect(),
                        high_watermark: s.high_watermark(),
                        low_watermark: s.low_watermark(),
                    },
                );
            }
        }
        for (name, s) in &self.histograms {
            if let Some(key) = keep(name) {
                let all = s.window(s.len());
                out.histograms.insert(
                    key,
                    HistogramWindow {
                        count_deltas: s.deltas().map(|d| d.count).collect(),
                        count: all.count,
                        sum_ns: all.sum_ns,
                    },
                );
            }
        }
        out
    }
}

/// Windowed view of one counter inside a [`TelemetryWindow`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterWindow {
    /// Per-interval deltas, oldest first.
    pub deltas: Vec<u64>,
    /// Cumulative value at the last sample.
    pub total: u64,
    /// Largest per-interval delta ever observed.
    pub high_watermark: u64,
}

/// Windowed view of one gauge inside a [`TelemetryWindow`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GaugeWindow {
    /// Sampled values, oldest first.
    pub values: Vec<i64>,
    /// Largest value ever sampled.
    pub high_watermark: i64,
    /// Smallest value ever sampled.
    pub low_watermark: i64,
}

/// Windowed view of one histogram inside a [`TelemetryWindow`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramWindow {
    /// Per-interval observation counts, oldest first.
    pub count_deltas: Vec<u64>,
    /// Observations over the whole retained window.
    pub count: u64,
    /// Summed nanoseconds over the whole retained window.
    pub sum_ns: u128,
}

/// Owned snapshot of the sampler's rings, optionally scoped to one
/// runtime's metrics. This is what
/// [`RuntimeRequest::TelemetryWindow`](../../umiddle_core/enum.RuntimeRequest.html)
/// pulls deliver.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryWindow {
    /// Sampling interval in nanoseconds.
    pub interval_ns: u64,
    /// Total samples taken by the store.
    pub samples: u64,
    /// Virtual time of the most recent sample, in nanoseconds.
    pub last_sample_ns: u64,
    /// Counter windows by name.
    pub counters: BTreeMap<String, CounterWindow>,
    /// Gauge windows by name.
    pub gauges: BTreeMap<String, GaugeWindow>,
    /// Histogram windows by name.
    pub histograms: BTreeMap<String, HistogramWindow>,
}

impl TelemetryWindow {
    /// Renders the window as deterministic JSON (sorted keys, integers
    /// only), byte-identical across identical runs.
    pub fn to_json(&self) -> String {
        fn push_u64_array(out: &mut String, it: impl Iterator<Item = u64>) {
            out.push('[');
            for (i, v) in it.enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"interval_ns\": {},\n  \"samples\": {},\n  \"last_sample_ns\": {},\n",
            self.interval_ns, self.samples, self.last_sample_ns
        ));
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, w) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            crate::trace::push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"total\": {}, \"high_watermark\": {}, \"deltas\": ",
                w.total, w.high_watermark
            ));
            push_u64_array(&mut out, w.deltas.iter().copied());
            out.push('}');
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        first = true;
        for (name, w) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            crate::trace::push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"high_watermark\": {}, \"low_watermark\": {}, \"values\": [",
                w.high_watermark, w.low_watermark
            ));
            for (i, v) in w.values.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&v.to_string());
            }
            out.push_str("]}");
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        first = true;
        for (name, w) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            crate::trace::push_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum_ns\": {}, \"count_deltas\": ",
                w.count, w.sum_ns
            ));
            push_u64_array(&mut out, w.count_deltas.iter().copied());
            out.push('}');
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval_ms: u64, window: usize) -> SamplerConfig {
        SamplerConfig {
            interval: SimDuration::from_millis(interval_ms),
            window,
        }
    }

    #[test]
    fn first_sighting_is_a_baseline_not_a_delta() {
        let mut m = Metrics::default();
        m.counter_add("c", 1_000);
        let mut t = Telemetry::new(cfg(100, 8));
        t.sample(SimTime::from_millis(100), &m);
        let s = t.counter_series("c").unwrap();
        assert_eq!(s.len(), 0, "baseline pass records no delta");
        assert_eq!(s.last_value(), 1_000);
        m.counter_add("c", 7);
        t.sample(SimTime::from_millis(200), &m);
        let s = t.counter_series("c").unwrap();
        assert_eq!(s.deltas().collect::<Vec<_>>(), vec![7]);
        assert_eq!(s.high_watermark(), 7);
    }

    #[test]
    fn rings_are_bounded_and_watermarks_persist() {
        let mut m = Metrics::default();
        m.counter_add("c", 0);
        let mut t = Telemetry::new(cfg(100, 3));
        t.sample(SimTime::ZERO, &m);
        for i in 1..=10u64 {
            m.counter_add("c", i);
            t.sample(SimTime::from_millis(100 * i), &m);
        }
        let s = t.counter_series("c").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.deltas().collect::<Vec<_>>(), vec![8, 9, 10]);
        // The spike watermark outlives the ring.
        assert_eq!(s.high_watermark(), 10);
        let (sum, n, zeros) = s.window_sum(2);
        assert_eq!((sum, n, zeros), (19, 2, 0));
    }

    #[test]
    fn gauge_series_track_both_watermarks() {
        let mut m = Metrics::default();
        let mut t = Telemetry::new(cfg(100, 4));
        for (i, v) in [5i64, -3, 12, 4].iter().enumerate() {
            m.gauge_set("g", *v);
            t.sample(SimTime::from_millis(100 * (i as u64 + 1)), &m);
        }
        let s = t.gauge_series("g").unwrap();
        assert_eq!(s.values().collect::<Vec<_>>(), vec![5, -3, 12, 4]);
        assert_eq!(s.high_watermark(), 12);
        assert_eq!(s.low_watermark(), -3);
        assert_eq!(s.last_value(), Some(4));
        assert_eq!(s.value_back(2), Some(-3));
        assert_eq!(s.value_back(4), None);
    }

    #[test]
    fn histogram_windows_merge_interval_deltas() {
        let mut m = Metrics::default();
        m.observe("lat", SimDuration::from_micros(1));
        let mut t = Telemetry::new(cfg(100, 8));
        t.sample(SimTime::ZERO, &m);
        m.observe("lat", SimDuration::from_micros(1));
        m.observe("lat", SimDuration::from_millis(50));
        t.sample(SimTime::from_millis(100), &m);
        m.observe("lat", SimDuration::from_millis(50));
        t.sample(SimTime::from_millis(200), &m);
        let s = t.histogram_series("lat").unwrap();
        assert_eq!(s.len(), 2);
        let w = s.window(2);
        // The baseline observation is excluded; three live ones remain.
        assert_eq!(w.count, 3);
        assert_eq!(w.intervals, 2);
        assert_eq!(w.above_ns(1_000), 2, "two 50 ms observations above 1 µs");
        assert_eq!(w.above_ns(50_000_000), 0);
        let w1 = s.window(1);
        assert_eq!(w1.count, 1);
    }

    #[test]
    fn rates_are_integer_per_second() {
        let mut m = Metrics::default();
        m.counter_add("c", 0);
        let mut t = Telemetry::new(cfg(500, 8));
        t.sample(SimTime::ZERO, &m);
        m.counter_add("c", 25);
        t.sample(SimTime::from_millis(500), &m);
        // 25 events over 0.5 s → 50/s.
        assert_eq!(t.counter_rate_per_sec("c", 4), Some(50));
        assert_eq!(t.counter_rate_per_sec("missing", 4), None);
    }

    #[test]
    fn scoped_windows_strip_prefix_and_filter() {
        let mut m = Metrics::default();
        m.counter_add("rt0.sent", 0);
        m.counter_add("rt1.sent", 0);
        m.gauge_set("rt0.depth", 3);
        let mut t = Telemetry::new(cfg(100, 8));
        t.sample(SimTime::ZERO, &m);
        m.counter_add("rt0.sent", 2);
        m.counter_add("rt1.sent", 9);
        t.sample(SimTime::from_millis(100), &m);
        let w = t.window(Some("rt0"));
        assert_eq!(w.counters.len(), 1);
        assert_eq!(w.counters["sent"].deltas, vec![2]);
        assert_eq!(w.gauges["depth"].values, vec![3, 3]);
        let all = t.window(None);
        assert!(all.counters.contains_key("rt0.sent"));
        assert!(all.counters.contains_key("rt1.sent"));
    }

    #[test]
    fn window_json_is_deterministic() {
        let mut m = Metrics::default();
        m.counter_add("b", 0);
        m.counter_add("a", 0);
        m.observe("lat", SimDuration::from_micros(5));
        let mut t = Telemetry::new(cfg(100, 8));
        t.sample(SimTime::ZERO, &m);
        m.counter_add("a", 1);
        t.sample(SimTime::from_millis(100), &m);
        let j1 = t.window(None).to_json();
        let j2 = t.window(None).to_json();
        assert_eq!(j1, j2);
        assert!(j1.find("\"a\"").unwrap() < j1.find("\"b\"").unwrap());
        assert!(j1.contains("\"interval_ns\": 100000000"));
    }
}
