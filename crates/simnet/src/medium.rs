//! Shared-medium model: segment configuration and transmission timing.
//!
//! A *segment* is a broadcast domain every attached node can transmit on: an
//! Ethernet hub, a Bluetooth piconet, a mote radio channel, or an in-host
//! loopback. Frames on a half-duplex segment contend for the single medium:
//! a frame starts transmitting when the medium frees up (plus a small random
//! backoff when it found the medium busy, approximating CSMA/CD/CA), holds
//! the medium for its serialization time, and arrives after the propagation
//! latency. This is what caps end-to-end throughput below the nominal line
//! rate, reproducing the paper's 7.9 Mbps TCP baseline on a 10 Mbps hub.

use crate::time::{SimDuration, SimTime};

/// Static configuration of a network segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentConfig {
    /// Human-readable name used in traces.
    pub name: String,
    /// Nominal line rate in bits per second.
    pub bits_per_second: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Link-layer overhead bytes added to every frame (preamble, MAC
    /// headers, checksums, inter-frame gap equivalent).
    pub frame_overhead: u32,
    /// Maximum payload bytes per frame. Larger sends are segmented by the
    /// caller (the stream layer) or rejected (datagrams).
    pub mtu: u32,
    /// `true` if all attached nodes share one medium (hub, radio); `false`
    /// models an idealized switched medium with per-node capacity.
    pub half_duplex: bool,
    /// Probability in `[0, 1]` that a frame is lost after transmission.
    pub loss: f64,
    /// Maximum number of attached nodes, if the technology bounds it
    /// (a Bluetooth piconet allows eight).
    pub max_nodes: Option<u32>,
    /// Upper bound of the random backoff added when a sender finds the
    /// medium busy (half-duplex only).
    pub backoff_max: SimDuration,
}

impl SegmentConfig {
    /// A 10 Mbps Ethernet segment behind a repeater hub, as used in the
    /// paper's testbed. Half-duplex: data and ACK traffic share the medium.
    ///
    /// Frame overhead 38 bytes = preamble 8 + MAC header 14 + FCS 4 +
    /// inter-frame gap 12.
    pub fn ethernet_10mbps_hub() -> SegmentConfig {
        SegmentConfig {
            name: "ethernet-10mbps-hub".to_owned(),
            bits_per_second: 10_000_000,
            latency: SimDuration::from_micros(50),
            frame_overhead: 38,
            mtu: 1500,
            half_duplex: true,
            loss: 0.0,
            max_nodes: None,
            // Calibrated so bulk TCP lands near the paper's 7.9 Mbps
            // baseline: CSMA/CD backoff + collisions on a loaded hub.
            backoff_max: SimDuration::from_micros(150),
        }
    }

    /// A switched 100 Mbps Ethernet segment (full duplex).
    ///
    /// Full-duplex segments never serialize transmissions through the
    /// medium's busy window, so frames emitted at the same instant also
    /// *arrive* at the same instant — these coincident arrivals are what
    /// the dispatch batch plane ([`BatchPolicy`](crate::BatchPolicy))
    /// groups into single handler invocations. Half-duplex media (hubs,
    /// piconets, mote radios) space arrivals out and rarely batch.
    pub fn ethernet_100mbps_switch() -> SegmentConfig {
        SegmentConfig {
            name: "ethernet-100mbps-switch".to_owned(),
            bits_per_second: 100_000_000,
            latency: SimDuration::from_micros(20),
            frame_overhead: 38,
            mtu: 1500,
            half_duplex: false,
            loss: 0.0,
            max_nodes: None,
            backoff_max: SimDuration::ZERO,
        }
    }

    /// A Bluetooth 1.2 piconet: 723 kbps asymmetric rate, at most eight
    /// attached devices, a few milliseconds of latency, small MTU.
    pub fn bluetooth_piconet() -> SegmentConfig {
        SegmentConfig {
            name: "bluetooth-piconet".to_owned(),
            bits_per_second: 723_000,
            latency: SimDuration::from_millis(3),
            frame_overhead: 12,
            mtu: 672,
            half_duplex: true,
            loss: 0.0,
            max_nodes: Some(8),
            backoff_max: SimDuration::from_millis(1),
        }
    }

    /// A Berkeley-mote-era radio channel: 38.4 kbps shared medium with
    /// noticeable loss, tiny MTU.
    pub fn mote_radio() -> SegmentConfig {
        SegmentConfig {
            name: "mote-radio".to_owned(),
            bits_per_second: 38_400,
            latency: SimDuration::from_millis(1),
            frame_overhead: 7,
            mtu: 36,
            half_duplex: true,
            loss: 0.02,
            max_nodes: None,
            backoff_max: SimDuration::from_millis(4),
        }
    }

    /// An in-host loopback: effectively infinite bandwidth, no latency.
    /// Used when a mapper and a native device are co-located on one node.
    pub fn loopback() -> SegmentConfig {
        SegmentConfig {
            name: "loopback".to_owned(),
            bits_per_second: 10_000_000_000,
            latency: SimDuration::ZERO,
            frame_overhead: 0,
            mtu: 65_535,
            half_duplex: false,
            loss: 0.0,
            max_nodes: None,
            backoff_max: SimDuration::ZERO,
        }
    }

    /// Returns a copy with the given loss probability; convenient for
    /// failure-injection tests.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> SegmentConfig {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0, 1]");
        self.loss = loss;
        self
    }

    /// Returns a copy with the given propagation latency.
    pub fn with_latency(mut self, latency: SimDuration) -> SegmentConfig {
        self.latency = latency;
        self
    }

    /// Serialization time for a frame carrying `payload_bytes` of payload
    /// (frame overhead added automatically).
    pub fn frame_time(&self, payload_bytes: usize) -> SimDuration {
        SimDuration::transmission(
            payload_bytes as u64 + u64::from(self.frame_overhead),
            self.bits_per_second,
        )
    }
}

/// Outcome of scheduling one frame on a segment: when transmission starts,
/// when it ends (medium is held until then), and when receivers see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxTiming {
    /// Instant the frame starts occupying the medium.
    pub start: SimTime,
    /// Instant the medium is released.
    pub end: SimTime,
    /// Instant the frame arrives at receivers.
    pub arrival: SimTime,
}

/// Computes the transmission timing for a frame on a shared medium.
///
/// `busy_until` is the instant the medium frees up; `backoff` is the random
/// backoff already drawn by the caller (only applied when the medium is
/// busy, and only meaningful for half-duplex media).
pub fn schedule_tx(
    config: &SegmentConfig,
    now: SimTime,
    busy_until: SimTime,
    backoff: SimDuration,
    payload_bytes: usize,
) -> TxTiming {
    let contended = config.half_duplex && busy_until > now;
    let start = if config.half_duplex {
        let base = now.max(busy_until);
        if contended {
            base + backoff
        } else {
            base
        }
    } else {
        // Idealized switched medium: each sender has its own capacity, but
        // still pays serialization time.
        now
    };
    let end = start + config.frame_time(payload_bytes);
    TxTiming {
        start,
        end,
        arrival: end + config.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_time_includes_overhead() {
        let cfg = SegmentConfig::ethernet_10mbps_hub();
        // (1462 + 38) bytes * 8 bits / 10 Mbps = 1.2 ms.
        assert_eq!(cfg.frame_time(1462), SimDuration::from_micros(1200));
    }

    #[test]
    fn idle_medium_starts_immediately() {
        let cfg = SegmentConfig::ethernet_10mbps_hub();
        let t = schedule_tx(
            &cfg,
            SimTime::from_millis(5),
            SimTime::ZERO,
            SimDuration::ZERO,
            100,
        );
        assert_eq!(t.start, SimTime::from_millis(5));
        assert!(t.end > t.start);
        assert_eq!(t.arrival, t.end + cfg.latency);
    }

    #[test]
    fn busy_medium_defers_and_backs_off() {
        let cfg = SegmentConfig::ethernet_10mbps_hub();
        let busy = SimTime::from_millis(10);
        let t = schedule_tx(
            &cfg,
            SimTime::from_millis(5),
            busy,
            SimDuration::from_micros(30),
            100,
        );
        assert_eq!(t.start, busy + SimDuration::from_micros(30));
    }

    #[test]
    fn full_duplex_ignores_contention() {
        let cfg = SegmentConfig::ethernet_100mbps_switch();
        let t = schedule_tx(
            &cfg,
            SimTime::from_millis(5),
            SimTime::from_millis(50),
            SimDuration::from_micros(30),
            100,
        );
        assert_eq!(t.start, SimTime::from_millis(5));
    }

    #[test]
    fn piconet_limits_membership() {
        assert_eq!(SegmentConfig::bluetooth_piconet().max_nodes, Some(8));
    }

    #[test]
    #[should_panic(expected = "loss must be in [0, 1]")]
    fn with_loss_validates_range() {
        let _ = SegmentConfig::loopback().with_loss(1.5);
    }
}
