//! `cargo bench` target that regenerates every table and figure of the
//! paper (simulated-time measurements, so criterion is not involved).

use bench::experiments::*;
use bench::report::*;

fn main() {
    // `cargo bench` passes --bench; ignore arguments.
    println!("uMiddle evaluation harness — all tables and figures");
    println!("{}", render_e1(&e1_service_level(5)));
    println!("{}", render_e2(&e2_device_level()));
    println!("{}", render_e3(&e3_transport_level(30)));
    println!("{}", render_e4(&e4_ablation_translation()));
    println!("{}", render_e5(&e5_ablation_qos()));
    println!("{}", render_e6(&e6_directory_scale(&[2, 4, 8, 12], 4)));
    println!("{}", render_e7(&e7_ablation_scatter()));
    println!("{}", render_e8(&e8_observability()));
}
