//! Criterion micro-benchmarks for the CPU-bound codecs and matchers the
//! system is built from (real wall-clock time, not simulated time).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use platform_bluetooth::{ObexPacket, SdpPdu, ServiceRecord};
use platform_rmi::JavaValue;
use platform_upnp::{DeviceDesc, LightLogic, DeviceLogic, SoapCall};
use umiddle_core::{
    Direction, PerceptionType, PortKind, Query, RuntimeId, Shape, TranslatorId,
    TranslatorProfile, UMessage, WireMessage,
};
use umiddle_usdl::{Element, UsdlDocument, UsdlLibrary};

fn bench_usdl(c: &mut Criterion) {
    let clock_xml = umiddle_usdl::builtin::UPNP_CLOCK;
    c.bench_function("usdl_parse_clock", |b| {
        b.iter(|| UsdlDocument::parse(black_box(clock_xml)).unwrap())
    });
    let doc = UsdlDocument::parse(clock_xml).unwrap();
    c.bench_function("usdl_profile_build", |b| {
        b.iter(|| doc.profile(Some(black_box("Kitchen Clock"))))
    });
    c.bench_function("usdl_library_bundled", |b| b.iter(UsdlLibrary::bundled));
}

fn bench_xml(c: &mut Criterion) {
    let desc = LightLogic::new("Bench Light", "uuid:b").description();
    let xml = desc.to_xml();
    c.bench_function("upnp_description_parse", |b| {
        b.iter(|| DeviceDesc::parse(black_box(&xml)).unwrap())
    });
    c.bench_function("upnp_description_serialize", |b| b.iter(|| desc.to_xml()));
    let soap = SoapCall::new("SwitchPower", "SetPower").with_arg("Power", "1");
    let soap_xml = soap.to_xml();
    c.bench_function("soap_round_trip", |b| {
        b.iter(|| SoapCall::parse(black_box(&soap_xml)).unwrap())
    });
    c.bench_function("xml_parse_generic", |b| {
        b.iter(|| Element::parse(black_box(&xml)).unwrap())
    });
}

fn bench_wire(c: &mut Criterion) {
    let profile = {
        let shape = Shape::builder()
            .digital("in", Direction::Input, "image/jpeg".parse().unwrap())
            .physical("screen", Direction::Output, PerceptionType::Visible, "screen")
            .build()
            .unwrap();
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(1), 7), "TV")
            .platform("upnp")
            .shape(shape)
            .attr("room", "den")
            .build()
    };
    let adv = WireMessage::Advertise {
        profile,
        home: simnet::Addr::new(simnet::NodeId::from_index(1), 47_001),
    };
    let bytes = adv.encode();
    c.bench_function("wire_advertise_encode", |b| b.iter(|| adv.encode()));
    c.bench_function("wire_advertise_decode", |b| {
        b.iter(|| WireMessage::decode(black_box(&bytes)).unwrap())
    });
    let path = WireMessage::PathMessage {
        connection: umiddle_core::ConnectionId::new(RuntimeId(0), 1),
        dst: umiddle_core::PortRef::new(TranslatorId::new(RuntimeId(1), 7), "in"),
        msg: UMessage::new("image/jpeg".parse().unwrap(), vec![0xAB; 1400]),
    };
    let path_bytes = path.encode();
    c.bench_function("wire_path_1400B_round_trip", |b| {
        b.iter(|| WireMessage::decode(black_box(&path_bytes)).unwrap())
    });
}

fn bench_matching(c: &mut Criterion) {
    let profiles: Vec<TranslatorProfile> = (0..100)
        .map(|i| {
            let shape = Shape::builder()
                .digital(
                    "out",
                    Direction::Output,
                    if i % 2 == 0 { "image/jpeg" } else { "text/plain" }.parse().unwrap(),
                )
                .build()
                .unwrap();
            TranslatorProfile::builder(
                TranslatorId::new(RuntimeId(0), i),
                format!("device-{i}"),
            )
            .shape(shape)
            .build()
        })
        .collect();
    let query = Query::has_port(
        Direction::Output,
        PortKind::Digital("image/*".parse().unwrap()),
    )
    .and(Query::NameContains("device".to_owned()));
    c.bench_function("query_eval_100_profiles", |b| {
        b.iter(|| {
            profiles
                .iter()
                .filter(|p| query.matches(black_box(p)))
                .count()
        })
    });
    let mime_a: umiddle_core::MimeType = "image/jpeg".parse().unwrap();
    let mime_b: umiddle_core::MimeType = "image/*".parse().unwrap();
    c.bench_function("mime_match", |b| {
        b.iter(|| black_box(&mime_a).matches(black_box(&mime_b)))
    });
}

fn bench_binary_codecs(c: &mut Criterion) {
    let pdu = SdpPdu::SearchResponse {
        transaction: 1,
        records: vec![
            ServiceRecord::new(0x10000, "bip-camera", "Camera", 9).with_attribute(1, "imaging"),
        ],
    };
    let pdu_bytes = pdu.encode();
    c.bench_function("sdp_round_trip", |b| {
        b.iter(|| SdpPdu::decode(black_box(&pdu_bytes)).unwrap())
    });
    let packets = platform_bluetooth::put_packets("x.jpg", "image/jpeg", &vec![7u8; 4096], 512);
    let first = packets[0].encode();
    c.bench_function("obex_decode", |b| {
        b.iter(|| ObexPacket::decode(black_box(&first)).unwrap())
    });
    let value = JavaValue::Object {
        class: "edu.gatech.Echo".to_owned(),
        fields: vec![("payload".to_owned(), JavaValue::Bytes(vec![1; 1400]))],
    };
    let marshaled = value.marshal();
    c.bench_function("rmi_marshal_1400B", |b| b.iter(|| value.marshal()));
    c.bench_function("rmi_unmarshal_1400B", |b| {
        b.iter(|| JavaValue::unmarshal(black_box(&marshaled)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_usdl,
    bench_xml,
    bench_wire,
    bench_matching,
    bench_binary_codecs
);
criterion_main!(benches);
