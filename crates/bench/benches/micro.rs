//! Micro-benchmarks for the CPU-bound codecs and matchers the system is
//! built from (real wall-clock time, not simulated time), on the
//! in-tree `bench::timing` harness.

use std::hint::black_box;

use bench::timing::bench_function;
use platform_bluetooth::{ObexPacket, SdpPdu, ServiceRecord};
use platform_rmi::JavaValue;
use platform_upnp::{DeviceDesc, DeviceLogic, LightLogic, SoapCall};
use umiddle_core::{
    Direction, PerceptionType, PortKind, Query, RuntimeId, Shape, TranslatorId, TranslatorProfile,
    UMessage, WireMessage,
};
use umiddle_usdl::{Element, UsdlDocument, UsdlLibrary};

fn bench_usdl() {
    let clock_xml = umiddle_usdl::builtin::UPNP_CLOCK;
    bench_function("usdl_parse_clock", || {
        UsdlDocument::parse(black_box(clock_xml)).unwrap()
    });
    let doc = UsdlDocument::parse(clock_xml).unwrap();
    bench_function("usdl_profile_build", || {
        doc.profile(Some(black_box("Kitchen Clock")))
    });
    bench_function("usdl_library_bundled", UsdlLibrary::bundled);
}

fn bench_xml() {
    let desc = LightLogic::new("Bench Light", "uuid:b").description();
    let xml = desc.to_xml();
    bench_function("upnp_description_parse", || {
        DeviceDesc::parse(black_box(&xml)).unwrap()
    });
    bench_function("upnp_description_serialize", || desc.to_xml());
    let soap = SoapCall::new("SwitchPower", "SetPower").with_arg("Power", "1");
    let soap_xml = soap.to_xml();
    bench_function("soap_round_trip", || {
        SoapCall::parse(black_box(&soap_xml)).unwrap()
    });
    bench_function("xml_parse_generic", || {
        Element::parse(black_box(&xml)).unwrap()
    });
}

fn bench_wire() {
    let profile = {
        let shape = Shape::builder()
            .digital("in", Direction::Input, "image/jpeg".parse().unwrap())
            .physical(
                "screen",
                Direction::Output,
                PerceptionType::Visible,
                "screen",
            )
            .build()
            .unwrap();
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(1), 7), "TV")
            .platform("upnp")
            .shape(shape)
            .attr("room", "den")
            .build()
    };
    let adv = WireMessage::Advertise {
        profile,
        home: simnet::Addr::new(simnet::NodeId::from_index(1), 47_001),
    };
    let bytes = adv.encode();
    bench_function("wire_advertise_encode", || adv.encode());
    bench_function("wire_advertise_decode", || {
        WireMessage::decode(black_box(&bytes)).unwrap()
    });
    let path = WireMessage::PathMessage {
        connection: umiddle_core::ConnectionId::new(RuntimeId(0), 1),
        dst: umiddle_core::PortRef::new(TranslatorId::new(RuntimeId(1), 7), "in"),
        msg: UMessage::new("image/jpeg".parse().unwrap(), vec![0xAB; 1400]),
    };
    let path_bytes = path.encode();
    bench_function("wire_path_1400B_round_trip", || {
        WireMessage::decode(black_box(&path_bytes)).unwrap()
    });
}

fn bench_matching() {
    let profiles: Vec<TranslatorProfile> = (0..100)
        .map(|i| {
            let shape = Shape::builder()
                .digital(
                    "out",
                    Direction::Output,
                    if i % 2 == 0 {
                        "image/jpeg"
                    } else {
                        "text/plain"
                    }
                    .parse()
                    .unwrap(),
                )
                .build()
                .unwrap();
            TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), i), format!("device-{i}"))
                .shape(shape)
                .build()
        })
        .collect();
    let query = Query::has_port(
        Direction::Output,
        PortKind::Digital("image/*".parse().unwrap()),
    )
    .and(Query::NameContains("device".to_owned()));
    bench_function("query_eval_100_profiles", || {
        profiles
            .iter()
            .filter(|p| query.matches(black_box(p)))
            .count()
    });
    let mime_a: umiddle_core::MimeType = "image/jpeg".parse().unwrap();
    let mime_b: umiddle_core::MimeType = "image/*".parse().unwrap();
    bench_function("mime_match", || {
        black_box(&mime_a).matches(black_box(&mime_b))
    });
}

fn bench_binary_codecs() {
    let pdu = SdpPdu::SearchResponse {
        transaction: 1,
        records: vec![
            ServiceRecord::new(0x10000, "bip-camera", "Camera", 9).with_attribute(1, "imaging")
        ],
    };
    let pdu_bytes = pdu.encode();
    bench_function("sdp_round_trip", || {
        SdpPdu::decode(black_box(&pdu_bytes)).unwrap()
    });
    let packets = platform_bluetooth::put_packets("x.jpg", "image/jpeg", vec![7u8; 4096], 512);
    let first = packets[0].encode();
    bench_function("obex_decode", || {
        ObexPacket::decode(black_box(&first)).unwrap()
    });
    let value = JavaValue::Object {
        class: "edu.gatech.Echo".to_owned(),
        fields: vec![("payload".to_owned(), JavaValue::Bytes(vec![1; 1400].into()))],
    };
    let marshaled = value.marshal();
    bench_function("rmi_marshal_1400B", || value.marshal());
    bench_function("rmi_unmarshal_1400B", || {
        JavaValue::unmarshal(black_box(&marshaled)).unwrap()
    });
}

fn main() {
    println!("uMiddle micro-benchmarks (wall clock, in-tree harness)");
    bench_usdl();
    bench_xml();
    bench_wire();
    bench_matching();
    bench_binary_codecs();
}
