//! Plain-text report rendering for the experiment harness, plus the
//! shared artifact writer the exporter bins use.

use crate::experiments::*;

fn hr(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Writes one deterministic artifact to `path`, creating parent
/// directories as needed, and prints the canonical
/// `wrote {path} ({len} B) — {what}` line. Every exporter bin
/// (`doctor_export`, `incident_export`, `attrib_export`) funnels its
/// writes through here so the CI determinism gates see one consistent
/// write path and stdout shape.
pub fn write_artifact(path: &str, body: &str, what: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    std::fs::write(path, body).expect("write artifact");
    println!("wrote {path} ({} B) — {what}", body.len());
}

/// Renders the Figure-10 table.
pub fn render_e1(rows: &[MappingRow]) -> String {
    let mut out = hr("E1 / Figure 10 — service-level bridging (translator generation)");
    out.push_str(&format!(
        "{:40} {:>12} {:>12} {:>12} {:>8}\n",
        "device", "mean time", "rate (/s)", "paper (/s)", "samples"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:40} {:>12} {:>12.2} {:>12.1} {:>8}\n",
            r.device,
            r.mean_time.to_string(),
            r.rate_per_sec,
            r.paper_rate,
            r.samples
        ));
    }
    out
}

/// Renders the §5.2 table.
pub fn render_e2(r: &DeviceLevelResults) -> String {
    let mut out = hr("E2 / §5.2 — device-level bridging latency");
    out.push_str(&format!(
        "UPnP SetPower total        : {:>10}   (paper: 160 ms, n={})\n",
        r.upnp_total.to_string(),
        r.upnp_samples
    ));
    out.push_str(&format!(
        "  of which uMiddle         : {:>10}   (paper: ~10 ms)\n",
        r.upnp_umiddle_share.to_string()
    ));
    out.push_str(&format!(
        "  of which UPnP domain     : {:>10}   (paper: ~150 ms)\n",
        (r.upnp_total - r.upnp_umiddle_share).to_string()
    ));
    out.push_str(&format!(
        "Bluetooth signal translate : {:>10}   (paper: 23 ms, n={})\n",
        r.mouse_translation.to_string(),
        r.mouse_samples
    ));
    out
}

/// Renders the Figure-11 table.
pub fn render_e3(rows: &[ThroughputRow]) -> String {
    let mut out = hr("E3 / Figure 11 — transport-level bridging throughput");
    out.push_str(&format!(
        "{:16} {:>12} {:>12} {:>10}\n",
        "test", "Mbps", "paper Mbps", "messages"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:16} {:>12.2} {:>12.1} {:>10}\n",
            r.test, r.mbps, r.paper_mbps, r.observed
        ));
    }
    out
}

/// Renders the E4 ablation.
pub fn render_e4(r: &AblationTranslationResults) -> String {
    let mut out = hr("E4 — translation-model ablation (direct vs mediated)");
    out.push_str(&format!(
        "{:>14} {:>18} {:>20}\n",
        "device types", "direct n(n-1)", "mediated n"
    ));
    for (n, d, m) in &r.growth {
        out.push_str(&format!("{n:>14} {d:>18} {m:>20}\n"));
    }
    out.push_str(&format!(
        "camera→TV delivered: direct bridge {} frames, mediated stack {} frames\n",
        r.direct_delivered, r.mediated_delivered
    ));
    out
}

/// Renders the E5 ablation.
pub fn render_e5(rows: &[QosRow]) -> String {
    let mut out = hr("E5 — QoS ablation (fast producer, 50 ms/message consumer)");
    out.push_str(&format!(
        "{:44} {:>10} {:>10} {:>14}\n",
        "policy", "delivered", "dropped", "max buffered"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:44} {:>10} {:>10} {:>13}B\n",
            r.policy, r.delivered, r.dropped, r.max_buffered
        ));
    }
    out
}

/// Renders the E6 scalability table.
pub fn render_e6(rows: &[DirectoryScaleRow]) -> String {
    let mut out = hr("E6 — directory federation scalability");
    out.push_str(&format!(
        "{:>10} {:>14} {:>14} {:>16}\n",
        "runtimes", "services/rt", "convergence", "registrations"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>14} {:>14} {:>16}\n",
            r.runtimes,
            r.per_runtime,
            r.convergence.to_string(),
            r.advertisements
        ));
    }
    out
}

/// Renders the E7 ablation.
pub fn render_e7(r: &ScatterResults) -> String {
    let mut out = hr("E7 — visibility ablation (aggregated vs scattered, §2.2.2)");
    out.push_str(&format!(
        "capture execution, aggregated origin          : {:>10}  (n={})\n",
        r.aggregated_capture.to_string(),
        r.samples.0
    ));
    out.push_str(&format!(
        "capture execution, scattered origin           : {:>10}  (n={})\n",
        r.scattered_capture.to_string(),
        r.samples.1
    ));
    out.push_str(&format!(
        "extra command hop under scattering (SOAP RT)  : {:>10}\n",
        r.scattered_command_rt.to_string()
    ));
    out.push_str(
        "(the bridge work is identical; scattering buys native-app access\n          at the price of one SOAP hop per command and one exporter per\n          native platform)\n",
    );
    out
}

/// Renders the E8 observability summary.
pub fn render_e8(r: &ObservabilityResults) -> String {
    let mut out = hr("E8 — observability (metrics registry + path spans)");
    out.push_str(&format!(
        "{:42} {:>7} {:>12} {:>12} {:>12}\n",
        "histogram", "count", "mean", "min", "max"
    ));
    for (name, h) in &r.snapshot.histograms {
        out.push_str(&format!(
            "{:42} {:>7} {:>12} {:>12} {:>12}\n",
            name,
            h.count(),
            h.mean().to_string(),
            h.min().to_string(),
            h.max().to_string()
        ));
    }
    out.push_str("\ncounters:\n");
    for (name, v) in &r.snapshot.counters {
        out.push_str(&format!("  {name:44} {v:>8}\n"));
    }
    out.push_str("\ngauges:\n");
    for (name, v) in &r.snapshot.gauges {
        out.push_str(&format!("  {name:44} {v:>8}\n"));
    }
    out.push_str(&format!(
        "\nspans recorded: {} (dropped: {})\n",
        r.span_count, r.spans_dropped
    ));
    out.push_str("one click, Bluetooth \u{2192} uMiddle \u{2192} UPnP, by correlation id:\n");
    for line in &r.sample_path {
        out.push_str(&format!("  {line}\n"));
    }
    if let Some(cp) = &r.critical_path {
        out.push('\n');
        out.push_str(&cp.render());
    }
    out.push_str(&format!(
        "\ntrace exports: perfetto {} B, folded stacks {} B \
         (write them with the trace_export bin)\n",
        r.perfetto.len(),
        r.folded.len()
    ));
    out
}

/// Renders the E10 telemetry-plane fault-injection summary.
pub fn render_e10(r: &TelemetryFaultResults) -> String {
    use simnet::{SimDuration, SimTime};

    let t = |ns: u64| SimTime::from_nanos(ns).to_string();
    let d = |ns: u64| SimDuration::from_nanos(ns).to_string();
    let mut out = hr("E10 — telemetry plane: SLO burn-rate alerts + federation doctor");
    out.push_str(&format!(
        "faults injected at {} (upnp mapper removed, hub flooded)\n",
        r.fault_at
    ));
    out.push_str(&format!(
        "sampler: {} interval, {} samples\n\n",
        d(r.report.interval_ns),
        r.samples
    ));

    out.push_str("alerts:\n");
    for a in &r.report.alerts {
        out.push_str(&format!(
            "  {:20} {:28} {:>8}  since {:>10}  burn {:>6}/{:<6} milli\n",
            a.name,
            a.subject,
            a.state.as_str(),
            t(a.since_ns),
            a.burn_long_milli,
            a.burn_short_milli
        ));
    }
    out.push_str("transitions:\n");
    for tr in &r.transitions {
        out.push_str(&format!(
            "  {:>12}  {:20} {} -> {}\n",
            tr.at.to_string(),
            tr.objective,
            tr.from.as_str(),
            tr.to.as_str()
        ));
    }

    out.push_str("\nbridges:\n");
    for b in &r.report.bridges {
        out.push_str(&format!(
            "  {:14} last traffic {:>10}  idle {:>10}  {}\n",
            b.platform,
            t(b.last_traffic_ns),
            d(b.idle_ns),
            if b.silent { "SILENT" } else { "live" }
        ));
    }
    out.push_str("segments:\n");
    for s in &r.report.segments {
        out.push_str(&format!(
            "  {:28} util {:>4} milli  {:>8} frames  {:>4} dropped\n",
            s.label, s.utilization_milli, s.frames, s.dropped
        ));
    }
    out.push_str(&format!(
        "scheduler: {} events pending, lag p99 {}, max {}\n",
        r.report.events_pending,
        d(r.report.sched_lag_p99_ns),
        d(r.report.sched_lag_max_ns)
    ));

    out.push_str("\ntop offenders (doctor's ranking):\n");
    for o in &r.report.top_offenders {
        out.push_str(&format!(
            "  {:>6} milli  {:14} {:20} {}\n",
            o.severity_milli, o.kind, o.name, o.subject
        ));
    }
    out.push_str(&format!(
        "\nexports: doctor JSON {} B, OpenMetrics {} B \
         (write them with the doctor_export bin)\n",
        r.doctor_json.len(),
        r.open_metrics.len()
    ));
    out
}

/// Renders the E11 sharded incident run: the E10 fault pair split
/// across a shard boundary, with the merged journey and the trigger
/// plane's incident bundles.
pub fn render_e11(r: &ShardedIncidentResults) -> String {
    let mut out = hr("E11 — cross-shard tracing: sharded fault pair + incident bundles");
    out.push_str(&format!(
        "shard hand-offs: {} egress spans (mouse shard) / {} ingress spans (light shard)\n",
        r.xfer_egress, r.xfer_ingress
    ));
    out.push_str(&format!(
        "merged journey: {} spans, {} orphan xfer hops, critical-path coverage {:.1}%\n",
        r.merged_spans.len(),
        r.orphan_xfer_hops,
        r.journey_coverage * 100.0
    ));
    out.push_str("incident bundles:\n");
    for b in &r.bundles {
        out.push_str(&format!(
            "  #{} {:>12}  shard {:>4}  {:?}: {}\n",
            b.seq,
            b.at.to_string(),
            b.shard.map_or("-".to_owned(), |s| format!("s{s}")),
            b.kind,
            b.detail
        ));
    }
    out.push_str(&format!(
        "doctor's top offender: {}\n",
        r.top_offender.as_deref().unwrap_or("(none)")
    ));
    out.push_str(&format!(
        "exports: incident bundle JSON {} B, doctor JSON {} B \
         (write them with the incident_export bin)\n",
        r.bundle_json.len(),
        r.doctor_json.len()
    ));
    out
}

/// Renders the E13 attribution run: the time decomposition on both
/// sides of the fault, the differential doctor's ranked verdict, and
/// the exemplar's resolution into the incident bundle.
pub fn render_e13(r: &AttributionResults) -> String {
    let mut out = hr("E13 — latency attribution: time decomposition + differential doctor");
    out.push_str(&format!(
        "snapshots: healthy at {} ns ({} spans folded), degraded at {} ns ({} spans folded, {} lost)\n",
        r.before.at_ns, r.before.spans_folded, r.after.at_ns, r.after.spans_folded, r.after.spans_lost
    ));
    out.push_str(&format!(
        "{:28} {:>16} {:>16} {:>16} {:>8}\n",
        "component", "self ns", "queue ns", "barrier ns", "spans"
    ));
    for (name, c) in &r.after.components {
        out.push_str(&format!(
            "{:28} {:>16} {:>16} {:>16} {:>8}\n",
            name, c.self_ns, c.queue_ns, c.barrier_ns, c.spans
        ));
    }
    out.push('\n');
    out.push_str(&r.diff_text);
    out.push_str(&format!(
        "\nexemplar: corr {:#x} past the 20 ms SLO threshold resolves to {} span(s) \
         in the incident bundle ({} bundle(s) captured)\n",
        r.exemplar_corr,
        r.exemplar_journey.len(),
        r.bundles.len()
    ));
    out.push_str("annotated offenders:\n");
    for o in &r.report.top_offenders {
        out.push_str(&format!(
            "  {:>6} milli  {:14} {:20} {:34} {}\n",
            o.severity_milli,
            o.kind,
            o.subject,
            o.dominant,
            if o.exemplar_corr != 0 {
                format!("corr {:#x}", o.exemplar_corr)
            } else {
                String::new()
            }
        ));
    }
    out.push_str(&format!(
        "exports: attribution JSON {} B, diff JSON {} B \
         (write them with the attrib_export bin)\n",
        r.attrib_json.len(),
        r.diff_json.len()
    ));
    out
}

/// Renders the E9 scheduler-scaling sweep.
pub fn render_e9(rows: &[SchedScaleRow]) -> String {
    let mut out = hr("E9 — scheduler scaling: six-bridge federation sweep");
    out.push_str(&format!(
        "{:>10} {:>12} {:>10} {:>14} {:>14} {:>12}\n",
        "devices", "events", "wall s", "events/s", "p99 disp ns", "allocs/ev"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>12} {:>10.2} {:>14.0} {:>14} {:>12.3}\n",
            r.devices,
            r.events,
            r.wall_secs,
            r.events_per_sec,
            r.p99_dispatch_ns,
            r.allocs_per_event
        ));
    }
    out
}

/// Renders the E9c shard-scaling curve.
pub fn render_e9c(rows: &[ShardScaleRow]) -> String {
    let mut out = hr("E9c — sharded execution: per-core scaling of the wing federation");
    out.push_str(&format!(
        "{:>7} {:>9} {:>6} {:>12} {:>9} {:>13} {:>13} {:>13} {:>9}\n",
        "shards",
        "devices",
        "wings",
        "events",
        "wall s",
        "events/s",
        "p99 disp ns",
        "stall ms",
        "windows"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>7} {:>9} {:>6} {:>12} {:>9.2} {:>13.0} {:>13} {:>13.1} {:>9}\n",
            r.shards,
            r.devices,
            r.wings,
            r.events,
            r.wall_secs,
            r.events_per_sec,
            r.p99_dispatch_ns,
            r.barrier_stall_ns as f64 / 1e6,
            r.windows
        ));
    }
    out
}

/// Renders the E9b batched-vs-unbatched dispatch A/B table.
pub fn render_e9b(rows: &[BatchAbRow]) -> String {
    let mut out = hr("E9b — dispatch batch plane A/B: unbatched vs adaptive");
    out.push_str(&format!(
        "{:>10} {:>16} {:>16} {:>9} {:>14} {:>14}\n",
        "devices", "unbatched ev/s", "batched ev/s", "speedup", "un p99 ns", "ba p99 ns"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>10} {:>16.0} {:>16.0} {:>8.2}x {:>14} {:>14}\n",
            r.devices,
            r.unbatched_events_per_sec,
            r.batched_events_per_sec,
            r.speedup,
            r.unbatched_p99_dispatch_ns,
            r.batched_p99_dispatch_ns
        ));
    }
    out
}
