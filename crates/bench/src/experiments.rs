//! The experiment implementations, one per paper table/figure.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{
    diff_attribution, merge_shard_spans, Addr, AlertState, AlertTransition, AttributionReport,
    BurnRateRule, CriticalPath, Ctx, HealthReport, IncidentBundle, IncidentConfig, MetricsSnapshot,
    Objective, ProcId, Process, SamplerConfig, SegmentConfig, SimDuration, SimTime, SloKind,
    SpanRecord, StreamEvent, StreamId, TelemetryConfig, World,
};
use umiddle_bridges::{
    behaviors, direct, BluetoothMapper, MediaBrokerMapper, NativeService, RmiMapper, UpnpMapper,
};
use umiddle_core::{Direction, QosPolicy, Shape, UMessage};
use umiddle_usdl::UsdlLibrary;

use crate::fixtures::{hub_world, runtime_node, ByteMeter, MbSaturatingProducer, WireRule, Wirer};

fn mean(durations: &[SimDuration]) -> SimDuration {
    if durations.is_empty() {
        return SimDuration::ZERO;
    }
    let total: u64 = durations.iter().map(|d| d.as_nanos()).sum();
    SimDuration::from_nanos(total / durations.len() as u64)
}

// =====================================================================
// E1 — Figure 10: service-level bridging (translator generation)
// =====================================================================

/// One row of the Figure-10 reproduction.
#[derive(Debug, Clone)]
pub struct MappingRow {
    /// Device type label.
    pub device: String,
    /// Mean time from native discovery to directory registration.
    pub mean_time: SimDuration,
    /// Instantiation rate (instances per second), the paper's metric.
    pub rate_per_sec: f64,
    /// Paper's approximate rate for comparison.
    pub paper_rate: f64,
    /// Samples measured.
    pub samples: usize,
}

/// Runs the service-level bridging experiment (Figure 10).
///
/// For each device type, `repetitions` isolated worlds are built, each
/// with one device; the measured quantity is the time from the mapper
/// first hearing about the device to the translator's registration.
pub fn e1_service_level(repetitions: usize) -> Vec<MappingRow> {
    use platform_upnp::{AirconLogic, ClockLogic, DeviceLogic, LightLogic, UpnpDevice};

    fn upnp_once(seed: u64, logic: Box<dyn DeviceLogic>) -> SimDuration {
        let (mut world, hub) = hub_world(seed);
        let (_h1, rt) = runtime_node(&mut world, "h1", 0, &[hub]);
        let dev_node = world.add_node("device");
        world.attach(dev_node, hub).unwrap();
        world.add_process(dev_node, Box::new(UpnpDevice::new(logic, 5000)));
        let mapper = UpnpMapper::with_defaults(rt, UsdlLibrary::bundled());
        let stats = mapper.stats_handle();
        let h1 = world.node_of(rt).unwrap();
        world.add_process(h1, Box::new(mapper));
        world.run_until(SimTime::from_secs(30));
        let stats = stats.borrow();
        stats
            .mappings
            .first()
            .map(|(_, _, d)| *d)
            .expect("device mapped within 30s")
    }

    fn mouse_once(seed: u64) -> SimDuration {
        use platform_bluetooth::{HidpMouse, MouseConfig};
        let mut world = World::new(seed);
        world.trace_mut().set_log_enabled(false);
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let (_h1, rt) = runtime_node(&mut world, "h1", 0, &[pico]);
        let m_node = world.add_node("mouse");
        world.attach(m_node, pico).unwrap();
        world.add_process(
            m_node,
            Box::new(HidpMouse::new(MouseConfig {
                name: "HIDP Mouse".to_owned(),
                click_interval: None,
                motion_interval: None,
                click_limit: 0,
            })),
        );
        let mapper = BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled());
        let stats = mapper.stats_handle();
        let h1 = world.node_of(rt).unwrap();
        world.add_process(h1, Box::new(mapper));
        world.run_until(SimTime::from_secs(30));
        let stats = stats.borrow();
        stats
            .mappings
            .first()
            .map(|(_, _, d)| *d)
            .expect("mouse mapped within 30s")
    }

    let mut rows = Vec::new();
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, f64, Box<dyn Fn(u64) -> SimDuration>)> = vec![
        (
            "UPnP clock (14 ports, 2 services)",
            0.7,
            Box::new(|seed| upnp_once(seed, Box::new(ClockLogic::new("Clock", "uuid:clock")))),
        ),
        (
            "UPnP air conditioner",
            3.5,
            Box::new(|seed| upnp_once(seed, Box::new(AirconLogic::new("Aircon", "uuid:ac")))),
        ),
        (
            "UPnP light",
            4.0,
            Box::new(|seed| upnp_once(seed, Box::new(LightLogic::new("Light", "uuid:light")))),
        ),
        ("Bluetooth HIDP mouse", 5.0, Box::new(mouse_once)),
    ];
    for (device, paper_rate, run) in cases {
        let samples: Vec<SimDuration> = (0..repetitions).map(|i| run(1000 + i as u64)).collect();
        let m = mean(&samples);
        rows.push(MappingRow {
            device: device.to_owned(),
            mean_time: m,
            rate_per_sec: if m.is_zero() {
                0.0
            } else {
                1.0 / m.as_secs_f64()
            },
            paper_rate,
            samples: samples.len(),
        });
    }
    rows
}

// =====================================================================
// E2 — §5.2: device-level bridging latency
// =====================================================================

/// Results of the device-level latency experiment.
#[derive(Debug, Clone)]
pub struct DeviceLevelResults {
    /// Mean end-to-end UPnP SetPower latency (input → completion).
    pub upnp_total: SimDuration,
    /// The uMiddle-side share of that latency (control translation).
    pub upnp_umiddle_share: SimDuration,
    /// Number of actions measured.
    pub upnp_samples: usize,
    /// Mean Bluetooth mouse signal translation latency.
    pub mouse_translation: SimDuration,
    /// Number of signals measured.
    pub mouse_samples: usize,
}

/// Runs the §5.2 experiment: 100 SetPower actions on the UPnP light and
/// 100 Bluetooth mouse signals.
pub fn e2_device_level() -> DeviceLevelResults {
    use platform_upnp::{LightLogic, UpnpDevice};

    // --- UPnP light: 100 actions ---
    let (mut world, hub) = hub_world(7);
    let (h1, rt) = runtime_node(&mut world, "h1", 0, &[hub]);
    let light_node = world.add_node("light");
    world.attach(light_node, hub).unwrap();
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Bench Light", "uuid:bl")),
            5000,
        )),
    );
    let mapper = UpnpMapper::with_defaults(rt, UsdlLibrary::bundled());
    let upnp_stats = mapper.stats_handle();
    world.add_process(h1, Box::new(mapper));
    // 100 pulses, spaced well beyond the expected 160 ms latency.
    let shape = Shape::builder()
        .digital("toggle", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Bench Switch",
            shape,
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "toggle",
                SimDuration::from_millis(400),
                100,
                |_| UMessage::text("1"),
            )),
        )),
    );
    let wirer = Wirer::new(
        rt,
        vec![WireRule::new(
            "Bench Switch",
            "toggle",
            "Bench Light",
            "switch-on",
        )],
    );
    world.add_process(h1, Box::new(wirer));
    world.run_until(SimTime::from_secs(120));
    let upnp_latencies = upnp_stats.borrow().action_latencies.clone();

    // --- Bluetooth mouse: 100 signals ---
    let mut world = World::new(8);
    world.trace_mut().set_log_enabled(false);
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let (h1, rt) = runtime_node(&mut world, "h1", 0, &[pico]);
    let m_node = world.add_node("mouse");
    world.attach(m_node, pico).unwrap();
    world.add_process(
        m_node,
        Box::new(platform_bluetooth::HidpMouse::new(
            platform_bluetooth::MouseConfig {
                name: "Bench Mouse".to_owned(),
                click_interval: Some(SimDuration::from_millis(200)),
                motion_interval: None,
                click_limit: 50, // 50 press + 50 release = 100 signals
            },
        )),
    );
    let mapper = BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled());
    let bt_stats = mapper.stats_handle();
    world.add_process(h1, Box::new(mapper));
    world.run_until(SimTime::from_secs(60));
    let mouse_latencies = bt_stats.borrow().translation_latencies.clone();

    DeviceLevelResults {
        upnp_total: mean(&upnp_latencies),
        upnp_umiddle_share: umiddle_bridges::calib::CONTROL_TRANSLATION,
        upnp_samples: upnp_latencies.len(),
        mouse_translation: mean(&mouse_latencies),
        mouse_samples: mouse_latencies.len(),
    }
}

// =====================================================================
// E3 — Figure 11: transport-level bridging throughput
// =====================================================================

/// One Figure-11 series.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Test name.
    pub test: String,
    /// Measured goodput in Mbps.
    pub mbps: f64,
    /// The paper's value.
    pub paper_mbps: f64,
    /// Messages (or bytes for the baseline) observed.
    pub observed: usize,
}

/// A plain bulk TCP sender (for the baseline row).
struct BulkTcp {
    target: Addr,
    total: usize,
    sent: usize,
    stream: Option<StreamId>,
}

impl Process for BulkTcp {
    fn name(&self) -> &str {
        "bulk-tcp"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.stream = ctx.connect(self.target).ok();
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if Some(stream) != self.stream {
            return;
        }
        if matches!(event, StreamEvent::Connected | StreamEvent::Writable) {
            while self.sent < self.total {
                let n = (self.total - self.sent).min(8192);
                match ctx.stream_send(stream, vec![0xCD; n]) {
                    Ok(()) => self.sent += n,
                    Err(_) => break,
                }
            }
        }
    }
}

/// A stream sink that records `(time, cumulative bytes)`.
struct TcpMeter {
    port: u16,
    samples: Rc<RefCell<Vec<(u64, u64)>>>,
}

impl Process for TcpMeter {
    fn name(&self) -> &str {
        "tcp-meter"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.port).unwrap();
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, _stream: StreamId, event: StreamEvent) {
        if let StreamEvent::Data(d) = event {
            let mut samples = self.samples.borrow_mut();
            let total = samples.last().map(|(_, b)| *b).unwrap_or(0) + d.len() as u64;
            samples.push((ctx.now().as_nanos(), total));
        }
    }
}

fn goodput_from_samples(samples: &[(u64, u64)], from: u64, to: u64) -> f64 {
    let at = |t: u64| -> u64 {
        samples
            .iter()
            .take_while(|(ts, _)| *ts <= t)
            .last()
            .map(|(_, b)| *b)
            .unwrap_or(0)
    };
    let bytes = at(to).saturating_sub(at(from));
    bytes as f64 * 8.0 / ((to - from) as f64 / 1e9) / 1e6
}

/// Runs the transport-level throughput experiment (Figure 11).
///
/// `measure_secs` is the measurement window after a warmup; the paper's
/// numbers are 7.9 (TCP), 6.2 (MB), 3.2 (RMI), 2.9 (RMI-MB) Mbps.
pub fn e3_transport_level(measure_secs: u64) -> Vec<ThroughputRow> {
    let warmup = 30u64;
    let end = warmup + measure_secs;
    let mut rows = Vec::new();

    // --- TCP baseline ---
    {
        eprintln!("e3: tcp baseline...");
        let (mut world, hub) = hub_world(31);
        let a = world.add_node("a");
        let b = world.add_node("b");
        world.attach(a, hub).unwrap();
        world.attach(b, hub).unwrap();
        let samples = Rc::new(RefCell::new(Vec::new()));
        world.add_process(
            b,
            Box::new(TcpMeter {
                port: 80,
                samples: Rc::clone(&samples),
            }),
        );
        world.add_process(
            a,
            Box::new(BulkTcp {
                target: Addr::new(b, 80),
                total: 200_000_000, // far more than the window can move
                sent: 0,
                stream: None,
            }),
        );
        world.run_until(SimTime::from_secs(end));
        let samples = samples.borrow();
        rows.push(ThroughputRow {
            test: "TCP baseline".to_owned(),
            mbps: goodput_from_samples(&samples, warmup * 1_000_000_000, end * 1_000_000_000),
            paper_mbps: 7.9,
            observed: samples.len(),
        });
    }

    // --- MB test: broker channel -> uMiddle sink ---
    {
        eprintln!("e3: mb test...");
        let (mut world, hub) = hub_world(32);
        let n1 = world.add_node("n1");
        world.attach(n1, hub).unwrap();
        world.add_process(n1, Box::new(platform_mediabroker::MediaBroker::new()));
        let broker = Addr::new(n1, platform_mediabroker::BROKER_PORT);
        world.add_process(
            n1,
            Box::new(MbSaturatingProducer::new(broker, "bench", 1400)),
        );
        let (h2, rt) = runtime_node(&mut world, "n2", 0, &[hub]);
        world.add_process(
            h2,
            Box::new(MediaBrokerMapper::new(
                rt,
                UsdlLibrary::bundled(),
                broker,
                vec![],
            )),
        );
        let meter = ByteMeter::new();
        let samples = Rc::clone(&meter.samples);
        world.add_process(
            h2,
            Box::new(NativeService::new(
                "MB Meter",
                Shape::builder()
                    .digital(
                        "in",
                        Direction::Input,
                        "application/octet-stream".parse().unwrap(),
                    )
                    .build()
                    .unwrap(),
                rt,
                Box::new(meter),
            )),
        );
        world.add_process(
            h2,
            Box::new(Wirer::new(
                rt,
                vec![WireRule::new(
                    "MB channel bench",
                    "media-out",
                    "MB Meter",
                    "in",
                )],
            )),
        );
        world.run_until(SimTime::from_secs(end));
        let samples = samples.borrow();
        rows.push(ThroughputRow {
            test: "MB test".to_owned(),
            mbps: goodput_from_samples(&samples, warmup * 1_000_000_000, end * 1_000_000_000),
            paper_mbps: 6.2,
            observed: samples.len(),
        });
    }

    // --- RMI test: uMiddle source -> echo -> uMiddle sink ---
    {
        eprintln!("e3: rmi test...");
        let (mut world, hub) = hub_world(33);
        let (h2, rt) = runtime_node(&mut world, "n2", 0, &[hub]);
        let n3 = world.add_node("n3");
        world.attach(n3, hub).unwrap();
        world.add_process(n3, Box::new(platform_rmi::RmiRegistry::new()));
        let registry = Addr::new(n3, platform_rmi::REGISTRY_PORT);
        world.add_process(
            n3,
            Box::new(platform_rmi::RmiObjectServer::echo(2099, registry)),
        );
        world.add_process(
            h2,
            Box::new(RmiMapper::new(
                rt,
                UsdlLibrary::bundled(),
                registry,
                vec!["EchoService".to_owned()],
            )),
        );
        let src_shape = Shape::builder()
            .digital(
                "out",
                Direction::Output,
                "application/octet-stream".parse().unwrap(),
            )
            .build()
            .unwrap();
        world.add_process(
            h2,
            Box::new(NativeService::new(
                "RMI Feeder",
                src_shape,
                rt,
                Box::new(behaviors::PeriodicSource::new(
                    "out",
                    SimDuration::from_millis(1),
                    0,
                    |_| {
                        UMessage::new(
                            "application/octet-stream".parse().unwrap(),
                            vec![0xEF; 1400],
                        )
                    },
                )),
            )),
        );
        let meter = ByteMeter::new();
        let samples = Rc::clone(&meter.samples);
        world.add_process(
            h2,
            Box::new(NativeService::new(
                "RMI Meter",
                Shape::builder()
                    .digital(
                        "in",
                        Direction::Input,
                        "application/octet-stream".parse().unwrap(),
                    )
                    .build()
                    .unwrap(),
                rt,
                Box::new(meter),
            )),
        );
        world.add_process(
            h2,
            Box::new(Wirer::new(
                rt,
                vec![
                    WireRule::new("RMI Feeder", "out", "EchoService", "request")
                        .with_qos(QosPolicy::bounded_drop_newest(64 * 1024)),
                    WireRule::new("EchoService", "response", "RMI Meter", "in"),
                ],
            )),
        );
        world.run_until(SimTime::from_secs(end));
        let samples = samples.borrow();
        rows.push(ThroughputRow {
            test: "RMI test".to_owned(),
            mbps: goodput_from_samples(&samples, warmup * 1_000_000_000, end * 1_000_000_000),
            paper_mbps: 3.2,
            observed: samples.len(),
        });
    }

    // --- RMI-MB test: MB channel -> RMI echo -> uMiddle sink ---
    {
        eprintln!("e3: rmi-mb test...");
        let (mut world, hub) = hub_world(34);
        let n1 = world.add_node("n1");
        world.attach(n1, hub).unwrap();
        world.add_process(n1, Box::new(platform_mediabroker::MediaBroker::new()));
        let broker = Addr::new(n1, platform_mediabroker::BROKER_PORT);
        // Paced at ~4.7 Mbps: stands in for the TCP congestion control the
        // simulated transport lacks (see MbSaturatingProducer docs).
        world.add_process(
            n1,
            Box::new(MbSaturatingProducer::paced(
                broker,
                "bench",
                1400,
                SimDuration::from_micros(2_400),
            )),
        );
        let (h2, rt) = runtime_node(&mut world, "n2", 0, &[hub]);
        let n3 = world.add_node("n3");
        world.attach(n3, hub).unwrap();
        world.add_process(n3, Box::new(platform_rmi::RmiRegistry::new()));
        let registry = Addr::new(n3, platform_rmi::REGISTRY_PORT);
        // One-way delivery measurement: the RMI endpoint acknowledges
        // instead of echoing the payload (paper §5.3: "sends the messages
        // to the Java RMI service through uMiddle").
        world.add_process(
            n3,
            Box::new(platform_rmi::RmiObjectServer::echo_ack(2099, registry)),
        );
        world.add_process(
            h2,
            Box::new(MediaBrokerMapper::new(
                rt,
                UsdlLibrary::bundled(),
                broker,
                vec![],
            )),
        );
        world.add_process(
            h2,
            Box::new(RmiMapper::new(
                rt,
                UsdlLibrary::bundled(),
                registry,
                vec!["EchoService".to_owned()],
            )),
        );
        let meter = ByteMeter::new();
        let samples = Rc::clone(&meter.samples);
        world.add_process(
            h2,
            Box::new(NativeService::new(
                "Bridge Meter",
                Shape::builder()
                    .digital(
                        "in",
                        Direction::Input,
                        "application/octet-stream".parse().unwrap(),
                    )
                    .build()
                    .unwrap(),
                rt,
                Box::new(meter),
            )),
        );
        world.add_process(
            h2,
            Box::new(Wirer::new(
                rt,
                vec![
                    WireRule::new("MB channel bench", "media-out", "EchoService", "request")
                        .with_qos(QosPolicy::bounded_drop_newest(64 * 1024)),
                    WireRule::new("EchoService", "response", "Bridge Meter", "in"),
                ],
            )),
        );
        world.run_until(SimTime::from_secs(end));
        // Each sample is one acknowledged 1400-byte delivery; compute
        // goodput from the delivery count in the window.
        let samples = samples.borrow();
        let in_window = samples
            .iter()
            .filter(|(t, _)| *t >= warmup * 1_000_000_000 && *t <= end * 1_000_000_000)
            .count();
        let mbps = in_window as f64 * 1400.0 * 8.0 / measure_secs as f64 / 1e6;
        rows.push(ThroughputRow {
            test: "RMI-MB test".to_owned(),
            mbps,
            paper_mbps: 2.9,
            observed: samples.len(),
        });
    }

    rows
}

// =====================================================================
// E4 — design-space ablation: direct vs mediated translation
// =====================================================================

/// Results of the translation-model ablation.
#[derive(Debug, Clone)]
pub struct AblationTranslationResults {
    /// `(device types, direct translators, mediated translators)` growth.
    pub growth: Vec<(usize, usize, usize)>,
    /// Images the hardwired direct bridge delivered in its scenario.
    pub direct_delivered: u64,
    /// RenderMedia actions the mediated stack delivered in the same
    /// scenario.
    pub mediated_delivered: u64,
}

/// Runs the E4 ablation: the n(n−1)-vs-n growth table, plus both bridge
/// styles driving the camera→TV scenario.
pub fn e4_ablation_translation() -> AblationTranslationResults {
    use platform_bluetooth::BipCamera;
    use platform_upnp::{MediaRendererLogic, UpnpDevice};

    let growth: Vec<(usize, usize, usize)> = [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&n| {
            let c = direct::translators_required(n);
            (n, c.direct, c.mediated)
        })
        .collect();

    // Direct bridge scenario.
    let direct_delivered = {
        let (mut world, hub) = hub_world(41);
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let bridge_node = world.add_node("bridge");
        world.attach(bridge_node, hub).unwrap();
        world.attach(bridge_node, pico).unwrap();
        let cam_node = world.add_node("camera");
        world.attach(cam_node, pico).unwrap();
        world.add_process(cam_node, Box::new(BipCamera::new("Cam", 3, 10_000)));
        let tv_node = world.add_node("tv");
        world.attach(tv_node, hub).unwrap();
        world.add_process(
            tv_node,
            Box::new(UpnpDevice::new(
                Box::new(MediaRendererLogic::new("TV", "uuid:tv")),
                5000,
            )),
        );
        world.add_process(
            bridge_node,
            Box::new(direct::DirectBipToRendererBridge::new(
                6000,
                SimDuration::from_secs(10),
            )),
        );
        world.run_until(SimTime::from_secs(60));
        world.trace().counter("direct_bridge.delivered")
    };

    // Mediated scenario: same devices through uMiddle.
    let mediated_delivered = {
        let (mut world, hub) = hub_world(42);
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let (h1, rt) = runtime_node(&mut world, "h1", 0, &[hub, pico]);
        let cam_node = world.add_node("camera");
        world.attach(cam_node, pico).unwrap();
        world.add_process(cam_node, Box::new(BipCamera::new("Cam", 3, 10_000)));
        let tv_node = world.add_node("tv");
        world.attach(tv_node, hub).unwrap();
        world.add_process(
            tv_node,
            Box::new(UpnpDevice::new(
                Box::new(MediaRendererLogic::new("TV", "uuid:tv")),
                5000,
            )),
        );
        world.add_process(
            h1,
            Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
        );
        world.add_process(
            h1,
            Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
        );
        // A trigger that captures every 10 s.
        let shape = Shape::builder()
            .digital("press", Direction::Output, "text/plain".parse().unwrap())
            .build()
            .unwrap();
        world.add_process(
            h1,
            Box::new(NativeService::new(
                "Trigger",
                shape,
                rt,
                Box::new(behaviors::PeriodicSource::new(
                    "press",
                    SimDuration::from_secs(10),
                    0,
                    |_| UMessage::text("snap"),
                )),
            )),
        );
        world.add_process(
            h1,
            Box::new(Wirer::new(
                rt,
                vec![
                    WireRule::new("Trigger", "press", "Cam", "capture"),
                    WireRule::new("Cam", "image-out", "TV", "media-in"),
                ],
            )),
        );
        world.run_until(SimTime::from_secs(60));
        world.trace().counter("upnp.actions")
    };

    AblationTranslationResults {
        growth,
        direct_delivered,
        mediated_delivered,
    }
}

// =====================================================================
// E5 — QoS ablation (the paper's future work, §5.3/§7)
// =====================================================================

/// One QoS-policy row.
#[derive(Debug, Clone)]
pub struct QosRow {
    /// Policy label.
    pub policy: String,
    /// Messages delivered to the slow consumer.
    pub delivered: u64,
    /// Messages dropped by the policy.
    pub dropped: u64,
    /// High-water mark of buffered bytes.
    pub max_buffered: usize,
}

/// Runs the QoS ablation: a fast producer against a slow consumer under
/// different translation-buffer policies.
pub fn e5_ablation_qos() -> Vec<QosRow> {
    let policies: Vec<(String, QosPolicy)> = vec![
        (
            "unbounded (paper's original)".to_owned(),
            QosPolicy::unbounded(),
        ),
        (
            "bounded 16 KiB, drop-oldest".to_owned(),
            QosPolicy::bounded_drop_oldest(16 * 1024),
        ),
        (
            "bounded 16 KiB, drop-newest".to_owned(),
            QosPolicy::bounded_drop_newest(16 * 1024),
        ),
        (
            "bounded 16 KiB + 20 KB/s token bucket".to_owned(),
            QosPolicy::bounded_drop_oldest(16 * 1024).with_rate(20_000, 4_096),
        ),
    ];
    let mut rows = Vec::new();
    for (i, (label, qos)) in policies.into_iter().enumerate() {
        let (mut world, hub) = hub_world(50 + i as u64);
        let node = world.add_node("host");
        world.attach(node, hub).unwrap();
        let rt_obj = umiddle_core::UmiddleRuntime::new(umiddle_core::RuntimeConfig::new(
            umiddle_core::RuntimeId(0),
        ));
        let rt_stats = rt_obj.stats_handle();
        let rt = world.add_process(node, Box::new(rt_obj));

        let src_shape = Shape::builder()
            .digital("out", Direction::Output, "text/plain".parse().unwrap())
            .build()
            .unwrap();
        world.add_process(
            node,
            Box::new(NativeService::new(
                "Fast Producer",
                src_shape,
                rt,
                Box::new(behaviors::PeriodicSource::new(
                    "out",
                    SimDuration::from_millis(5),
                    2000,
                    |i| {
                        UMessage::new("text/plain".parse().unwrap(), vec![b'x'; 1000])
                            .with_meta("seq", i.to_string())
                    },
                )),
            )),
        );
        let mut consumer = behaviors::Echo::new("unused-out");
        consumer.cost = SimDuration::from_millis(50);
        let count = Rc::clone(&consumer.count);
        let sink_shape = Shape::builder()
            .digital("in", Direction::Input, "text/plain".parse().unwrap())
            .digital(
                "unused-out",
                Direction::Output,
                "text/plain".parse().unwrap(),
            )
            .build()
            .unwrap();
        world.add_process(
            node,
            Box::new(NativeService::new(
                "Slow Consumer",
                sink_shape,
                rt,
                Box::new(consumer),
            )),
        );
        world.add_process(
            node,
            Box::new(Wirer::new(
                rt,
                vec![WireRule::new("Fast Producer", "out", "Slow Consumer", "in").with_qos(qos)],
            )),
        );
        world.run_until(SimTime::from_secs(60));
        let stats = *rt_stats.borrow();
        rows.push(QosRow {
            policy: label,
            delivered: *count.borrow(),
            dropped: stats.qos_dropped,
            max_buffered: stats.max_buffered_bytes,
        });
    }
    rows
}

// =====================================================================
// E6 — directory scalability across runtimes
// =====================================================================

/// One directory-scale row.
#[derive(Debug, Clone)]
pub struct DirectoryScaleRow {
    /// Number of runtimes.
    pub runtimes: usize,
    /// Translators per runtime.
    pub per_runtime: usize,
    /// Time until every runtime's watcher saw every translator.
    pub convergence: SimDuration,
    /// Total directory datagrams on the wire.
    pub advertisements: u64,
}

/// Runs the directory-scalability experiment: N runtimes × M services,
/// measuring federation-wide convergence.
pub fn e6_directory_scale(sizes: &[usize], per_runtime: usize) -> Vec<DirectoryScaleRow> {
    use umiddle_core::{DirectoryEvent, Query, RuntimeClient, RuntimeEvent};

    struct Watcher {
        runtime: simnet::ProcId,
        expected: usize,
        seen: Rc<RefCell<usize>>,
        done_at: Rc<RefCell<Option<SimTime>>>,
    }
    impl Process for Watcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let client = RuntimeClient::new(self.runtime);
            client.add_listener(ctx, Query::All);
        }
        fn on_local(
            &mut self,
            ctx: &mut Ctx<'_>,
            _from: simnet::ProcId,
            msg: simnet::LocalMessage,
        ) {
            let Ok(event) = msg.downcast::<RuntimeEvent>() else {
                return;
            };
            if let RuntimeEvent::Directory(DirectoryEvent::Appeared(_)) = *event {
                let mut seen = self.seen.borrow_mut();
                *seen += 1;
                if *seen >= self.expected && self.done_at.borrow().is_none() {
                    *self.done_at.borrow_mut() = Some(ctx.now());
                }
            }
        }
    }

    let mut rows = Vec::new();
    for &n in sizes {
        let (mut world, hub) = hub_world(60 + n as u64);
        let mut watchers = Vec::new();
        for i in 0..n {
            let (node, rt) = runtime_node(&mut world, &format!("h{i}"), i as u32, &[hub]);
            for j in 0..per_runtime {
                let shape = Shape::builder()
                    .digital("out", Direction::Output, "text/plain".parse().unwrap())
                    .build()
                    .unwrap();
                world.add_process(
                    node,
                    Box::new(NativeService::new(
                        &format!("svc-{i}-{j}"),
                        shape,
                        rt,
                        Box::new(behaviors::Recorder::new()),
                    )),
                );
            }
            let done_at = Rc::new(RefCell::new(None));
            let seen = Rc::new(RefCell::new(0));
            world.add_process(
                node,
                Box::new(Watcher {
                    runtime: rt,
                    expected: n * per_runtime,
                    seen,
                    done_at: Rc::clone(&done_at),
                }),
            );
            watchers.push(done_at);
        }
        world.run_until(SimTime::from_secs(60));
        let convergence = watchers
            .iter()
            .filter_map(|d| *d.borrow())
            .max()
            .unwrap_or(SimTime::from_secs(60));
        rows.push(DirectoryScaleRow {
            runtimes: n,
            per_runtime,
            convergence: convergence.saturating_since(SimTime::ZERO),
            advertisements: world.trace().counter("umiddle.registrations"),
        });
    }
    rows
}

// =====================================================================
// E7 — ablation: aggregated vs scattered visibility (§2.2.2 / §3.6)
// =====================================================================

/// Results of the visibility ablation.
#[derive(Debug, Clone)]
pub struct ScatterResults {
    /// Camera-capture execution (mapper input → image emitted) when the
    /// command originates inside the semantic space.
    pub aggregated_capture: SimDuration,
    /// The same execution when the command originates from a native UPnP
    /// control point through the exporter — should match: the bridge work
    /// is identical.
    pub scattered_capture: SimDuration,
    /// The *additional* command-delivery hop scattering introduces: the
    /// native control point's SOAP round trip to the exporter.
    pub scattered_command_rt: SimDuration,
    /// Captures measured in each mode.
    pub samples: (usize, usize),
}

/// Runs the scattered-visibility ablation: the identical Bluetooth
/// camera capture, once commanded from inside the intermediary semantic
/// space, once from a native UPnP control point through the exporter.
pub fn e7_ablation_scatter() -> ScatterResults {
    use platform_bluetooth::BipCamera;
    use umiddle_bridges::UpnpExporter;

    // --- aggregated: a native uMiddle trigger fires the shutter ---
    let aggregated = {
        let (mut world, hub) = hub_world(71);
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let (h1, rt) = runtime_node(&mut world, "h1", 0, &[hub, pico]);
        let cam_node = world.add_node("camera");
        world.attach(cam_node, pico).unwrap();
        world.add_process(cam_node, Box::new(BipCamera::new("Cam", 1, 8_000)));
        let mapper = BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled());
        let stats = mapper.stats_handle();
        world.add_process(h1, Box::new(mapper));
        let shape = Shape::builder()
            .digital("press", Direction::Output, "text/plain".parse().unwrap())
            .build()
            .unwrap();
        world.add_process(
            h1,
            Box::new(NativeService::new(
                "Trigger",
                shape,
                rt,
                Box::new(behaviors::PeriodicSource::new(
                    "press",
                    SimDuration::from_secs(10),
                    10,
                    |_| UMessage::text("snap"),
                )),
            )),
        );
        world.add_process(
            h1,
            Box::new(Wirer::new(
                rt,
                vec![WireRule::new("Trigger", "press", "Cam", "capture")],
            )),
        );
        world.run_until(SimTime::from_secs(130));
        let latencies = stats.borrow().action_latencies.clone();
        (mean_of(&latencies), latencies.len())
    };

    // --- scattered: a native UPnP control point via the exporter ---
    let scattered = {
        use platform_upnp::{ControlPoint, CpEvent, SoapCall};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct NativeCp {
            cp: ControlPoint,
            target: Option<Addr>,
            pending_start: Option<SimTime>,
            latencies: Rc<RefCell<Vec<SimDuration>>>,
            shots: u32,
        }
        impl NativeCp {
            fn fire(&mut self, ctx: &mut Ctx<'_>) {
                if let (Some(location), None) = (self.target, self.pending_start) {
                    self.pending_start = Some(ctx.now());
                    let call = SoapCall::new("Exported", "SetCapture").with_arg("Value", "snap");
                    self.cp.invoke(ctx, location, &call, u64::from(self.shots));
                }
            }
        }
        impl Process for NativeCp {
            fn name(&self) -> &str {
                "native-cp"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.bind(7000).unwrap();
                let _ = ctx.join_group(platform_upnp::SSDP_GROUP);
                self.cp.listen_events(ctx, 7001);
                ctx.set_timer(SimDuration::from_secs(5), 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                match token {
                    1 if self.target.is_none() => {
                        self.cp.search(ctx, "urn:umiddle:device:Exported:1", 7000);
                        ctx.set_timer(SimDuration::from_secs(5), 1);
                    }
                    2 => self.fire(ctx),
                    _ => {}
                }
            }
            fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: simnet::Datagram) {
                if let Some(CpEvent::DeviceSeen { location, .. }) = self.cp.handle_ssdp(ctx, &d) {
                    if self.target.is_none() {
                        self.target = Some(location);
                        ctx.set_timer(SimDuration::from_secs(5), 2);
                    }
                }
            }
            fn on_stream(
                &mut self,
                ctx: &mut Ctx<'_>,
                s: simnet::StreamId,
                e: simnet::StreamEvent,
            ) {
                for ev in self.cp.handle_stream(ctx, s, e) {
                    if matches!(ev, CpEvent::ActionResult { .. }) {
                        if let Some(start) = self.pending_start.take() {
                            self.latencies
                                .borrow_mut()
                                .push(ctx.now().saturating_since(start));
                            self.shots += 1;
                            if self.shots < 10 {
                                ctx.set_timer(SimDuration::from_secs(10), 2);
                            }
                        }
                    }
                }
            }
        }

        let (mut world, hub) = hub_world(72);
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let (h1, rt) = runtime_node(&mut world, "h1", 0, &[hub, pico]);
        let cam_node = world.add_node("camera");
        world.attach(cam_node, pico).unwrap();
        world.add_process(cam_node, Box::new(BipCamera::new("Cam", 1, 8_000)));
        let mapper = BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled());
        let mapper_stats = mapper.stats_handle();
        world.add_process(h1, Box::new(mapper));
        world.add_process(
            h1,
            Box::new(UpnpExporter::new(
                rt,
                umiddle_core::Query::Platform("bluetooth".to_owned()),
                6100,
            )),
        );
        let cp_node = world.add_node("cp");
        world.attach(cp_node, hub).unwrap();
        let latencies = Rc::new(RefCell::new(Vec::new()));
        world.add_process(
            cp_node,
            Box::new(NativeCp {
                cp: ControlPoint::new(),
                target: None,
                pending_start: None,
                latencies: Rc::clone(&latencies),
                shots: 0,
            }),
        );
        world.run_until(SimTime::from_secs(180));
        let soap_rts = latencies.borrow().clone();
        let captures = mapper_stats.borrow().action_latencies.clone();
        (mean_of(&captures), mean_of(&soap_rts), captures.len())
    };

    ScatterResults {
        aggregated_capture: aggregated.0,
        scattered_capture: scattered.0,
        scattered_command_rt: scattered.1,
        samples: (aggregated.1, scattered.2),
    }
}

fn mean_of(durations: &[SimDuration]) -> SimDuration {
    if durations.is_empty() {
        return SimDuration::ZERO;
    }
    let total: u64 = durations.iter().map(|d| d.as_nanos()).sum();
    SimDuration::from_nanos(total / durations.len() as u64)
}

// =====================================================================
// E8 — observability: metrics registry + path spans
// =====================================================================

/// Results of the observability run: the federation-wide metrics
/// snapshot, one reconstructed cross-platform path, its critical-path
/// breakdown, and the deterministic trace exports.
#[derive(Debug, Clone)]
pub struct ObservabilityResults {
    /// Every counter, gauge and latency histogram the run produced.
    pub snapshot: simnet::MetricsSnapshot,
    /// Total spans recorded across all paths.
    pub span_count: usize,
    /// Spans lost to the bounded span log (should be 0).
    pub spans_dropped: u64,
    /// Correlation id of the bridged Bluetooth→UPnP path.
    pub bridged_corr: Option<u64>,
    /// One Bluetooth→uMiddle→UPnP path, reconstructed from its spans.
    pub sample_path: Vec<String>,
    /// Per-stage latency attribution for the bridged path, aggregated
    /// over all 100 mouse signals.
    pub critical_path: Option<simnet::CriticalPath>,
    /// Chrome/Perfetto `trace_event` JSON of every span (load in
    /// `ui.perfetto.dev`). Byte-identical across seeded runs.
    pub perfetto: String,
    /// Folded-stack flamegraph lines, weighted by span self time (ns).
    /// Byte-identical across seeded runs.
    pub folded: String,
}

/// Runs the observability experiment: a two-runtime federation bridging
/// a Bluetooth mouse (h1) to a UPnP light (h2), instrumented end to end.
///
/// The snapshot contains the paper-figure-aligned histograms —
/// `umiddle.discovery_latency` (§3.6 advertisement propagation),
/// `umiddle.translation_latency` / `bridge.*.translation` (§5.2 per-hop
/// overhead) and `umiddle.path_latency` (end-to-end §5.2) — and is
/// byte-for-byte deterministic for a fixed seed.
pub fn e8_observability() -> ObservabilityResults {
    use platform_bluetooth::{HidpMouse, MouseConfig};
    use platform_upnp::{LightLogic, UpnpDevice};

    let mut world = World::new(42);
    world.trace_mut().set_log_enabled(false);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());

    // h1 (rt0): the Bluetooth half of the federation.
    let (h1, rt1) = runtime_node(&mut world, "h1", 0, &[hub, pico]);
    let mouse_node = world.add_node("mouse");
    world.attach(mouse_node, pico).unwrap();
    world.add_process(
        mouse_node,
        Box::new(HidpMouse::new(MouseConfig {
            name: "Obs Mouse".to_owned(),
            click_interval: Some(SimDuration::from_millis(400)),
            motion_interval: None,
            click_limit: 50, // 50 press + 50 release = 100 signals
        })),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled())),
    );

    // h2 (rt1): the UPnP half.
    let (h2, rt2) = runtime_node(&mut world, "h2", 1, &[hub]);
    let light_node = world.add_node("light");
    world.attach(light_node, hub).unwrap();
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Obs Light", "uuid:obs-l")),
            5000,
        )),
    );
    world.add_process(
        h2,
        Box::new(UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled())),
    );

    // Wire mouse clicks to the light across the federation: every click
    // makes the two-hop bridge path Bluetooth → rt0 → rt1 → UPnP.
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt1,
            vec![WireRule::new(
                "Obs Mouse",
                "clicks",
                "Obs Light",
                "switch-on",
            )],
        )),
    );

    world.run_until(SimTime::from_secs(60));

    let trace = world.trace();
    let corr = trace
        .spans()
        .iter()
        .find(|s| s.stage == "bridge.upnp.input")
        .map(|s| s.corr);
    let sample_path = corr
        .map(|c| {
            // The first click's complete journey: everything up to and
            // including the first UPnP bridge hop.
            let spans: Vec<_> = trace.spans_for(c).collect();
            let end = spans
                .iter()
                .position(|s| s.stage == "bridge.upnp.input")
                .map_or(spans.len(), |i| i + 1);
            spans[..end]
                .iter()
                .map(|s| {
                    let dur = match s.duration() {
                        Some(d) if !d.is_zero() => d.to_string(),
                        Some(_) => "·".to_owned(),
                        None => "open".to_owned(),
                    };
                    format!(
                        "{:>14} {:>12}  {:<18} {:<22} {}",
                        s.start.to_string(),
                        dur,
                        s.source,
                        s.stage,
                        s.detail
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let critical_path = corr.and_then(|c| simnet::CriticalPath::analyze(trace.spans(), c));

    ObservabilityResults {
        snapshot: trace.metrics().snapshot(),
        span_count: trace.spans().len(),
        spans_dropped: trace.spans_dropped(),
        bridged_corr: corr,
        sample_path,
        critical_path,
        perfetto: simnet::perfetto_trace_json(trace.spans()),
        folded: simnet::folded_stacks(trace.spans()),
    }
}

// =====================================================================
// E9 — scheduler scaling: 100 → 1000 devices across all six bridges
// =====================================================================

/// One row of the E9 federation sweep.
#[derive(Debug, Clone)]
pub struct SchedScaleRow {
    /// Total native devices in the federation.
    pub devices: usize,
    /// Scheduler events dispatched inside the measurement window.
    pub events: u64,
    /// Wall-clock seconds spent simulating the window (batched loop).
    pub wall_secs: f64,
    /// Events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// p99 wall-clock cost of dispatching one event, in nanoseconds.
    pub p99_dispatch_ns: u64,
    /// Payload-buffer allocations per dispatched event in the window.
    pub allocs_per_event: f64,
}

/// One E9 wiring rule: connect the cross product of every translator
/// whose name contains `src_tag` to every translator containing
/// `dst_tag` — prefix groups instead of per-device rules, so one rule
/// covers a whole device population.
struct FanRule {
    src_tag: &'static str,
    src_port: &'static str,
    dst_tag: &'static str,
    dst_port: &'static str,
}

struct FanWirer {
    runtime: simnet::ProcId,
    client: Option<umiddle_core::RuntimeClient>,
    rules: Vec<FanRule>,
    srcs: Vec<Vec<umiddle_core::TranslatorId>>,
    dsts: Vec<Vec<umiddle_core::TranslatorId>>,
}

impl FanWirer {
    fn new(runtime: simnet::ProcId, rules: Vec<FanRule>) -> FanWirer {
        let n = rules.len();
        FanWirer {
            runtime,
            client: None,
            rules,
            srcs: vec![Vec::new(); n],
            dsts: vec![Vec::new(); n],
        }
    }
}

impl Process for FanWirer {
    fn name(&self) -> &str {
        "e9-fan-wirer"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let client = umiddle_core::RuntimeClient::new(self.runtime);
        client.add_listener(ctx, umiddle_core::Query::All);
        self.client = Some(client);
    }
    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: simnet::ProcId, msg: simnet::LocalMessage) {
        use umiddle_core::{DirectoryEvent, PortRef, RuntimeEvent, TranslatorId};
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                let id = profile.id();
                let name = profile.name().to_owned();
                let mut to_wire: Vec<(TranslatorId, &str, TranslatorId, &str)> = Vec::new();
                for (i, rule) in self.rules.iter().enumerate() {
                    if name.contains(rule.src_tag) {
                        self.srcs[i].push(id);
                        for &dst in &self.dsts[i] {
                            to_wire.push((id, rule.src_port, dst, rule.dst_port));
                        }
                    }
                    if name.contains(rule.dst_tag) {
                        self.dsts[i].push(id);
                        for &src in &self.srcs[i] {
                            to_wire.push((src, rule.src_port, id, rule.dst_port));
                        }
                    }
                }
                let client = self.client.as_mut().expect("client set");
                for (src, src_port, dst, dst_port) in to_wire {
                    client.connect_ports(
                        ctx,
                        PortRef::new(src, src_port),
                        PortRef::new(dst, dst_port),
                        QosPolicy::unbounded(),
                    );
                }
            }
            RuntimeEvent::ConnectFailed { reason, .. } => {
                panic!("E9 wiring failed: {reason}");
            }
            _ => {}
        }
    }
}

/// Builds the E9 federation: `n` native devices split near-evenly
/// across all six bridge platforms, each population producing steady
/// per-device traffic into native sinks on the runtime host.
///
/// Rates are sized so no single mapper saturates (each mapper
/// serializes its per-message `busy` translation cost): at n = 1000
/// the busiest mapper sits near ~60% utilization, keeping queues
/// bounded while the scheduler and dispatch path stay under constant
/// per-device load — which is what makes the events/sec sweep a
/// scaling measurement rather than an overload measurement.
///
/// The same sizing discipline applies to the network: the backbone is
/// a switched segment (per-sender capacity) rather than the paper's
/// 10 Mbps hub, and the 38.4 kbps mote radio is sharded into channels
/// of at most 32 motes. A shared medium with aggregate load above
/// line rate never reaches steady state — its busy horizon recedes
/// and undelivered frames accumulate in the scheduler without bound —
/// which would turn the sweep into a measurement of backlog churn.
fn e9_world(n: usize) -> World {
    let mut world = World::new(0xE9 + n as u64);
    world.trace_mut().set_log_enabled(false);
    e9_wing(&mut world, 0, 1, n);
    world
}

/// Builds one E9 wing into `world`: a self-contained copy of the E9
/// federation (own backbone segment, own runtime, own mappers and
/// device populations), named so wing 0 is byte-identical to the
/// original single-wing fixture. With `wings > 1` on a sharded world
/// (E9c), each wing also joins the cross-shard temperature ring: its
/// motes additionally fan into a [`ShardUplink`] whose hand-off frames
/// arrive at the *next* wing's [`ShardIngress`] (inlet = destination
/// wing id) and drain into that wing's Temp Sink — so shard boundaries
/// carry real uMiddle traffic, not just independent per-shard load.
///
/// [`ShardUplink`]: umiddle_bridges::ShardUplink
/// [`ShardIngress`]: umiddle_bridges::ShardIngress
fn e9_wing(world: &mut World, wing: usize, wings: usize, n: usize) {
    use platform_bluetooth::{HidpMouse, MouseConfig};
    use platform_motes::{BaseStation, Mote};
    use platform_rmi::{JavaValue, RmiObjectServer, RmiRegistry, REGISTRY_PORT};
    use platform_upnp::{LightLogic, UpnpDevice};
    use platform_webservices::WsServer;
    use umiddle_bridges::{MotesMapper, ShardIngress, ShardUplink, WsMapper};

    // Display and node names get " w{wing}", machine names (uuids,
    // channel ids) "-w{wing}"; both empty for wing 0 so the single-wing
    // fixture stays byte-identical to the pre-sharding one.
    let tag = if wing == 0 {
        String::new()
    } else {
        format!(" w{wing}")
    };
    let utag = if wing == 0 {
        String::new()
    } else {
        format!("-w{wing}")
    };

    // Six near-equal groups, one per bridge platform.
    let group = |k: usize| n / 6 + usize::from(k < n % 6);

    let hub = world.add_segment(SegmentConfig::ethernet_100mbps_switch());
    let (h1, rt) = runtime_node(world, &format!("h1{tag}"), wing as u32, &[hub]);

    // UPnP lights, toggled in fan-out by one native driver.
    for i in 0..group(0) {
        let node = world.add_node(format!("light{i}{tag}"));
        world.attach(node, hub).expect("attach");
        world.add_process(
            node,
            Box::new(UpnpDevice::new(
                Box::new(LightLogic::new(
                    &format!("E9 Light {i:04}{tag}"),
                    &format!("uuid:e9l{i}{utag}"),
                )),
                5000,
            )),
        );
    }
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // Bluetooth mice, clicking forever. A piconet holds the master
    // plus at most 7 slaves, so the population is sharded across
    // piconets with the host (and its mapper) joined to each.
    let mut pico = None;
    for i in 0..group(1) {
        if i % 7 == 0 {
            let p = world.add_segment(SegmentConfig::bluetooth_piconet());
            world.attach(h1, p).expect("attach");
            pico = Some(p);
        }
        let node = world.add_node(format!("mouse{i}{tag}"));
        world
            .attach(node, pico.expect("piconet created"))
            .expect("attach");
        world.add_process(
            node,
            Box::new(HidpMouse::new(MouseConfig {
                name: format!("HIDP Mouse {i:04}{tag}"),
                click_interval: Some(SimDuration::from_secs(12)),
                motion_interval: None,
                click_limit: 0,
            })),
        );
    }
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // Motes reporting temperature on sensor radios, sharded into
    // channels of 32 so the 38.4 kbps medium stays below saturation.
    let mut radio = None;
    for i in 0..group(2) {
        if i % 32 == 0 {
            let r = world.add_segment(SegmentConfig::mote_radio());
            world.attach(h1, r).expect("attach");
            radio = Some(r);
        }
        let node = world.add_node(format!("mote{i}{tag}"));
        world
            .attach(node, radio.expect("radio created above"))
            .expect("attach");
        world.add_process(
            node,
            Box::new(Mote::new(i as u16 + 1, SimDuration::from_secs(2))),
        );
    }
    let motes_mapper = world.add_process(
        h1,
        Box::new(MotesMapper::new(rt, UsdlLibrary::bundled(), None)),
    );
    world.add_process(h1, Box::new(BaseStation::new(Some(motes_mapper))));

    // RMI echo objects behind one registry; each name gets its own
    // templated USDL document (the paper's no-code extensibility path).
    let reg_node = world.add_node(format!("rmi-registry{tag}"));
    world.attach(reg_node, hub).expect("attach");
    world.add_process(reg_node, Box::new(RmiRegistry::new()));
    let registry = Addr::new(reg_node, REGISTRY_PORT);
    let srv_node = world.add_node(format!("rmi-objects{tag}"));
    world.attach(srv_node, hub).expect("attach");
    let mut rmi_lib = UsdlLibrary::bundled();
    let mut rmi_names = Vec::new();
    for i in 0..group(3) {
        let name = format!("EchoSvc {i:04}{tag}");
        rmi_lib
            .register_xml(&umiddle_usdl::builtin::RMI_ECHO.replace("EchoService", &name))
            .expect("templated RMI USDL is valid");
        world.add_process(
            srv_node,
            Box::new(RmiObjectServer::new(
                &name,
                3000 + i as u16,
                registry,
                Box::new(|method, args| {
                    if method == "echo" {
                        Ok(args.first().cloned().unwrap_or(JavaValue::Null))
                    } else {
                        Err(format!("java.rmi.ServerException: no method {method}"))
                    }
                }),
            )),
        );
        rmi_names.push(name);
    }
    world.add_process(
        h1,
        Box::new(RmiMapper::new(rt, rmi_lib, registry, rmi_names)),
    );

    // MediaBroker channels fed by paced producers.
    let mb_node = world.add_node(format!("broker{tag}"));
    world.attach(mb_node, hub).expect("attach");
    world.add_process(mb_node, Box::new(platform_mediabroker::MediaBroker::new()));
    let broker_addr = Addr::new(mb_node, platform_mediabroker::BROKER_PORT);
    for i in 0..group(4) {
        world.add_process(
            mb_node,
            Box::new(MbSaturatingProducer::paced(
                broker_addr,
                &format!("e9chan{i:04}{utag}"),
                256,
                SimDuration::from_secs(1),
            )),
        );
    }
    world.add_process(
        h1,
        Box::new(MediaBrokerMapper::new(
            rt,
            UsdlLibrary::bundled(),
            broker_addr,
            vec![],
        )),
    );

    // Web-service loggers, appended to in fan-out and tailed back out.
    let ws_node = world.add_node(format!("ws{tag}"));
    world.attach(ws_node, hub).expect("attach");
    let mut endpoints = Vec::new();
    for i in 0..group(5) {
        let port = 8080 + i as u16;
        world.add_process(
            ws_node,
            Box::new(WsServer::logger(&format!("E9 Log {i:04}{tag}"), port)),
        );
        endpoints.push(Addr::new(ws_node, port));
    }
    world.add_process(
        h1,
        Box::new(WsMapper::new(rt, UsdlLibrary::bundled(), endpoints)),
    );

    // Native drivers (fan-out sources) and sinks on the runtime host.
    let out_shape = |port: &str, mime: &str| {
        Shape::builder()
            .digital(port, Direction::Output, mime.parse().expect("static mime"))
            .build()
            .expect("valid shape")
    };
    let in_shape = |mime: &str| {
        Shape::builder()
            .digital("in", Direction::Input, mime.parse().expect("static mime"))
            .build()
            .expect("valid shape")
    };
    world.add_process(
        h1,
        Box::new(NativeService::new(
            &format!("Toggle Driver{tag}"),
            out_shape("out", "text/plain"),
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(4),
                0,
                |_| UMessage::text("1"),
            )),
        )),
    );
    world.add_process(
        h1,
        Box::new(NativeService::new(
            &format!("Call Driver{tag}"),
            out_shape("out", "application/octet-stream"),
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(2),
                0,
                |i| {
                    UMessage::new(
                        "application/octet-stream".parse().expect("static mime"),
                        vec![i as u8; 128],
                    )
                },
            )),
        )),
    );
    world.add_process(
        h1,
        Box::new(NativeService::new(
            &format!("Log Driver{tag}"),
            out_shape("out", "text/plain"),
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(4),
                0,
                |i| UMessage::text(format!("entry {i}")),
            )),
        )),
    );
    for (name, mime) in [
        ("Click Sink", "text/plain"),
        ("Temp Sink", "text/plain"),
        ("Echo Sink", "application/octet-stream"),
        ("Media Sink", "application/octet-stream"),
        ("Log Sink", "text/plain"),
    ] {
        world.add_process(
            h1,
            Box::new(NativeService::new(
                &format!("{name}{tag}"),
                in_shape(mime),
                rt,
                Box::new(behaviors::Recorder::new()),
            )),
        );
    }

    let mut rules = vec![
        FanRule {
            src_tag: "Toggle Driver",
            src_port: "out",
            dst_tag: "E9 Light",
            dst_port: "switch-on",
        },
        FanRule {
            src_tag: "HIDP Mouse",
            src_port: "clicks",
            dst_tag: "Click Sink",
            dst_port: "in",
        },
        FanRule {
            src_tag: "Mote ",
            src_port: "temperature",
            dst_tag: "Temp Sink",
            dst_port: "in",
        },
        FanRule {
            src_tag: "Call Driver",
            src_port: "out",
            dst_tag: "EchoSvc",
            dst_port: "request",
        },
        FanRule {
            src_tag: "EchoSvc",
            src_port: "response",
            dst_tag: "Echo Sink",
            dst_port: "in",
        },
        FanRule {
            src_tag: "MB channel e9chan",
            src_port: "media-out",
            dst_tag: "Media Sink",
            dst_port: "in",
        },
        FanRule {
            src_tag: "Log Driver",
            src_port: "out",
            dst_tag: "E9 Log",
            dst_port: "log-in",
        },
        FanRule {
            src_tag: "E9 Log",
            src_port: "entries",
            dst_tag: "Log Sink",
            dst_port: "in",
        },
    ];

    // The cross-shard temperature ring. Only built when the world is a
    // shard and there is more than one wing: this wing's motes also fan
    // into an uplink whose hand-off frames arrive — one conservative
    // lookahead later — at the next wing's ingress and drain into *its*
    // Temp Sink. With one shard the ring still crosses the conductor's
    // inter-shard plane (self-addressed), so shard counts 1..k run the
    // same schedule and the sweep compares like with like.
    if let Some(shard) = world.shard_config().filter(|_| wings > 1) {
        let dst_wing = (wing + 1) % wings;
        let dst_shard = (dst_wing % shard.shards as usize) as u16;
        world.add_process(
            h1,
            Box::new(NativeService::new(
                &format!("Shard Uplink{tag}"),
                in_shape("text/plain"),
                rt,
                Box::new(ShardUplink::new(dst_shard, dst_wing as u16)),
            )),
        );
        world.add_process(
            h1,
            Box::new(
                NativeService::new(
                    &format!("Shard Ingress{tag}"),
                    out_shape("out", "text/plain"),
                    rt,
                    Box::new(ShardIngress::new("out")),
                )
                .with_shard_inlet(wing as u16, E9C_INLET_PORT),
            ),
        );
        rules.push(FanRule {
            src_tag: "Mote ",
            src_port: "temperature",
            dst_tag: "Shard Uplink",
            dst_port: "in",
        });
        rules.push(FanRule {
            src_tag: "Shard Ingress",
            src_port: "out",
            dst_tag: "Temp Sink",
            dst_port: "in",
        });
    }
    world.add_process(h1, Box::new(FanWirer::new(rt, rules)));
}

/// Virtual time allowed for discovery, mapping, and wiring before the
/// E9 measurement window opens. Sized for the slowest mapper at
/// n = 1000 (UPnP: ~167 lights × ~270 ms serialized instantiation).
const E9_SETUP: u64 = 90;

/// Runs one E9 federation size: a batched pass for events/sec and
/// allocations/event, then an identically seeded single-step pass for
/// per-event dispatch latency.
fn e9_one(n: usize, measure: SimDuration) -> SchedScaleRow {
    let setup = SimTime::from_secs(E9_SETUP);

    // Pass A — batched event loop, wall-clock throughput.
    let mut world = e9_world(n);
    world.run_until(setup);
    let ev0 = world.events_processed();
    let allocs0 = world.trace().counter("payload.allocs");
    let t0 = std::time::Instant::now();
    world.run_until(setup + measure);
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let events = world.events_processed() - ev0;
    let allocs = world.trace().counter("payload.allocs") - allocs0;

    // Pass B — same world rebuilt from the same seed, stepping one
    // event at a time to time each dispatch individually.
    let mut world = e9_world(n);
    world.run_until(setup);
    let deadline = setup + measure;
    let mut lat: Vec<u64> = Vec::with_capacity(events as usize + 1024);
    loop {
        let t = std::time::Instant::now();
        if !world.step() {
            break;
        }
        lat.push(t.elapsed().as_nanos() as u64);
        if world.now() >= deadline {
            break;
        }
    }
    lat.sort_unstable();
    let p99 = if lat.is_empty() {
        0
    } else {
        lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
    };

    SchedScaleRow {
        devices: n,
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        p99_dispatch_ns: p99,
        allocs_per_event: if events == 0 {
            0.0
        } else {
            allocs as f64 / events as f64
        },
    }
}

/// Runs the E9 sweep: one federation per entry in `sizes`, measuring a
/// `measure`-long virtual window after a fixed warm-up.
pub fn e9_sched_scale(sizes: &[usize], measure: SimDuration) -> Vec<SchedScaleRow> {
    sizes.iter().map(|&n| e9_one(n, measure)).collect()
}

// =====================================================================
// E9c — sharded execution: per-core scaling of the wing federation
// =====================================================================

/// One row of the E9c shard-scaling sweep.
#[derive(Debug, Clone)]
pub struct ShardScaleRow {
    /// Shard (worker thread) count.
    pub shards: u16,
    /// Total native devices across all wings.
    pub devices: usize,
    /// Wings the federation is partitioned into.
    pub wings: usize,
    /// Events dispatched inside the measurement window, all shards.
    pub events: u64,
    /// Wall-clock seconds of the measured phase (slowest shard —
    /// barrier stalls included, this is real elapsed time).
    pub wall_secs: f64,
    /// Federation events per wall-clock second.
    pub events_per_sec: f64,
    /// p99 of the per-window mean dispatch cost, worst shard, in ns.
    pub p99_dispatch_ns: u64,
    /// Wall nanoseconds stalled at window barriers, summed over shards.
    pub barrier_stall_ns: u64,
    /// Synchronized windows executed (max over shards).
    pub windows: u64,
}

/// Devices per E9c wing. Wings are the unit of shard placement (wing
/// `w` runs on shard `w % shards`), so at N = 10 000 there are 16
/// wings — enough to balance any shard count in the sweep.
const E9C_WING: usize = 625;

/// Virtual warm-up before the E9c measurement window opens. Shorter
/// than `E9_SETUP` because each wing's UPnP mapper instantiates only
/// its own ~n/6 lights (the serialized step that sizes the warm-up).
const E9C_SETUP: u64 = 40;

/// E9c conservative lookahead — and, in the tightest legal coupling,
/// the modeled cross-shard link latency. 5 ms is far above every
/// intra-wing latency, so windows stay coarse enough that barrier cost
/// amortizes over thousands of events.
const E9C_LOOKAHEAD: SimDuration = SimDuration::from_millis(5);

/// Port each wing's shard-ingress service listens on for hand-off
/// frames.
const E9C_INLET_PORT: u16 = 47_500;

/// p99 of a sample set; 0 when empty.
fn p99_of(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)]
}

/// Runs one E9c point: the `n`-device wing federation under `shards`
/// worker threads, measuring a `measure`-long virtual window after the
/// warm-up.
fn e9c_one(n: usize, shards: u16, measure: SimDuration) -> ShardScaleRow {
    use simnet::{run_sharded, ShardPlan};

    let wings = (n / E9C_WING).max(1);
    let base = n / wings;
    let extra = n % wings;
    let setup = SimTime::from_secs(E9C_SETUP);
    let plan = ShardPlan::new(shards, E9C_LOOKAHEAD).with_warmup(setup);
    let report = run_sharded(
        &plan,
        0xE9C + n as u64,
        setup + measure,
        |world, info| {
            world.trace_mut().set_log_enabled(false);
            for w in (0..wings).filter(|w| w % info.shards as usize == info.shard as usize) {
                e9_wing(world, w, wings, base + usize::from(w < extra));
            }
            Ok(())
        },
        |_, _| (),
    )
    .expect("E9c plan is valid and wings build cleanly");

    ShardScaleRow {
        shards,
        devices: n,
        wings,
        events: report.shards.iter().map(|s| s.events_measured).sum(),
        wall_secs: report
            .shards
            .iter()
            .map(|s| s.measure_wall_ns)
            .max()
            .unwrap_or(0) as f64
            / 1e9,
        events_per_sec: report.events_per_sec(),
        p99_dispatch_ns: report
            .shards
            .iter()
            .map(|s| p99_of(&s.dispatch_ns_samples))
            .max()
            .unwrap_or(0),
        barrier_stall_ns: report.barrier_stall_ns(),
        windows: report.shards.iter().map(|s| s.windows).max().unwrap_or(0),
    }
}

/// Runs the E9c sweep: the same `n`-device federation once per shard
/// count, producing the per-core scaling curve.
pub fn e9c_shard_scale(n: usize, shard_counts: &[u16], measure: SimDuration) -> Vec<ShardScaleRow> {
    shard_counts
        .iter()
        .map(|&s| e9c_one(n, s, measure))
        .collect()
}

// =====================================================================
// E9b — batched vs unbatched dispatch: the adaptive batch plane A/B
// =====================================================================

/// Port the A/B burst senders transmit from.
const AB_SRC_PORT: u16 = 46_000;
/// Port the A/B collector receives on.
const AB_SINK_PORT: u16 = 46_001;
/// Datagrams per sender per burst instant.
const AB_BURST: usize = 8;
/// Phase cohorts the senders are staggered across. Senders in one
/// cohort share a timer phase, so their bursts *arrive* coincident and
/// the batch plane gets full same-tick runs; spreading cohorts keeps
/// each run a few dozen frames rather than tens of thousands (giant
/// same-time runs thrash the near-heap and payload caches equally in
/// both modes, drowning the per-frame dispatch savings the A/B is
/// there to measure).
const AB_PHASES: usize = 250;
/// Interval between burst instants.
const AB_INTERVAL: SimDuration = SimDuration::from_millis(5);
/// Virtual warm-up before the A/B measurement window opens (lets the
/// adaptive window reach its cap).
const AB_SETUP: u64 = 1;

/// Per-datagram handler CPU cost the A/B collector models. Real
/// pervasive handlers always cost CPU per message; this is what makes
/// the A/B architectural rather than constant-factor. A burst of k
/// coincident datagrams into a busy handler makes unbatched dispatch
/// re-defer every still-queued delivery event at each busy horizon —
/// O(k^2) scheduler churn per burst — while the batch plane re-defers
/// the unconsumed tail as one event, O(k). Sized so the collector sits
/// near 50% utilization at N = 1000 (8N datagrams per 5 ms interval),
/// keeping the fixture in steady state rather than overload.
const AB_SINK_COST: SimDuration = SimDuration::from_nanos(300);

/// One row of the batched-vs-unbatched dispatch A/B (per federation
/// size): the same bursty fan-in world run under
/// [`BatchPolicy::unbatched`] and under the adaptive default. Both
/// sides deliver byte-identical work (the equivalence the E8/E10 gates
/// and the simnet property suite pin down); what differs is the wall
/// clock spent dispatching it, so the comparable rate is delivered
/// datagrams per wall second. (Raw scheduler-event counts differ by
/// design under busy deferral — see the herd note on [`AB_SINK_COST`].)
#[derive(Debug, Clone)]
pub struct BatchAbRow {
    /// Burst senders fanning into the collector.
    pub devices: usize,
    /// Datagrams delivered inside the measurement window (identical in
    /// both modes — asserted).
    pub delivered: u64,
    /// Delivered datagrams per wall second, batch plane disabled
    /// (`max_batch = 1`).
    pub unbatched_events_per_sec: f64,
    /// Delivered datagrams per wall second, adaptive default policy.
    pub batched_events_per_sec: f64,
    /// `batched_events_per_sec / unbatched_events_per_sec`.
    pub speedup: f64,
    /// p99 per-event dispatch wall cost, batch plane disabled.
    pub unbatched_p99_dispatch_ns: u64,
    /// p99 per-event dispatch wall cost, adaptive default policy.
    pub batched_p99_dispatch_ns: u64,
}

/// Timer-driven source that emits `AB_BURST` same-size datagrams at
/// every burst instant. All senders share the timer phase, so on the
/// full-duplex switch every burst's frames *arrive* coincident — the
/// same-tick runs the batch plane groups.
struct AbBurstSender {
    target: Addr,
    phase: SimDuration,
}

impl Process for AbBurstSender {
    fn name(&self) -> &str {
        "e9b-burst-sender"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(AB_SRC_PORT).expect("sender port free");
        let first = AB_INTERVAL + self.phase;
        ctx.set_timer(first, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        for _ in 0..AB_BURST {
            // Zero-length payloads: `Vec::new()` never allocates, so
            // the (mode-independent) send side stays as cheap as
            // possible and the A/B ratio reflects dispatch overhead.
            let _ = ctx.send_to(AB_SRC_PORT, self.target, Vec::new());
        }
        ctx.set_timer(AB_INTERVAL, 0);
    }
}

/// Sink absorbing the fan-in, modelling [`AB_SINK_COST`] of CPU per
/// datagram and counting deliveries through a shared handle.
struct AbCollector {
    delivered: Rc<RefCell<u64>>,
}

impl Process for AbCollector {
    fn name(&self) -> &str {
        "e9b-collector"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(AB_SINK_PORT).expect("collector port free");
    }
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, _d: simnet::Datagram) {
        *self.delivered.borrow_mut() += 1;
        ctx.busy(AB_SINK_COST);
    }
}

/// Builds the A/B world: `n` synchronized burst senders on a switched
/// segment fanning into one collector. Full duplex matters — a
/// half-duplex medium serializes the burst through its busy window and
/// no same-tick runs ever form (see
/// [`SegmentConfig::ethernet_100mbps_switch`]).
fn e9b_world(n: usize, policy: simnet::BatchPolicy) -> (World, Rc<RefCell<u64>>) {
    let delivered = Rc::new(RefCell::new(0u64));
    let mut world = World::new(0x9B + n as u64);
    world.trace_mut().set_log_enabled(false);
    world.set_batch_policy(policy);
    let net = world.add_segment(SegmentConfig::ethernet_100mbps_switch());
    let sink_node = world.add_node("collector");
    world.attach(sink_node, net).expect("attach");
    world.add_process(
        sink_node,
        Box::new(AbCollector {
            delivered: Rc::clone(&delivered),
        }),
    );
    let target = Addr::new(sink_node, AB_SINK_PORT);
    let phase_step = SimDuration::from_nanos(AB_INTERVAL.as_nanos() / AB_PHASES as u64);
    for i in 0..n {
        let node = world.add_node(format!("burst{i}"));
        world.attach(node, net).expect("attach");
        let phase = SimDuration::from_nanos(phase_step.as_nanos() * (i % AB_PHASES) as u64);
        world.add_process(node, Box::new(AbBurstSender { target, phase }));
    }
    (world, delivered)
}

/// Wall-clock passes per A/B cell; the best (fastest) pass is kept,
/// the same noise discipline as [`e10_sampler_overhead`] — a shared CI
/// host can only slow a pass down, so the minimum wall time is the
/// least contaminated estimate of the engine's own cost.
const AB_PASSES: usize = 3;

/// Measures one (size, policy) cell: best-of-[`AB_PASSES`] batched
/// `run_until` passes for delivered datagrams per wall second, then an
/// identically seeded single-step pass for p99 dispatch latency — the
/// same two-pass scheme as [`e9_one`].
fn e9b_one(n: usize, policy: simnet::BatchPolicy, measure: SimDuration) -> (u64, f64, u64) {
    let setup = SimTime::from_secs(AB_SETUP);

    let mut best_wall = f64::INFINITY;
    let mut delivered = 0u64;
    for _ in 0..AB_PASSES {
        let (mut world, count) = e9b_world(n, policy);
        world.run_until(setup);
        let d0 = *count.borrow();
        let t0 = std::time::Instant::now();
        world.run_until(setup + measure);
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        if wall < best_wall {
            best_wall = wall;
        }
        delivered = *count.borrow() - d0;
    }

    let (mut world, _count) = e9b_world(n, policy);
    world.run_until(setup);
    let deadline = setup + measure;
    let mut lat: Vec<u64> = Vec::with_capacity(delivered as usize + 1024);
    loop {
        let t = std::time::Instant::now();
        if !world.step() {
            break;
        }
        lat.push(t.elapsed().as_nanos() as u64);
        if world.now() >= deadline {
            break;
        }
    }
    lat.sort_unstable();
    let p99 = if lat.is_empty() {
        0
    } else {
        lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
    };

    (delivered, delivered as f64 / best_wall, p99)
}

/// Runs the batched-vs-unbatched A/B at each federation size: the same
/// seed and fixture under `BatchPolicy::unbatched()` and under the
/// adaptive default, reporting delivered-datagram throughput and p99
/// dispatch latency for both sides. Panics if the two modes deliver a
/// different number of datagrams — they never may (determinism).
pub fn e9b_batch_ab(sizes: &[usize], measure: SimDuration) -> Vec<BatchAbRow> {
    sizes
        .iter()
        .map(|&n| {
            let (un_count, un_evps, un_p99) = e9b_one(n, simnet::BatchPolicy::unbatched(), measure);
            let (ba_count, ba_evps, ba_p99) = e9b_one(n, simnet::BatchPolicy::default(), measure);
            assert_eq!(
                un_count, ba_count,
                "batched and unbatched runs must deliver identical work"
            );
            BatchAbRow {
                devices: n,
                delivered: ba_count,
                unbatched_events_per_sec: un_evps,
                batched_events_per_sec: ba_evps,
                speedup: if un_evps > 0.0 {
                    ba_evps / un_evps
                } else {
                    0.0
                },
                unbatched_p99_dispatch_ns: un_p99,
                batched_p99_dispatch_ns: ba_p99,
            }
        })
        .collect()
}

// =====================================================================
// E10 — telemetry plane: SLO burn-rate alerts + federation doctor
// =====================================================================

/// Port the fault-injection flood runs on.
const FLOOD_PORT: u16 = 47_000;

/// Timer-driven datagram source that holds a shared segment past
/// saturation. The first timer fires after `start_after` (the fault
/// instant); from then on one `size`-byte datagram goes out every
/// `period`, which is chosen below the frame's wire time so the
/// segment's busy horizon runs ahead of real time and queueing delay
/// grows for everyone sharing the medium.
struct Flooder {
    target: Addr,
    start_after: SimDuration,
    period: SimDuration,
    size: usize,
}

impl Process for Flooder {
    fn name(&self) -> &str {
        "e10-flooder"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(FLOOD_PORT).expect("flood port free");
        let after = self.start_after;
        ctx.set_timer(after, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let _ = ctx.send_to(FLOOD_PORT, self.target, vec![0u8; self.size]);
        let period = self.period;
        ctx.set_timer(period, 0);
    }
}

/// Absorbs the flood datagrams at the far end of the segment.
struct FloodSink;

impl Process for FloodSink {
    fn name(&self) -> &str {
        "e10-flood-sink"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(FLOOD_PORT).expect("flood sink port free");
    }
}

/// Results of the telemetry fault-injection run.
#[derive(Debug, Clone)]
pub struct TelemetryFaultResults {
    /// The doctor's final health report.
    pub report: HealthReport,
    /// Deterministic JSON encoding of the report (the CI byte-diff
    /// artifact).
    pub doctor_json: String,
    /// OpenMetrics exposition of the final metrics snapshot.
    pub open_metrics: String,
    /// Every alert state transition the SLO engine recorded.
    pub transitions: Vec<AlertTransition>,
    /// Virtual time both faults were injected.
    pub fault_at: SimTime,
    /// When the UPnP availability SLO first reached `firing`.
    pub liveness_firing_at: Option<SimTime>,
    /// When the hub latency SLO first reached `firing`.
    pub latency_firing_at: Option<SimTime>,
    /// Telemetry samples taken over the run.
    pub samples: u64,
}

/// Builds the unsharded E10 fault-injection world — the E8 federation
/// (Bluetooth mouse on h1 bridged to a UPnP light on h2 over the
/// 10 Mbps hub) with the 500 ms sampler and both burn-rate SLOs armed,
/// and the hub flooder primed to fire at t = 30 s. Returns the world,
/// the UPnP mapper's id (so the caller can inject the silence fault),
/// and the fault instant. Shared by E10 and E13, which layer different
/// observers over the identical fault pair.
fn e10_world() -> (World, ProcId, SimTime) {
    use platform_bluetooth::{HidpMouse, MouseConfig};
    use platform_upnp::{LightLogic, UpnpDevice};

    let mut world = World::new(0xE10);
    world.trace_mut().set_log_enabled(false);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub()); // seg0
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());

    // h1 (rt0): the Bluetooth half. Unlimited clicks every 400 ms, so
    // every 500 ms sampler interval sees bridged traffic while the
    // federation is healthy.
    let (h1, rt1) = runtime_node(&mut world, "h1", 0, &[hub, pico]);
    let mouse_node = world.add_node("mouse");
    world.attach(mouse_node, pico).unwrap();
    world.add_process(
        mouse_node,
        Box::new(HidpMouse::new(MouseConfig {
            name: "E10 Mouse".to_owned(),
            click_interval: Some(SimDuration::from_millis(400)),
            motion_interval: None,
            click_limit: 0,
        })),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled())),
    );

    // h2 (rt1): the UPnP half. The mapper's ProcId is kept so the
    // silence fault can remove it mid-run.
    let (h2, rt2) = runtime_node(&mut world, "h2", 1, &[hub]);
    let light_node = world.add_node("light");
    world.attach(light_node, hub).unwrap();
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("E10 Light", "uuid:e10-l")),
            5000,
        )),
    );
    let upnp_mapper = world.add_process(
        h2,
        Box::new(UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled())),
    );

    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt1,
            vec![WireRule::new(
                "E10 Mouse",
                "clicks",
                "E10 Light",
                "switch-on",
            )],
        )),
    );

    // The saturation fault: a flood pair on the hub, armed at build
    // time but firing its first datagram at the fault instant. A
    // 1000-byte datagram occupies the 10 Mbps half-duplex medium for
    // ~830 µs plus backoff; an 800 µs period keeps offered load just
    // past line rate, so the backlog (and with it every bridged
    // click's queueing delay) grows for the rest of the run.
    let fault_at = SimTime::from_secs(30);
    let flood_dst = world.add_node("flood-dst");
    world.attach(flood_dst, hub).unwrap();
    world.add_process(flood_dst, Box::new(FloodSink));
    let flood_src = world.add_node("flood-src");
    world.attach(flood_src, hub).unwrap();
    world.add_process(
        flood_src,
        Box::new(Flooder {
            target: Addr::new(flood_dst, FLOOD_PORT),
            start_after: SimDuration::from_secs(30),
            period: SimDuration::from_micros(800),
            size: 1000,
        }),
    );

    // Availability: the UPnP bridge must translate traffic in (almost)
    // every interval — budget 10% silent intervals, firing at 5x burn.
    // Latency: at most 1% of bridged deliveries over 20 ms end to end;
    // on the saturated hub every delivery violates, pinning the burn
    // rate at 100x budget. (Shared with E11, which re-runs this fault
    // pair across a shard boundary.)
    world.enable_telemetry(e10_objectives());
    (world, upnp_mapper, fault_at)
}

/// Runs the telemetry-plane experiment: the [`e10_world`] federation,
/// hit with two concurrent faults at t = 30 s:
///
/// - the UPnP mapper is removed (the bridge goes silent mid-run), and
/// - a flooder saturates the shared Ethernet hub, pushing every
///   bridged click past the latency SLO's 20 ms threshold.
///
/// The run proves the alerts fire in the configured burn-rate windows
/// and the doctor localizes both faults: the silenced bridge shows up
/// as `silent` with a firing availability SLO, and the saturated
/// segment is the top offender by burn rate.
pub fn e10_telemetry_faults() -> TelemetryFaultResults {
    let (mut world, upnp_mapper, fault_at) = e10_world();

    // Healthy half, fault injection, degraded half.
    world.run_until(fault_at);
    world
        .remove_process(upnp_mapper)
        .expect("upnp mapper alive at fault time");
    world.run_until(SimTime::from_secs(60));

    let report = world.doctor().expect("telemetry enabled");
    let doctor_json = report.to_json();
    let open_metrics = simnet::open_metrics(&world.trace().metrics().snapshot());
    let engine = world.slo_engine().expect("telemetry enabled");
    let transitions = engine.transitions().to_vec();
    let first_firing = |name: &str| {
        transitions
            .iter()
            .find(|t| t.objective == name && t.to == AlertState::Firing)
            .map(|t| t.at)
    };

    TelemetryFaultResults {
        liveness_firing_at: first_firing("upnp-availability"),
        latency_firing_at: first_firing("hub-latency"),
        samples: world.telemetry().expect("telemetry enabled").samples(),
        report,
        doctor_json,
        open_metrics,
        transitions,
        fault_at,
    }
}

/// Measures the sampler's overhead on the E9 federation: the same
/// seeded world is run over the same virtual window with telemetry off
/// and on (250 ms sampler, no objectives), `passes` times each, and the
/// ratio of the best wall-clock times is returned. Used by
/// `perf_sched --check` to hold the telemetry plane under its 2%
/// overhead budget at n = 1000.
pub fn e10_sampler_overhead(n: usize, measure: SimDuration, passes: usize) -> f64 {
    let setup = SimTime::from_secs(E9_SETUP);
    let run = |telemetry: bool| {
        let mut world = e9_world(n);
        if telemetry {
            world.enable_telemetry(TelemetryConfig {
                sampler: SamplerConfig {
                    interval: SimDuration::from_millis(250),
                    window: 64,
                },
                objectives: vec![],
                liveness_timeout: SimDuration::from_secs(5),
            });
        }
        world.run_until(setup);
        let t0 = std::time::Instant::now();
        world.run_until(setup + measure);
        t0.elapsed().as_secs_f64().max(1e-9)
    };
    // Run plain and sampled back-to-back and keep the *minimum paired*
    // ratio. Comparing global minima looked fairer but flaked on
    // shared hosts: the two minima come from different load windows,
    // so the ratio picked up whatever drift happened between them. A
    // load spike contaminates one pair; a real sampler regression
    // inflates every pair, so the paired minimum still catches it.
    let mut best = f64::INFINITY;
    for _ in 0..passes.max(2) {
        let plain = run(false);
        let sampled = run(true);
        best = best.min(sampled / plain);
    }
    best
}

// =====================================================================
// E11 — sharded incident: cross-shard journeys + incident bundles
// =====================================================================

/// Cross-shard inlet id carrying E11's bridged clicks.
const E11_INLET: u16 = 0;
/// Port the E11 ingress service binds for inlet delivery.
const E11_INLET_PORT: u16 = 46_100;

/// Removes a victim process at a fixed virtual time. In a sharded run
/// nobody can pause the conductor between windows to edit a world from
/// outside (the way [`e10_telemetry_faults`] does with
/// `World::remove_process`), so the silence fault has to live *inside*
/// the world as an event.
struct FaultInjector {
    victim: ProcId,
    at: SimDuration,
}

impl Process for FaultInjector {
    fn name(&self) -> &str {
        "e11-fault-injector"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let at = self.at;
        ctx.set_timer(at, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.remove_process(self.victim)
            .expect("victim alive at fault time");
    }
}

/// Everything one E11 shard sends home across the thread boundary.
struct E11ShardObs {
    shard: u16,
    spans: Vec<SpanRecord>,
    snapshot: MetricsSnapshot,
    incidents: Vec<IncidentBundle>,
    report: Option<HealthReport>,
}

/// Results of the sharded incident experiment.
#[derive(Debug, Clone)]
pub struct ShardedIncidentResults {
    /// Per-shard traces merged into one federation-wide span set
    /// (sources prefixed `s{shard}/`, ingress hops re-parented onto
    /// their remote egress).
    pub merged_spans: Vec<SpanRecord>,
    /// `shard.xfer.egress` spans recorded on the mouse shard.
    pub xfer_egress: u64,
    /// `shard.xfer.ingress` spans recorded on the light shard.
    pub xfer_ingress: u64,
    /// Ingress hops whose remote parent did not resolve after merging.
    pub orphan_xfer_hops: u64,
    /// Critical-path coverage of the merged cross-shard journey.
    pub journey_coverage: f64,
    /// Incident bundles the light shard's trigger plane snapshotted.
    pub bundles: Vec<IncidentBundle>,
    /// Deterministic JSON of the first bundle (CI's byte-diff artifact).
    pub bundle_json: String,
    /// The light shard's final doctor report JSON.
    pub doctor_json: String,
    /// Subject of the doctor's top offender.
    pub top_offender: Option<String>,
}

/// Builds the Bluetooth half on shard 0: the mouse, its mapper, and an
/// uplink standing in for the remote light — clicks wired into it leave
/// the shard as traced hand-off frames.
fn e11_mouse_shard(world: &mut World) {
    use platform_bluetooth::{HidpMouse, MouseConfig};
    use umiddle_bridges::ShardUplink;

    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let (h1, rt) = runtime_node(world, "h1", 0, &[pico]);
    let mouse_node = world.add_node("mouse");
    world.attach(mouse_node, pico).unwrap();
    world.add_process(
        mouse_node,
        Box::new(HidpMouse::new(MouseConfig {
            name: "E11 Mouse".to_owned(),
            click_interval: Some(SimDuration::from_millis(400)),
            motion_interval: None,
            click_limit: 0,
        })),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "E11 Uplink",
            Shape::builder()
                .digital("in", Direction::Input, "text/plain".parse().unwrap())
                .build()
                .unwrap(),
            rt,
            Box::new(ShardUplink::new(1, E11_INLET)),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt,
            vec![WireRule::new("E11 Mouse", "clicks", "E11 Uplink", "in")],
        )),
    );
}

/// Builds the UPnP half on shard 1: the light, its mapper, the ingress
/// re-emitting arriving clicks, the E10 fault pair (flood + mapper
/// silence, both at t = 30 s), and the telemetry plane whose trigger
/// rules snapshot the incident bundles.
fn e11_light_shard(world: &mut World, fault_at: SimDuration) {
    use platform_upnp::{LightLogic, UpnpDevice};
    use umiddle_bridges::ShardIngress;

    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub()); // seg0
    let (h2, rt) = runtime_node(world, "h2", 1, &[hub]);
    let light_node = world.add_node("light");
    world.attach(light_node, hub).unwrap();
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("E11 Light", "uuid:e11-l")),
            5000,
        )),
    );
    let upnp_mapper = world.add_process(
        h2,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    // The ingress lives on its own host and runtime so the re-emitted
    // clicks cross the hub on their way to the light — the same
    // transport leg the flood saturates (mirrors E10's rt0 → rt1 hop).
    let (h3, rt3) = runtime_node(world, "h3", 2, &[hub]);
    world.add_process(
        h3,
        Box::new(
            NativeService::new(
                "E11 Ingress",
                Shape::builder()
                    .digital("out", Direction::Output, "text/plain".parse().unwrap())
                    .build()
                    .unwrap(),
                rt3,
                Box::new(ShardIngress::new("out")),
            )
            .with_shard_inlet(E11_INLET, E11_INLET_PORT),
        ),
    );
    world.add_process(
        h3,
        Box::new(Wirer::new(
            rt3,
            vec![WireRule::new(
                "E11 Ingress",
                "out",
                "E11 Light",
                "switch-on",
            )],
        )),
    );

    // The same fault pair as E10: a flood saturating the hub plus the
    // mapper going silent, both at the fault instant.
    let flood_dst = world.add_node("flood-dst");
    world.attach(flood_dst, hub).unwrap();
    world.add_process(flood_dst, Box::new(FloodSink));
    let flood_src = world.add_node("flood-src");
    world.attach(flood_src, hub).unwrap();
    world.add_process(
        flood_src,
        Box::new(Flooder {
            target: Addr::new(flood_dst, FLOOD_PORT),
            start_after: fault_at,
            period: SimDuration::from_micros(800),
            size: 1000,
        }),
    );
    world.add_process(
        h2,
        Box::new(FaultInjector {
            victim: upnp_mapper,
            at: fault_at,
        }),
    );

    world.enable_telemetry(e10_objectives());
}

/// The E10/E11 telemetry configuration: 500 ms sampler, availability
/// SLO on the UPnP bridge, latency SLO on the shared hub.
fn e10_objectives() -> TelemetryConfig {
    TelemetryConfig {
        sampler: SamplerConfig {
            interval: SimDuration::from_millis(500),
            window: 64,
        },
        objectives: vec![
            Objective {
                name: "upnp-availability".to_owned(),
                subject: "bridge:upnp".to_owned(),
                kind: SloKind::Liveness {
                    counter: "bridge.upnp.traffic".to_owned(),
                    budget_ppm: 100_000,
                },
                warning: BurnRateRule {
                    long_intervals: 6,
                    short_intervals: 2,
                    factor_milli: 2_500,
                },
                firing: BurnRateRule {
                    long_intervals: 6,
                    short_intervals: 2,
                    factor_milli: 5_000,
                },
            },
            Objective {
                name: "hub-latency".to_owned(),
                subject: "seg0:ethernet-10mbps-hub".to_owned(),
                kind: SloKind::LatencyAbove {
                    histogram: "umiddle.path_latency".to_owned(),
                    threshold_ns: 20_000_000,
                    budget_ppm: 10_000,
                },
                warning: BurnRateRule {
                    long_intervals: 8,
                    short_intervals: 2,
                    factor_milli: 1_000,
                },
                firing: BurnRateRule {
                    long_intervals: 8,
                    short_intervals: 2,
                    factor_milli: 5_000,
                },
            },
        ],
        liveness_timeout: SimDuration::from_secs(5),
    }
}

/// Runs the sharded incident experiment: the E10 fault pair re-run with
/// the federation split across a shard boundary — the Bluetooth mouse
/// on shard 0, the UPnP light (and both faults) on shard 1, clicks
/// crossing the conductor's inter-shard link as traced hand-off frames.
/// Both shards run an always-on flight recorder; shard 1's trigger
/// plane snapshots a deterministic incident bundle when the SLOs fire.
///
/// The experiment proves two things the unsharded E10 cannot:
///
/// 1. **Journey coverage across the boundary** — after
///    [`merge_shard_spans`], every `shard.xfer.ingress` hop resolves
///    its remote `shard.xfer.egress` parent (no orphans), and the
///    merged critical path attributes the link crossing.
/// 2. **Incident localization from inside one shard** — the bundle's
///    doctor report ranks the saturated hub as top offender even
///    though the traffic *source* (the mouse) lives on another shard.
pub fn e11_sharded_incident() -> ShardedIncidentResults {
    use simnet::shard::{run_sharded, ShardPlan};

    let fault_at = SimDuration::from_secs(30);
    let plan = ShardPlan::new(2, SimDuration::from_millis(5)).without_wall_health();
    let report = run_sharded(
        &plan,
        0xE11,
        SimTime::from_secs(60),
        |world, info| {
            world.trace_mut().set_log_enabled(false);
            world.enable_flight_recorder(IncidentConfig::default());
            if info.shard == 0 {
                e11_mouse_shard(world);
            } else {
                e11_light_shard(world, fault_at);
            }
            Ok(())
        },
        |world, info| E11ShardObs {
            shard: info.shard,
            spans: world.trace().spans().to_vec(),
            snapshot: world.trace().metrics().snapshot(),
            incidents: world.incidents().to_vec(),
            report: world.doctor(),
        },
    )
    .expect("sharded incident run");

    let obs: Vec<E11ShardObs> = report.shards.into_iter().map(|s| s.result).collect();
    let per_shard: Vec<(u16, &[SpanRecord])> =
        obs.iter().map(|o| (o.shard, o.spans.as_slice())).collect();
    let merged = merge_shard_spans(&per_shard);

    let egress: Vec<&SpanRecord> = merged
        .iter()
        .filter(|s| s.stage == "shard.xfer.egress")
        .collect();
    let ingress: Vec<&SpanRecord> = merged
        .iter()
        .filter(|s| s.stage == "shard.xfer.ingress")
        .collect();
    let orphans = ingress.iter().filter(|s| s.parent.is_none()).count() as u64;

    // Coverage of the cross-shard journey: the corr minted on the mouse
    // shard reaches from connection setup through the merged link hop.
    let journey_coverage = ingress
        .first()
        .and_then(|s| CriticalPath::analyze(&merged, s.corr))
        .map_or(0.0, |cp| cp.coverage());

    let light = obs
        .iter()
        .find(|o| o.shard == 1)
        .expect("light shard collected");
    let doctor = light.report.as_ref().expect("telemetry on light shard");
    let bundle_json = light
        .incidents
        .first()
        .map(|b| b.to_json())
        .unwrap_or_default();

    // Cross-check the span census against the bridge counters.
    let counter = |o: &E11ShardObs, k: &str| o.snapshot.counters.get(k).copied().unwrap_or(0);
    let mouse = obs
        .iter()
        .find(|o| o.shard == 0)
        .expect("mouse shard collected");
    assert_eq!(egress.len() as u64, counter(mouse, "shard.xfer_egress"));
    assert_eq!(ingress.len() as u64, counter(light, "shard.xfer_ingress"));

    ShardedIncidentResults {
        xfer_egress: egress.len() as u64,
        xfer_ingress: ingress.len() as u64,
        orphan_xfer_hops: orphans,
        journey_coverage,
        bundle_json,
        doctor_json: doctor.to_json(),
        top_offender: doctor.top_offenders.first().map(|o| o.subject.clone()),
        bundles: light.incidents.clone(),
        merged_spans: merged,
    }
}

// =====================================================================
// E11b — trace-loss A/B and flight-recorder overhead
// =====================================================================

/// One side of the trace-loss A/B: what a tight span journal kept and
/// lost under one overflow policy.
#[derive(Debug, Clone)]
pub struct TraceLossSide {
    /// Overflow policy label.
    pub mode: &'static str,
    /// Spans still in the journal at the end of the run.
    pub retained: u64,
    /// Spans the journal lost (dropped or overwritten).
    pub lost: u64,
    /// Whether the final second of the run is still observable — the
    /// window an incident trigger would need to snapshot.
    pub tail_survives: bool,
}

/// Runs the two-hop mouse→light federation with a deliberately tight
/// span journal (capacity 256 against ~thousands of spans) under both
/// overflow policies: legacy drop-on-full keeps the *head* of the run
/// and goes blind for the rest; the flight recorder keeps the *tail* —
/// the window that matters when a trigger fires. Returns
/// `(drop side, recorder side)`.
pub fn e11_trace_loss_ab() -> (TraceLossSide, TraceLossSide) {
    use platform_bluetooth::{HidpMouse, MouseConfig};
    use platform_upnp::{LightLogic, UpnpDevice};

    let horizon = SimTime::from_secs(20);
    let run = |recorder: bool| {
        let mut world = World::new(0xE11B);
        world.trace_mut().set_log_enabled(false);
        if recorder {
            world.trace_mut().enable_flight_recorder(256);
        } else {
            world.trace_mut().set_capacity(256);
        }
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let (h1, rt1) = runtime_node(&mut world, "h1", 0, &[hub, pico]);
        let mouse_node = world.add_node("mouse");
        world.attach(mouse_node, pico).unwrap();
        world.add_process(
            mouse_node,
            Box::new(HidpMouse::new(MouseConfig {
                name: "AB Mouse".to_owned(),
                click_interval: Some(SimDuration::from_millis(100)),
                motion_interval: None,
                click_limit: 0,
            })),
        );
        world.add_process(
            h1,
            Box::new(BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled())),
        );
        let (h2, rt2) = runtime_node(&mut world, "h2", 1, &[hub]);
        let light_node = world.add_node("light");
        world.attach(light_node, hub).unwrap();
        world.add_process(
            light_node,
            Box::new(UpnpDevice::new(
                Box::new(LightLogic::new("AB Light", "uuid:ab-l")),
                5000,
            )),
        );
        world.add_process(
            h2,
            Box::new(UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled())),
        );
        world.add_process(
            h1,
            Box::new(Wirer::new(
                rt1,
                vec![WireRule::new("AB Mouse", "clicks", "AB Light", "switch-on")],
            )),
        );
        world.run_until(horizon);

        let trace = world.trace();
        let tail_from = SimTime::from_nanos(horizon.as_nanos() - 1_000_000_000);
        let tail_survives = trace.spans().iter().any(|s| s.start >= tail_from);
        TraceLossSide {
            mode: if recorder {
                "flight-recorder"
            } else {
                "drop-on-full"
            },
            retained: trace.spans().len() as u64,
            lost: if recorder {
                trace.ring_overwrites()
            } else {
                trace.spans_dropped()
            },
            tail_survives,
        }
    };
    (run(false), run(true))
}

/// Measures the flight recorder's overhead on the E9b busy-sink A/B:
/// the same seeded world over the same virtual window with the recorder
/// off and on, `passes` times, minimum *paired* ratio (same noise
/// discipline as [`e10_sampler_overhead`]). `perf_sched --check` holds
/// this under its 3% budget at n = 1000.
pub fn e11_recorder_overhead(n: usize, measure: SimDuration, passes: usize) -> f64 {
    let setup = SimTime::from_secs(AB_SETUP);
    let run = |recorder: bool| {
        let (mut world, _count) = e9b_world(n, simnet::BatchPolicy::default());
        if recorder {
            world.enable_flight_recorder(IncidentConfig::default());
        }
        world.run_until(setup);
        let t0 = std::time::Instant::now();
        world.run_until(setup + measure);
        t0.elapsed().as_secs_f64().max(1e-9)
    };
    let mut best = f64::INFINITY;
    for _ in 0..passes.max(2) {
        let plain = run(false);
        let recorded = run(true);
        best = best.min(recorded / plain);
    }
    best
}

// =====================================================================
// E13 — latency attribution: time decomposition + differential doctor
// =====================================================================

/// The latency-SLO threshold the E13 exemplar is resolved against
/// (matches the `hub-latency` objective in [`e10_objectives`]).
const E13_LATENCY_THRESHOLD_NS: u64 = 20_000_000;

/// Results of the attribution-plane experiment.
#[derive(Debug, Clone)]
pub struct AttributionResults {
    /// Attribution snapshot taken at the fault instant, before the
    /// faults land — the healthy baseline.
    pub before: AttributionReport,
    /// Attribution snapshot at the end of the degraded half.
    pub after: AttributionReport,
    /// Deterministic JSON of `before` — the shape checked in as the
    /// perf doctor's baseline artifact.
    pub before_json: String,
    /// Deterministic JSON of `after` — the CI byte-diff artifact.
    pub attrib_json: String,
    /// The differential doctor's ranked verdict, `before` → `after`:
    /// what regressed, where, by how much.
    pub diff: simnet::export::AttributionDiff,
    /// Deterministic JSON of `diff`.
    pub diff_json: String,
    /// Human-readable diff rendering (what a failed CI floor prints).
    pub diff_text: String,
    /// Exemplar corr the path-latency histogram captured for the first
    /// observation past the 20 ms SLO threshold.
    pub exemplar_corr: u64,
    /// Spans of the exemplar's journey found inside the first captured
    /// incident bundle.
    pub exemplar_journey: Vec<SpanRecord>,
    /// Incident bundles the trigger plane captured.
    pub bundles: Vec<IncidentBundle>,
    /// The doctor's final report, offenders annotated with dominant
    /// time components and exemplar corrs.
    pub report: HealthReport,
}

/// Runs the attribution experiment: the [`e10_world`] fault pair with
/// the continuous profiler and the flight recorder both on. The
/// attribution fold rides the 500 ms telemetry sampler; one snapshot is
/// cut at the fault instant and one at the end, and the differential
/// doctor diffs them.
///
/// The run proves the plane localizes the regression end to end:
///
/// 1. **Time decomposition** — the post-fault snapshot pins the
///    saturated hub's damage as *queue-wait* time on the runtime
///    component, dwarfing every self-time delta.
/// 2. **Exemplar linkage** — the `umiddle.path_latency` histogram's
///    first-over-20 ms exemplar corr resolves to a journey inside the
///    incident bundle the trigger plane captured when the SLO fired,
///    including the `queue.wait` span that explains the latency.
pub fn e13_attribution() -> AttributionResults {
    let (mut world, upnp_mapper, fault_at) = e10_world();
    world.enable_flight_recorder(IncidentConfig::default());
    world.enable_attribution();

    // Healthy half → baseline snapshot → fault injection → degraded
    // half → regression snapshot.
    world.run_until(fault_at);
    let before = world.attribution_report().expect("attribution enabled");
    world
        .remove_process(upnp_mapper)
        .expect("upnp mapper alive at fault time");
    world.run_until(SimTime::from_secs(60));
    let after = world.attribution_report().expect("attribution enabled");

    let diff = diff_attribution(&before, &after);

    let exemplar_corr = world
        .trace()
        .metrics()
        .histogram("umiddle.path_latency")
        .and_then(|h| h.exemplar_above_ns(E13_LATENCY_THRESHOLD_NS))
        .unwrap_or(0);
    let bundles = world.incidents().to_vec();
    let exemplar_journey: Vec<SpanRecord> = bundles
        .first()
        .map(|b| {
            b.spans
                .iter()
                .filter(|s| s.corr == exemplar_corr)
                .cloned()
                .collect()
        })
        .unwrap_or_default();

    let report = world.doctor().expect("telemetry enabled");

    AttributionResults {
        before_json: before.to_json(),
        attrib_json: after.to_json(),
        diff_json: diff.to_json(),
        diff_text: diff.to_text(8),
        before,
        after,
        diff,
        exemplar_corr,
        exemplar_journey,
        bundles,
        report,
    }
}

/// Measures the attribution plane's overhead on the E9b busy-sink A/B:
/// the same seeded world over the same virtual window with a 250 ms
/// telemetry sampler on both sides and the attribution fold only on the
/// measure side, `passes` times, minimum *paired* ratio (same noise
/// discipline as [`e10_sampler_overhead`]). `perf_sched --check` holds
/// this under its 3% budget at n = 1000.
pub fn e13_attrib_overhead(n: usize, measure: SimDuration, passes: usize) -> f64 {
    let setup = SimTime::from_secs(AB_SETUP);
    let run = |attrib: bool| {
        let (mut world, _count) = e9b_world(n, simnet::BatchPolicy::default());
        world.enable_telemetry(TelemetryConfig {
            sampler: SamplerConfig {
                interval: SimDuration::from_millis(250),
                window: 64,
            },
            objectives: vec![],
            liveness_timeout: SimDuration::from_secs(5),
        });
        if attrib {
            world.enable_attribution();
        }
        world.run_until(setup);
        let t0 = std::time::Instant::now();
        world.run_until(setup + measure);
        t0.elapsed().as_secs_f64().max(1e-9)
    };
    let mut best = f64::INFINITY;
    for _ in 0..passes.max(2) {
        let plain = run(false);
        let attributed = run(true);
        best = best.min(attributed / plain);
    }
    best
}

// =====================================================================
// E12 — delta-gossip directory federation (bytes, convergence, lookup)
// =====================================================================

/// One side of the E12 full-refresh vs delta-gossip A/B.
#[derive(Debug, Clone)]
pub struct DeltaGossipRow {
    /// `"full-refresh"` or `"delta"`.
    pub mode: &'static str,
    /// Runtimes in the federation.
    pub runtimes: usize,
    /// Registered translators per runtime.
    pub per_runtime: usize,
    /// Directory-plane bytes during bootstrap (everyone joining at once).
    pub bootstrap_bytes: u64,
    /// Directory-plane bytes over the steady-state window — the number
    /// the ≥10x A/B gate compares.
    pub steady_bytes: u64,
    /// Length of the steady-state window in virtual seconds.
    pub steady_secs: u64,
    /// Worst-case time (ms) for a churn *join* to reach every runtime.
    pub join_convergence_ms: u64,
    /// Worst-case time (ms) for a churn *leave* to reach every runtime.
    pub leave_convergence_ms: u64,
    /// Federation-wide `directory.deltas_applied`.
    pub deltas_applied: u64,
    /// Federation-wide `directory.antientropy_repairs`.
    pub antientropy_repairs: u64,
    /// Directory entries every runtime settled on at the end.
    pub final_entries: u64,
}

/// Runs one mode of the E12 federation fixture: `runtimes` runtimes each
/// registering `per_runtime` services at boot, a 60 s steady-state
/// window, then one join/leave churn cycle. Directory-plane bytes come
/// from the `directory.bytes_gossiped` counter; convergence comes from
/// each runtime's `last_directory_change_ns` stat.
fn e12_one_mode(full_refresh: bool, runtimes: usize, per_runtime: usize) -> DeltaGossipRow {
    use umiddle_core::{RuntimeClient, RuntimeConfig, RuntimeEvent, RuntimeId, TranslatorId};

    const BOOT_SECS: u64 = 20;
    const STEADY_SECS: u64 = 60;
    const JOIN_AT: u64 = BOOT_SECS + STEADY_SECS + 1; // churn join fires here
    const LEAVE_AT: u64 = JOIN_AT + 14; // churn leave fires here
    const END_SECS: u64 = LEAVE_AT + 15;

    /// Registers one extra service mid-run (join churn), then
    /// unregisters it again (leave churn).
    struct Churner {
        runtime: simnet::ProcId,
        client: Option<RuntimeClient>,
        registered: Option<TranslatorId>,
    }
    impl Process for Churner {
        fn name(&self) -> &str {
            "e12-churner"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.client = Some(RuntimeClient::new(self.runtime));
            // on_start runs at t=0, so relative delays are absolute times.
            ctx.set_timer(SimDuration::from_secs(JOIN_AT), 0);
            ctx.set_timer(SimDuration::from_secs(LEAVE_AT), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            let client = self.client.as_mut().expect("started");
            if token == 0 {
                let shape = Shape::builder()
                    .digital("out", Direction::Output, "app/churn".parse().unwrap())
                    .build()
                    .unwrap();
                let me = ctx.me();
                let profile = umiddle_core::TranslatorProfile::builder(
                    TranslatorId::new(RuntimeId(0), 0),
                    "churn-joiner",
                )
                .shape(shape)
                .build();
                client.register(ctx, profile, me);
            } else if let Some(id) = self.registered.take() {
                client.unregister(ctx, id);
            }
        }
        fn on_local(
            &mut self,
            _ctx: &mut Ctx<'_>,
            _from: simnet::ProcId,
            msg: simnet::LocalMessage,
        ) {
            if let Ok(event) = msg.downcast::<RuntimeEvent>() {
                if let RuntimeEvent::Registered { translator, .. } = *event {
                    self.registered = Some(translator);
                }
            }
        }
    }

    let (mut world, hub) = hub_world(1200 + runtimes as u64 + u64::from(full_refresh));
    let mut stats = Vec::new();
    for i in 0..runtimes {
        let mut cfg = RuntimeConfig::new(RuntimeId(i as u32));
        cfg.full_refresh = full_refresh;
        let (node, rt, st) =
            crate::fixtures::runtime_node_cfg(&mut world, &format!("h{i}"), cfg, &[hub]);
        stats.push(st);
        for j in 0..per_runtime {
            // Spread MIME types so the federation index has real fan-out.
            let mime = format!("app/t{}", (i * per_runtime + j) % 7);
            let shape = Shape::builder()
                .digital("out", Direction::Output, mime.parse().unwrap())
                .build()
                .unwrap();
            world.add_process(
                node,
                Box::new(NativeService::new(
                    &format!("svc-{i}-{j}"),
                    shape,
                    rt,
                    Box::new(behaviors::Recorder::new()),
                )),
            );
        }
        if i == 0 {
            world.add_process(
                node,
                Box::new(Churner {
                    runtime: rt,
                    client: None,
                    registered: None,
                }),
            );
        }
    }

    let max_change = |stats: &[Rc<RefCell<umiddle_core::RuntimeStats>>]| -> u64 {
        stats
            .iter()
            .map(|s| s.borrow().last_directory_change_ns)
            .max()
            .unwrap_or(0)
    };

    world.run_until(SimTime::from_secs(BOOT_SECS));
    let bootstrap_bytes = world.trace().counter("directory.bytes_gossiped");
    world.run_until(SimTime::from_secs(BOOT_SECS + STEADY_SECS));
    let steady_bytes = world.trace().counter("directory.bytes_gossiped") - bootstrap_bytes;

    // Read join convergence strictly before the leave timer fires, so
    // the leave's own directory change cannot pollute the measurement.
    world.run_until(SimTime::from_secs(LEAVE_AT - 1));
    let join_convergence_ms =
        max_change(&stats).saturating_sub(JOIN_AT * 1_000_000_000) / 1_000_000;
    world.run_until(SimTime::from_secs(END_SECS));
    let leave_convergence_ms =
        max_change(&stats).saturating_sub(LEAVE_AT * 1_000_000_000) / 1_000_000;

    let expected = (runtimes * per_runtime) as u64;
    for (i, st) in stats.iter().enumerate() {
        let entries = st.borrow().directory_entries;
        assert_eq!(
            entries,
            expected,
            "E12 ({}) runtime {i} did not converge: {entries} entries, expected {expected}",
            if full_refresh {
                "full-refresh"
            } else {
                "delta"
            },
        );
    }

    DeltaGossipRow {
        mode: if full_refresh {
            "full-refresh"
        } else {
            "delta"
        },
        runtimes,
        per_runtime,
        bootstrap_bytes,
        steady_bytes,
        steady_secs: STEADY_SECS,
        join_convergence_ms,
        leave_convergence_ms,
        deltas_applied: world.trace().counter("directory.deltas_applied"),
        antientropy_repairs: world.trace().counter("directory.antientropy_repairs"),
        final_entries: expected,
    }
}

/// The E12 A/B: the same federation fixture under legacy full-refresh
/// advertisement and under delta-gossip. Row 0 is full-refresh, row 1 is
/// delta.
pub fn e12_delta_gossip(runtimes: usize, per_runtime: usize) -> Vec<DeltaGossipRow> {
    vec![
        e12_one_mode(true, runtimes, per_runtime),
        e12_one_mode(false, runtimes, per_runtime),
    ]
}

/// The E12 federation-lookup microbenchmark row.
#[derive(Debug, Clone)]
pub struct DirLookupRow {
    /// Profiles in the table.
    pub profiles: usize,
    /// Digital ports per profile.
    pub ports_per_profile: usize,
    /// Total advertised ports (`profiles * ports_per_profile`).
    pub total_ports: usize,
    /// Distinct MIME types the ports spread over.
    pub distinct_mimes: usize,
    /// Wall time to build the table (ms).
    pub build_ms: f64,
    /// Lookups measured.
    pub lookups: usize,
    /// Mean lookup wall time (ns).
    pub avg_ns: u64,
    /// p99 lookup wall time (ns) — the number the CI budget gates.
    pub p99_ns: u64,
    /// Full-scan fallbacks the query mix triggered (must be 0: every
    /// port query answers from the index at any table size).
    pub scan_fallbacks: u64,
}

/// Builds a directory table with `profiles * ports_per_profile`
/// advertised ports (the ~1M-port scale point of ISSUE 9) and measures
/// indexed `lookup` latency over a concrete port-query mix, plus
/// wildcard queries to pin the scan-free fallback paths.
pub fn e12_lookup_scale(profiles: usize, ports_per_profile: usize) -> DirLookupRow {
    use umiddle_core::{DirectoryTable, MimeType, PortKind, Query, RuntimeId, TranslatorId};

    const DISTINCT_MIMES: usize = 512;

    let build_t0 = std::time::Instant::now();
    let mut table = DirectoryTable::new();
    for p in 0..profiles {
        let mut shape = Shape::builder();
        for k in 0..ports_per_profile {
            let mime: MimeType = format!("app/t{}", (p * ports_per_profile + k) % DISTINCT_MIMES)
                .parse()
                .unwrap();
            let dir = if k % 2 == 0 {
                Direction::Output
            } else {
                Direction::Input
            };
            shape = shape.digital(&format!("p{k}"), dir, mime);
        }
        let profile = umiddle_core::TranslatorProfile::builder(
            TranslatorId::new(RuntimeId((p / 10_000) as u32), (p % 10_000) as u32),
            format!("svc-{p}"),
        )
        .shape(shape.build().unwrap())
        .build();
        let home = Addr::new(simnet::NodeId::from_index(p / 10_000), 47_001);
        table.upsert(profile, home, SimTime::MAX, false);
    }
    let build_ms = build_t0.elapsed().as_secs_f64() * 1e3;

    // The measured mix: concrete (direction, MIME) port queries — the
    // federation hot path. Wildcards are exercised after, unmeasured,
    // to pin scan-free behavior without letting their O(results) cost
    // (they select everything) dominate the p99.
    let queries: Vec<Query> = (0..DISTINCT_MIMES)
        .map(|m| {
            Query::has_port(
                Direction::Output,
                PortKind::Digital(format!("app/t{m}").parse().unwrap()),
            )
        })
        .collect();
    for q in queries.iter().take(32) {
        std::hint::black_box(table.lookup(q)); // warm-up
    }
    let lookups = 2_000usize;
    let mut samples_ns: Vec<u64> = Vec::with_capacity(lookups);
    let mut total_hits = 0usize;
    for i in 0..lookups {
        let q = &queries[i % queries.len()];
        let t0 = std::time::Instant::now();
        let hits = std::hint::black_box(table.lookup(q));
        samples_ns.push(t0.elapsed().as_nanos() as u64);
        total_hits += hits.len();
    }
    assert!(total_hits > 0, "lookup fixture selected nothing");
    samples_ns.sort_unstable();
    let avg_ns = samples_ns.iter().sum::<u64>() / lookups as u64;
    let p99_ns = samples_ns[(lookups * 99) / 100 - 1];

    // Wildcard paths: pattern MIME and the double wildcard both answer
    // from indexes (the all-digital side list), never the full scan.
    let pattern = Query::has_port(
        Direction::Output,
        PortKind::Digital("app/*".parse().unwrap()),
    );
    let any = Query::has_port(Direction::Output, PortKind::Digital(MimeType::any()));
    assert!(!table.lookup(&pattern).is_empty());
    assert!(!table.lookup(&any).is_empty());

    DirLookupRow {
        profiles,
        ports_per_profile,
        total_ports: profiles * ports_per_profile,
        distinct_mimes: DISTINCT_MIMES,
        build_ms,
        lookups,
        avg_ns,
        p99_ns,
        scan_fallbacks: table.scan_fallbacks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The E9 federation fixture must actually exercise every bridge:
    /// each platform's translation histogram has to see traffic, and
    /// the scheduler has to dispatch events through the whole window.
    /// Guards the fixture against silent rot (an unmapped population
    /// would still "run" and report plausible aggregate numbers).
    #[test]
    fn e9_world_bridges_all_six_platforms() {
        let mut world = e9_world(12);
        world.run_until(SimTime::from_secs(120));
        let snapshot = world.trace().metrics().snapshot();
        for platform in [
            "bluetooth",
            "mediabroker",
            "motes",
            "rmi",
            "upnp",
            "webservices",
        ] {
            let name = format!("bridge.{platform}.translation");
            let count = snapshot.histograms.get(&name).map_or(0, |h| h.count());
            assert!(count > 0, "no translated traffic on {platform}");
        }
        assert!(world.events_processed() > 0);
    }

    /// The telemetry fault-injection run must detect and localize both
    /// injected faults: the silenced UPnP bridge fires its availability
    /// SLO within the burn-rate window and shows up silent in the
    /// doctor, and the saturated hub is the doctor's top offender.
    #[test]
    fn e10_alerts_fire_and_doctor_localizes_faults() {
        let r = e10_telemetry_faults();

        // Both SLOs fire, and only after the fault instant. The
        // availability SLO needs 3 silent 500 ms intervals in its
        // short+long windows, so it must fire within ~4 s of the
        // mapper's removal; the latency SLO needs the backlog to grow
        // past 20 ms, then 2 violating intervals.
        let fired = r.liveness_firing_at.expect("availability SLO fired");
        assert!(fired > r.fault_at, "fired before the fault: {fired}");
        assert!(
            fired <= SimTime::from_nanos(r.fault_at.as_nanos() + 4_000_000_000),
            "availability SLO too slow: fault at {}, fired at {fired}",
            r.fault_at
        );
        let lat_fired = r.latency_firing_at.expect("latency SLO fired");
        assert!(lat_fired > r.fault_at, "latency fired early: {lat_fired}");

        // No transition may predate the fault: the healthy half of the
        // run must be alert-free (no startup flapping).
        assert!(
            r.transitions.iter().all(|t| t.at > r.fault_at),
            "spurious pre-fault transition: {:?}",
            r.transitions.first()
        );

        // The doctor localizes the silence: the UPnP bridge is marked
        // silent while the Bluetooth bridge (still translating mouse
        // clicks into rt0) stays live.
        let bridge = |p: &str| {
            r.report
                .bridges
                .iter()
                .find(|b| b.platform == p)
                .unwrap_or_else(|| panic!("{p} bridge in report"))
        };
        assert!(bridge("upnp").silent, "upnp not flagged silent");
        assert!(!bridge("bluetooth").silent, "bluetooth wrongly silent");

        // ... and the saturation: the hub is the top offender (its
        // SLO burns at 100x budget, above the availability SLO's 10x),
        // and its utilization trend is pinned near 1000 milli.
        let top = r.report.top_offenders.first().expect("offenders listed");
        assert_eq!(top.subject, "seg0:ethernet-10mbps-hub");
        let seg = r
            .report
            .segments
            .iter()
            .find(|s| s.label == "seg0:ethernet-10mbps-hub")
            .expect("hub segment in report");
        assert!(
            seg.utilization_milli >= 900,
            "hub not saturated: {} milli",
            seg.utilization_milli
        );

        // The exports are non-trivial and mention both faults.
        assert!(r.doctor_json.contains("\"firing\""));
        assert!(r.open_metrics.ends_with("# EOF\n"));
        assert!(r.samples >= 110, "sampler starved: {} samples", r.samples);
    }

    /// Every bridge must leave a *balanced* span record under batched
    /// dispatch: one closed hop span per translated message, never one
    /// span per batch. Since every hop bumps the platform's traffic
    /// counter exactly once, `ingress + egress == traffic` closes the
    /// audit — a bridge that batches its outputs but records fewer
    /// egress spans than messages fails the equality. Platforms the
    /// fixture drives both ways (fan-in *and* fan-out) must show hops
    /// in both directions.
    #[test]
    fn e9_world_bridge_hops_are_balanced_under_batching() {
        let mut world = e9_world(12);
        world.run_until(SimTime::from_secs(120));
        let snapshot = world.trace().metrics().snapshot();
        let assert = simnet::TraceAssert::new(world.trace());
        for (platform, two_way) in [
            ("bluetooth", false),
            ("mediabroker", false),
            ("motes", false),
            ("rmi", true),
            ("upnp", false),
            ("webservices", true),
        ] {
            let (ingress, egress) = assert.balanced(platform);
            let traffic = snapshot
                .counters
                .get(&format!("bridge.{platform}.traffic"))
                .copied()
                .unwrap_or(0);
            assert_eq!(
                ingress + egress,
                traffic,
                "{platform}: hop spans do not match translated traffic"
            );
            if two_way {
                assert!(ingress > 0, "no {platform} ingress hop spans");
                assert!(egress > 0, "no {platform} egress hop spans");
            }
        }
    }

    /// The sharded incident run stitches a complete cross-shard journey
    /// and localizes the fault from inside one shard: no orphan
    /// `shard.xfer` hops after merging, the saturated hub as top
    /// offender, and at least one deterministic incident bundle.
    #[test]
    fn e11_cross_shard_journeys_and_incident_bundle() {
        let r = e11_sharded_incident();

        // The click stream crossed the boundary and every ingress hop
        // resolved its remote egress parent — 100% journey coverage at
        // the `shard.xfer` hops.
        assert!(r.xfer_ingress > 0, "no clicks crossed the shard boundary");
        assert!(
            r.xfer_egress >= r.xfer_ingress,
            "more arrivals than departures: {} egress, {} ingress",
            r.xfer_egress,
            r.xfer_ingress
        );
        assert_eq!(r.orphan_xfer_hops, 0, "orphan spans at shard.xfer hops");
        assert!(
            r.journey_coverage >= 0.95,
            "merged journey under-attributed: {:.3}",
            r.journey_coverage
        );

        // Sources carry their shard prefix after the merge.
        assert!(r.merged_spans.iter().any(|s| s.source.starts_with("s0/")));
        assert!(r.merged_spans.iter().any(|s| s.source.starts_with("s1/")));

        // The trigger plane snapshotted the incident, and the bundle
        // localizes the saturated hub across the shard boundary. (The
        // first bundle may be the offender-rank change that precedes
        // the firing transition — both stem from the same fault pair.)
        let first = r.bundles.first().expect("an incident bundle");
        assert_eq!(first.shard, Some(1), "bundle names the capturing shard");
        assert!(
            r.bundles
                .iter()
                .any(|b| b.kind == simnet::TriggerKind::SloFiring),
            "no slo-firing bundle: {:?}",
            r.bundles.iter().map(|b| b.kind).collect::<Vec<_>>()
        );
        assert!(!r.bundle_json.is_empty());
        assert!(r.bundle_json.contains("\"trigger\""));
        assert_eq!(
            r.top_offender.as_deref(),
            Some("seg0:ethernet-10mbps-hub"),
            "doctor did not localize the saturated hub"
        );
        assert!(r.doctor_json.contains("\"firing\""));
    }

    /// The attribution plane must localize the E10 fault pair end to
    /// end: the differential doctor's top regression is queue-wait on
    /// the runtime component (the saturated hub's backlog), the
    /// latency exemplar resolves to a journey inside the captured
    /// incident bundle — including the `queue.wait` span that explains
    /// the latency — and the doctor's offenders carry attribution
    /// annotations.
    #[test]
    fn e13_attribution_localizes_queue_wait_regression() {
        let r = e13_attribution();

        // Both halves folded real spans, losslessly.
        assert!(r.before.spans_folded > 0, "baseline folded nothing");
        assert!(
            r.after.spans_folded > r.before.spans_folded,
            "degraded half folded nothing new"
        );
        assert!(
            r.before.components.contains_key("bridge:upnp"),
            "healthy half missing bridge components: {:?}",
            r.before.components.keys().collect::<Vec<_>>()
        );

        // The differential doctor pins the regression: queue-wait on
        // the runtime component dwarfs every other delta.
        let top = r.diff.top_regression().expect("a ranked regression");
        assert_eq!(
            (top.component.as_str(), top.kind),
            ("process:umiddle-runtime", "queue"),
            "regression not localized to runtime queue-wait:\n{}",
            r.diff_text
        );
        assert!(r.diff_text.contains("process:umiddle-runtime/queue"));

        // The exemplar corr captured at the first over-threshold
        // observation resolves to a journey inside the incident bundle
        // the trigger plane cut when the SLO fired.
        assert_ne!(r.exemplar_corr, 0, "no exemplar past the 20 ms threshold");
        assert!(!r.bundles.is_empty(), "no incident bundle captured");
        assert!(
            !r.exemplar_journey.is_empty(),
            "exemplar corr {:#x} not found in the incident bundle",
            r.exemplar_corr
        );
        assert!(
            r.exemplar_journey.iter().any(|s| s.stage == "queue.wait"),
            "exemplar journey has no queue.wait span: {:?}",
            r.exemplar_journey
                .iter()
                .map(|s| s.stage.as_str())
                .collect::<Vec<_>>()
        );

        // The doctor annotates its offenders with the dominant time
        // component; the latency SLO's offender carries the exemplar.
        let slo = r
            .report
            .top_offenders
            .iter()
            .find(|o| o.name == "hub-latency")
            .expect("hub-latency offender listed");
        assert_eq!(slo.dominant, "process:umiddle-runtime/queue");
        assert_eq!(slo.exemplar_corr, r.exemplar_corr);

        // Snapshots and diff export deterministically and round-trip.
        let parsed =
            AttributionReport::from_json(&r.before_json).expect("baseline JSON round-trips");
        assert_eq!(parsed.to_json(), r.before_json);
        assert!(r.attrib_json.contains("\"components\""));
        assert!(r.diff_json.contains("\"rows\""));
    }

    /// The trace-loss A/B behind `BENCH_observability.json`: at equal
    /// (tight) capacity, drop-on-full loses the tail of the run — the
    /// window an incident would need — while the flight recorder keeps
    /// it, at the price of overwriting the head.
    #[test]
    fn e11_trace_loss_ab_distinguishes_policies() {
        let (drop_side, ring_side) = e11_trace_loss_ab();
        assert_eq!(drop_side.mode, "drop-on-full");
        assert_eq!(ring_side.mode, "flight-recorder");
        // Both sides overflowed the tight journal…
        assert!(drop_side.lost > 0, "fixture too small to overflow");
        assert!(ring_side.lost > 0, "fixture too small to overflow");
        // …but only the recorder still holds the end of the run.
        assert!(!drop_side.tail_survives, "drop mode kept the tail?");
        assert!(ring_side.tail_survives, "recorder lost the tail");
        assert!(ring_side.retained > 0);
    }

    #[test]
    fn e12_delta_gossip_beats_full_refresh_and_converges() {
        // A small federation end to end: both modes converge (the
        // fixture asserts per-runtime entry counts internally, churn
        // included) and delta-gossip's steady-state directory plane is
        // already cheaper at 6 runtimes — digests vs full re-adverts.
        let rows = e12_delta_gossip(6, 2);
        assert_eq!(rows[0].mode, "full-refresh");
        assert_eq!(rows[1].mode, "delta");
        assert!(rows[0].steady_bytes > 0 && rows[1].steady_bytes > 0);
        assert!(
            rows[1].steady_bytes < rows[0].steady_bytes,
            "delta steady-state bytes {} not below full refresh {}",
            rows[1].steady_bytes,
            rows[0].steady_bytes
        );
        // Only the delta plane applies deltas; full refresh never does.
        assert_eq!(rows[0].deltas_applied, 0);
        assert!(rows[1].deltas_applied > 0);
    }

    #[test]
    fn e12_lookup_scale_stays_on_the_index() {
        let lk = e12_lookup_scale(100, 4);
        assert_eq!(lk.total_ports, 400);
        assert_eq!(lk.scan_fallbacks, 0, "a port query fell back to a scan");
        assert!(lk.p99_ns > 0 && lk.avg_ns <= lk.p99_ns);
    }
}
