//! # bench — the uMiddle evaluation harness
//!
//! Regenerates every table and figure of the paper's §5 plus the
//! ablations DESIGN.md calls for:
//!
//! * [`experiments::e1_service_level`] — Figure 10 (translator
//!   generation rates).
//! * [`experiments::e2_device_level`] — §5.2 (SetPower / mouse-signal
//!   latency).
//! * [`experiments::e3_transport_level`] — Figure 11 (TCP / MB / RMI /
//!   RMI-MB throughput).
//! * [`experiments::e4_ablation_translation`] — direct vs mediated
//!   translation (§2.2.1 / Table 1).
//! * [`experiments::e5_ablation_qos`] — QoS control (§5.3 / §7 future
//!   work).
//! * [`experiments::e6_directory_scale`] — directory federation
//!   scalability (§3.6).
//! * [`experiments::e8_observability`] — metrics registry + path spans
//!   (JSON snapshot via `--json`).
//! * [`experiments::e9_sched_scale`] — scheduler scaling, 100 → 1000
//!   devices across all six bridges (`perf_sched`).
//! * [`experiments::e10_telemetry_faults`] — telemetry plane: SLO
//!   burn-rate alerts + the federation health doctor under fault
//!   injection (exports via `doctor_export`).
//!
//! Run everything with `cargo bench -p bench` (the `figures` bench
//! target) or `cargo run -p bench --bin experiments --release`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fixtures;
pub mod report;
pub mod timing;
