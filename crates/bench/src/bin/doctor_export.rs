//! Exports the E10 telemetry fault-injection run as deterministic
//! artifacts: the federation doctor's health report JSON and the final
//! metrics snapshot in OpenMetrics exposition format.
//!
//! Usage:
//!
//! ```text
//! doctor_export [--doctor FILE] [--openmetrics FILE]
//! ```
//!
//! With no flags, writes `artifacts/E10_doctor.json` and
//! `artifacts/E10_metrics.om` relative to the current directory. Both
//! outputs are byte-identical across runs (the `ci.sh` determinism gate
//! diffs two of them), and the doctor's alert and offender summary is
//! always printed to stdout.

use bench::experiments::e10_telemetry_faults;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut doctor_out = None;
    let mut om_out = None;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--doctor" => {
                doctor_out = raw.get(i + 1).cloned();
                i += 2;
            }
            "--openmetrics" => {
                om_out = raw.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: doctor_export [--doctor FILE] [--openmetrics FILE]");
                std::process::exit(2);
            }
        }
    }
    if doctor_out.is_none() && om_out.is_none() {
        doctor_out = Some("artifacts/E10_doctor.json".to_owned());
        om_out = Some("artifacts/E10_metrics.om".to_owned());
    }

    let r = e10_telemetry_faults();
    println!(
        "E10 doctor: {} samples, {} alert transitions",
        r.samples,
        r.transitions.len()
    );
    for a in &r.report.alerts {
        println!("  {:20} {:28} {}", a.name, a.subject, a.state.as_str());
    }
    for o in &r.report.top_offenders {
        println!(
            "  offender: {:>6} milli  {:14} {}",
            o.severity_milli, o.kind, o.subject
        );
    }
    if let Some(path) = &doctor_out {
        bench::report::write_artifact(path, &r.doctor_json, "doctor report");
    }
    if let Some(path) = &om_out {
        bench::report::write_artifact(path, &r.open_metrics, "OpenMetrics text format");
    }
}
