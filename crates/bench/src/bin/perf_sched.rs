//! Scheduler benchmarks: the timer-wheel kernel A/B against the
//! reference min-heap, the E9 six-bridge federation scaling sweep
//! (events/sec, p99 dispatch latency, allocations/event), the E9b
//! batched-vs-unbatched dispatch A/B over the adaptive batch plane,
//! and the E9c sharded-execution scaling curve (events/sec, p99
//! dispatch, barrier stall per shard count).
//!
//! Run with `--check` for the CI scaling-regression gate — an
//! events/sec floor at N = 1000, a near-linearity bound on the
//! per-event wall cost from N = 100 to N = 1000, a p99 dispatch-latency
//! budget, a batched-dispatch speedup floor, ceilings on the telemetry
//! sampler's, the flight recorder's and the attribution plane's
//! overhead at N = 1000, the differential perf doctor (the E13
//! attribution run diffed against its checked-in baseline), and a
//! shard-scaling floor at 4 shards / N = 10 000 — or with `--json FILE` to write the sweep as
//! deterministic-schema JSON (values are wall-clock and
//! machine-dependent; the schema is what golden files assert on). The
//! committed `BENCH_perf_sched.json` pairs one such run with the
//! pre-batch-plane baseline numbers.
//!
//! Tunable gate knobs (also settable from ci.sh):
//!
//! * `--floor-evps N` — events/sec floor at N = 1000 (default 50000).
//! * `--p99-budget-us N` — p99 dispatch budget in µs (default 200).
//! * `--recorder-overhead X` — ceiling on the always-on flight
//!   recorder's wall-clock ratio at N = 1000 (default 1.03;
//!   `PERF_RECORDER_OVERHEAD` env).
//! * `--attrib-overhead X` — ceiling on the attribution plane's
//!   wall-clock ratio at N = 1000 (default 1.03;
//!   `PERF_ATTRIB_OVERHEAD` env).
//! * `--attrib-baseline FILE` — checked-in attribution baseline the
//!   differential perf doctor diffs the current E13 run against
//!   (default `artifacts/E13_attrib_baseline.json`; skipped when the
//!   file is absent). A positive delta fails the check *naming the
//!   regressed component*; regenerate the baseline with the
//!   `attrib_export` bin when the change is intentional.
//! * `--shard-speedup X` — E9c 4-shard events/sec floor, as a ratio
//!   over the 1-shard run (default 1.5; `PERF_SHARD_SPEEDUP` env).
//!   Automatically *not enforced* when the host exposes fewer than 4
//!   cores — a 4-way shard run cannot beat single-threaded execution
//!   without 4 cores to run on (the sweep still runs as a smoke test
//!   and its numbers are printed).
//! * `--e9c-devices N` — E9c federation size in full (non-check) runs
//!   (default 10000; 100000 reproduces the large point, at ~10x the
//!   wall time).

use bench::experiments::{
    e10_sampler_overhead, e11_recorder_overhead, e13_attrib_overhead, e13_attribution,
    e9_sched_scale, e9b_batch_ab, e9c_shard_scale,
};
use bench::report::{render_e9, render_e9b, render_e9c};
use bench::timing::sched_kernel;
use simnet::SimDuration;

/// Default `--floor-evps`: events/sec floor at N = 1000. The engine
/// measures well above 10x this on a developer laptop and ~5x in CI
/// containers; the old linear-scan dispatch path sat below it.
const DEFAULT_FLOOR_EVENTS_PER_SEC: f64 = 50_000.0;

/// Default `--p99-budget-us`: ceiling on the p99 wall cost of one
/// dispatched event at N = 1000. Measured p99 is ~1 µs; 200 µs keeps
/// the gate insensitive to CI scheduling jitter while still catching
/// an O(N) term sneaking back into the dispatch path.
const DEFAULT_P99_BUDGET_US: u64 = 200;

/// `--check` bound on per-event wall-cost growth across a 10x device
/// increase. Per-event cost is flat for an O(1) dispatch path and grew
/// ~linearly (>5x) for the old full-scan path; 3x allows for cache
/// effects and noise without letting a linear term back in.
const CHECK_LINEARITY: f64 = 3.0;

/// `--check` floor on the E9b batched-over-unbatched events/sec ratio
/// at N = 1000. The adaptive batch plane measures well above this on
/// the bursty fan-in fixture; 1.3x is the regression line.
const CHECK_BATCH_SPEEDUP: f64 = 1.3;

/// `--check` ceiling on the telemetry sampler's wall-clock overhead at
/// N = 1000 (ratio of best-of-passes measured windows, sampled vs
/// plain). The 250 ms sampler walks the whole metrics registry a few
/// dozen times per window — per-event cost is amortized to near zero,
/// so the ceiling is headroom for measurement noise, not for the
/// sampler. It was 2% before the batch plane; batched dispatch shrank
/// the base run's wall time, so the sampler's unchanged absolute cost
/// reads as a larger ratio and quiet-host runs now land anywhere in
/// 0.97–1.03. 5% still fails an order-of-magnitude sampler regression
/// without flaking on a shared box.
const CHECK_SAMPLER_OVERHEAD: f64 = 1.05;

/// `--check` ceiling on the always-on flight recorder's wall-clock
/// overhead at N = 1000 (min paired ratio over alternating passes,
/// recorder vs plain trace, on the E9b busy-sink fixture). The ring
/// journal evicts in half-capacity chunks, so the amortized per-span
/// cost is a few pointer moves; 3% is the issue's budget for keeping
/// the recorder on in every run.
const CHECK_RECORDER_OVERHEAD: f64 = 1.03;

/// `--check` ceiling on the attribution plane's wall-clock overhead at
/// N = 1000 (min paired ratio over alternating passes, telemetry +
/// attribution fold vs telemetry alone, on the E9b busy-sink fixture).
/// The fold is incremental — a cursor walk over spans begun or closed
/// since the last sample — so its amortized cost is a few map updates
/// per span; 3% matches the flight recorder's budget for keeping the
/// profiler on continuously.
const CHECK_ATTRIB_OVERHEAD: f64 = 1.03;

/// Default `--attrib-baseline`: the checked-in healthy-half attribution
/// snapshot the differential perf doctor diffs against.
const DEFAULT_ATTRIB_BASELINE: &str = "artifacts/E13_attrib_baseline.json";

/// Default `--shard-speedup`: E9c events/sec at 4 shards must be at
/// least this multiple of the 1-shard run, at N = 10 000. Linear
/// scaling would be 4x; 1.5x is the regression line with generous room
/// for barrier overhead and noisy multi-tenant hosts. Only enforced on
/// hosts with at least 4 cores.
const DEFAULT_SHARD_SPEEDUP: f64 = 1.5;

/// Federation size of the `--check` E9c shard gate.
const CHECK_SHARD_DEVICES: usize = 10_000;

/// Parses `--flag value` from the argument list, falling back to a
/// default; panics with a usable message on a malformed value.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return default;
    };
    let raw = args
        .get(i + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"));
    raw.parse()
        .unwrap_or_else(|_| panic!("{flag}: cannot parse {raw:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let json_out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let floor_evps: f64 = flag_value(&args, "--floor-evps", DEFAULT_FLOOR_EVENTS_PER_SEC);
    let p99_budget_us: u64 = flag_value(&args, "--p99-budget-us", DEFAULT_P99_BUDGET_US);
    let p99_budget_ns = p99_budget_us * 1_000;
    // Floor priority: --shard-speedup flag, then PERF_SHARD_SPEEDUP
    // env, then the default.
    let env_shard_speedup = std::env::var("PERF_SHARD_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let shard_speedup: f64 = flag_value(
        &args,
        "--shard-speedup",
        env_shard_speedup.unwrap_or(DEFAULT_SHARD_SPEEDUP),
    );
    // Ceiling priority: --recorder-overhead flag, then
    // PERF_RECORDER_OVERHEAD env, then the default.
    let env_recorder = std::env::var("PERF_RECORDER_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let recorder_ceiling: f64 = flag_value(
        &args,
        "--recorder-overhead",
        env_recorder.unwrap_or(CHECK_RECORDER_OVERHEAD),
    );
    // Ceiling priority: --attrib-overhead flag, then
    // PERF_ATTRIB_OVERHEAD env, then the default.
    let env_attrib = std::env::var("PERF_ATTRIB_OVERHEAD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let attrib_ceiling: f64 = flag_value(
        &args,
        "--attrib-overhead",
        env_attrib.unwrap_or(CHECK_ATTRIB_OVERHEAD),
    );
    let attrib_baseline: String = flag_value(
        &args,
        "--attrib-baseline",
        DEFAULT_ATTRIB_BASELINE.to_owned(),
    );
    let host_cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    if check {
        // Differential perf doctor, first so a behavioral regression is
        // reported by *component* rather than surfacing later as an
        // anonymous wall-clock floor failure. The E13 attribution run
        // is a pure function of the seed, so against a baseline from
        // the same code the diff is empty; any code change that moves
        // virtual time shows up as a ranked per-component delta.
        let baseline = std::fs::read_to_string(&attrib_baseline)
            .ok()
            .and_then(|text| simnet::AttributionReport::from_json(&text));
        match baseline {
            Some(baseline) => {
                let current = e13_attribution();
                let diff = simnet::diff_attribution(&baseline, &current.before);
                if let Some(top) = diff.top_regression() {
                    eprint!("{}", diff.to_text(8));
                    panic!(
                        "attribution drifted from {attrib_baseline}: {}/{} grew by {} ns \
                         (exemplar corr {:#x}) — regenerate the baseline with the \
                         attrib_export bin if the change is intentional",
                        top.component, top.kind, top.delta_ns, top.exemplar_corr
                    );
                }
                println!(
                    "perf_sched --check: attribution matches {attrib_baseline} \
                     ({} components, {} cells moved, none regressed)",
                    current.before.components.len(),
                    diff.rows.len()
                );
            }
            None => println!(
                "perf_sched --check: no attribution baseline at {attrib_baseline}; \
                 differential doctor skipped"
            ),
        }

        // Kernel smoke: both structures must run; the wheel must not be
        // grossly slower than the heap it replaced on a mixed schedule.
        let k = sched_kernel(10_000, 100_000);
        assert!(k.wheel_ns_per_op > 0.0 && k.heap_ns_per_op > 0.0);
        assert!(
            k.wheel_ns_per_op <= k.heap_ns_per_op * 3.0,
            "timer wheel regressed vs reference heap: {:.0} ns vs {:.0} ns",
            k.wheel_ns_per_op,
            k.heap_ns_per_op
        );

        // E9 endpoints: floor at N = 1000, near-linearity 100 -> 1000,
        // p99 dispatch within budget.
        let rows = e9_sched_scale(&[100, 1000], SimDuration::from_secs(5));
        let (small, large) = (&rows[0], &rows[1]);
        assert!(
            large.events_per_sec >= floor_evps,
            "events/sec at N=1000 below floor: {:.0} < {:.0}",
            large.events_per_sec,
            floor_evps
        );
        let cost_small = small.wall_secs / small.events.max(1) as f64;
        let cost_large = large.wall_secs / large.events.max(1) as f64;
        assert!(
            cost_large <= cost_small * CHECK_LINEARITY,
            "per-event cost grew {:.2}x from N=100 to N=1000 (bound {CHECK_LINEARITY}x)",
            cost_large / cost_small
        );
        assert!(
            large.p99_dispatch_ns <= p99_budget_ns,
            "p99 dispatch at N=1000 over budget: {} ns > {} ns",
            large.p99_dispatch_ns,
            p99_budget_ns
        );

        // E9b: the batch plane must keep paying for itself on the
        // bursty fan-in fixture, and batching must not blow the p99
        // dispatch budget (one big batch is still one dispatch).
        let ab = e9b_batch_ab(&[100, 1000], SimDuration::from_millis(200));
        let big = ab.last().expect("two A/B rows");
        assert!(
            big.speedup >= CHECK_BATCH_SPEEDUP,
            "batched dispatch speedup at N=1000 below floor: {:.2}x < {CHECK_BATCH_SPEEDUP}x",
            big.speedup
        );
        assert!(
            big.batched_p99_dispatch_ns <= p99_budget_ns,
            "batched p99 dispatch at N=1000 over budget: {} ns > {} ns",
            big.batched_p99_dispatch_ns,
            p99_budget_ns
        );

        // Telemetry plane: the in-run sampler must stay within its
        // overhead budget on the same N = 1000 federation. Five
        // alternating best-of passes: with the batch plane the timed
        // window is short enough that one bad scheduling quantum can
        // swing a single pass by >10% on a shared host.
        let overhead = e10_sampler_overhead(1000, SimDuration::from_secs(5), 5);
        assert!(
            overhead <= CHECK_SAMPLER_OVERHEAD,
            "telemetry sampler overhead x{overhead:.3} at N=1000 exceeds x{CHECK_SAMPLER_OVERHEAD}"
        );

        // Flight recorder: always-on ring journaling must stay within
        // its overhead budget on the busy-sink fixture — the whole
        // point of the recorder is that nobody turns tracing off for
        // performance. Min paired ratio over alternating passes, same
        // rationale as the sampler gate.
        let recorder = e11_recorder_overhead(1000, SimDuration::from_secs(5), 5);
        assert!(
            recorder <= recorder_ceiling,
            "flight recorder overhead x{recorder:.3} at N=1000 exceeds x{recorder_ceiling} \
             (override with --recorder-overhead / PERF_RECORDER_OVERHEAD on a noisy host)"
        );

        // Attribution plane: the continuous time-decomposition fold
        // must stay within its overhead budget on the same fixture —
        // like the recorder, the profiler only earns always-on status
        // if nobody is tempted to turn it off. Min paired ratio over
        // alternating passes, same rationale as the sampler gate.
        let attrib = e13_attrib_overhead(1000, SimDuration::from_secs(5), 5);
        assert!(
            attrib <= attrib_ceiling,
            "attribution overhead x{attrib:.3} at N=1000 exceeds x{attrib_ceiling} \
             (override with --attrib-overhead / PERF_ATTRIB_OVERHEAD on a noisy host)"
        );

        // E9c: sharded execution must keep paying for itself — the
        // 4-shard run of the N = 10k wing federation must beat the
        // 1-shard run by the configured floor. On a host with fewer
        // than 4 cores the floor is physically unreachable (threads
        // time-slice one core and pay barrier cost on top), so the
        // sweep runs as a smoke test and the floor is reported, not
        // enforced.
        let e9c = e9c_shard_scale(CHECK_SHARD_DEVICES, &[1, 4], SimDuration::from_secs(2));
        let (one, four) = (&e9c[0], &e9c[1]);
        assert!(
            one.events > 0 && four.events > 0,
            "E9c dispatched no events inside the measurement window"
        );
        assert!(
            four.windows > 0,
            "E9c 4-shard run executed no synchronized windows"
        );
        let sharded_speedup = four.events_per_sec / one.events_per_sec.max(1.0);
        if host_cores < 4 {
            println!(
                "perf_sched --check: shard-scaling floor x{shard_speedup:.2} not enforced — \
                 host exposes {host_cores} core(s); measured x{sharded_speedup:.2} at 4 shards, \
                 N={CHECK_SHARD_DEVICES} (stall {:.1} ms over {} windows)",
                four.barrier_stall_ns as f64 / 1e6,
                four.windows
            );
        } else {
            assert!(
                sharded_speedup >= shard_speedup,
                "E9c shard scaling below floor: 4 shards gave x{sharded_speedup:.2} over 1 shard \
                 at N={CHECK_SHARD_DEVICES} (floor x{shard_speedup:.2}; override with \
                 --shard-speedup / PERF_SHARD_SPEEDUP on a noisy host)"
            );
        }

        println!(
            "perf_sched --check: ok (N=1000 {:.0} events/s, per-event cost x{:.2} over 10x devices, p99 {} ns <= {} ns, batch speedup x{:.2}, sampler overhead x{:.3}, recorder overhead x{:.3}, attribution overhead x{:.3}, shard speedup x{:.2} at 4 shards on {} core(s), wheel {:.0} ns/op vs heap {:.0} ns/op)",
            large.events_per_sec,
            cost_large / cost_small,
            large.p99_dispatch_ns,
            p99_budget_ns,
            big.speedup,
            overhead,
            recorder,
            attrib,
            sharded_speedup,
            host_cores,
            k.wheel_ns_per_op,
            k.heap_ns_per_op
        );
        return;
    }

    println!("scheduler kernel A/B (wall clock, pop+push cycles on a mixed schedule)");
    let mut kernel_lines = Vec::new();
    for pending in [1_000usize, 10_000, 100_000] {
        let k = sched_kernel(pending, 200_000);
        println!(
            "sched_kernel {pending:>7} pending: wheel {:>7.1} ns/op, heap {:>7.1} ns/op ({:.2}x)",
            k.wheel_ns_per_op,
            k.heap_ns_per_op,
            k.heap_ns_per_op / k.wheel_ns_per_op
        );
        kernel_lines.push(k);
    }

    let rows = e9_sched_scale(&[100, 250, 500, 1000], SimDuration::from_secs(15));
    println!("{}", render_e9(&rows));

    let ab = e9b_batch_ab(&[100, 1000], SimDuration::from_millis(500));
    println!("{}", render_e9b(&ab));

    let e9c_devices: usize = flag_value(&args, "--e9c-devices", CHECK_SHARD_DEVICES);
    let e9c = e9c_shard_scale(e9c_devices, &[1, 2, 4, 8], SimDuration::from_secs(5));
    println!("{}", render_e9c(&e9c));
    println!("(host exposes {host_cores} core(s); shard counts above that time-slice)");

    if let Some(file) = json_out {
        let mut out = String::from("{\n  \"name\": \"perf_sched\",\n  \"sched_kernel\": [\n");
        let n = kernel_lines.len();
        for (i, k) in kernel_lines.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"pending\": {}, \"ops\": {}, \"wheel_ns_per_op\": {:.1}, \"heap_ns_per_op\": {:.1}}}{}\n",
                k.pending,
                k.ops,
                k.wheel_ns_per_op,
                k.heap_ns_per_op,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"e9_sched_scale\": [\n");
        let n = rows.len();
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"devices\": {}, \"events\": {}, \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}, \"p99_dispatch_ns\": {}, \"allocs_per_event\": {:.4}}}{}\n",
                r.devices,
                r.events,
                r.wall_secs,
                r.events_per_sec,
                r.p99_dispatch_ns,
                r.allocs_per_event,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"e9b_batch_ab\": [\n");
        let n = ab.len();
        for (i, r) in ab.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"devices\": {}, \"unbatched_events_per_sec\": {:.0}, \"batched_events_per_sec\": {:.0}, \"speedup\": {:.3}, \"unbatched_p99_dispatch_ns\": {}, \"batched_p99_dispatch_ns\": {}}}{}\n",
                r.devices,
                r.unbatched_events_per_sec,
                r.batched_events_per_sec,
                r.speedup,
                r.unbatched_p99_dispatch_ns,
                r.batched_p99_dispatch_ns,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"e9c_shard_scale\": [\n");
        let n = e9c.len();
        for (i, r) in e9c.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards\": {}, \"devices\": {}, \"wings\": {}, \"events\": {}, \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}, \"p99_dispatch_ns\": {}, \"barrier_stall_ns\": {}, \"windows\": {}}}{}\n",
                r.shards,
                r.devices,
                r.wings,
                r.events,
                r.wall_secs,
                r.events_per_sec,
                r.p99_dispatch_ns,
                r.barrier_stall_ns,
                r.windows,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str(&format!("  ],\n  \"host_cores\": {host_cores}\n}}\n"));
        std::fs::write(&file, out).expect("write perf_sched json");
        println!("wrote {file}");
    }
}
