//! Scheduler benchmarks: the timer-wheel kernel A/B against the
//! reference min-heap, plus the E9 six-bridge federation scaling sweep
//! (events/sec, p99 dispatch latency, allocations/event).
//!
//! Run with `--check` for the CI scaling-regression gate — an
//! events/sec floor at N = 1000, a near-linearity bound on the
//! per-event wall cost from N = 100 to N = 1000, and a ceiling on the
//! telemetry sampler's overhead at N = 1000 — or with
//! `--json FILE` to write the sweep as deterministic-schema JSON
//! (values are wall-clock and machine-dependent; the schema is what
//! golden files assert on). The committed `BENCH_perf_sched.json`
//! pairs one such run with the pre-timer-wheel baseline numbers.

use bench::experiments::{e10_sampler_overhead, e9_sched_scale};
use bench::report::render_e9;
use bench::timing::sched_kernel;
use simnet::SimDuration;

/// `--check` events/sec floor at N = 1000. The refactored engine
/// measures well above 10x this on a developer laptop and ~5x in CI
/// containers; the old linear-scan dispatch path sat below it.
const CHECK_FLOOR_EVENTS_PER_SEC: f64 = 50_000.0;

/// `--check` bound on per-event wall-cost growth across a 10x device
/// increase. Per-event cost is flat for an O(1) dispatch path and grew
/// ~linearly (>5x) for the old full-scan path; 3x allows for cache
/// effects and noise without letting a linear term back in.
const CHECK_LINEARITY: f64 = 3.0;

/// `--check` ceiling on the telemetry sampler's wall-clock overhead at
/// N = 1000 (ratio of best-of-passes measured windows, sampled vs
/// plain). The 250 ms sampler walks the whole metrics registry a few
/// dozen times per window — per-event cost is amortized to near zero,
/// so 2% is headroom for measurement noise, not for the sampler.
const CHECK_SAMPLER_OVERHEAD: f64 = 1.02;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let json_out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    if check {
        // Kernel smoke: both structures must run; the wheel must not be
        // grossly slower than the heap it replaced on a mixed schedule.
        let k = sched_kernel(10_000, 100_000);
        assert!(k.wheel_ns_per_op > 0.0 && k.heap_ns_per_op > 0.0);
        assert!(
            k.wheel_ns_per_op <= k.heap_ns_per_op * 3.0,
            "timer wheel regressed vs reference heap: {:.0} ns vs {:.0} ns",
            k.wheel_ns_per_op,
            k.heap_ns_per_op
        );

        // E9 endpoints: floor at N = 1000, near-linearity 100 -> 1000.
        let rows = e9_sched_scale(&[100, 1000], SimDuration::from_secs(5));
        let (small, large) = (&rows[0], &rows[1]);
        assert!(
            large.events_per_sec >= CHECK_FLOOR_EVENTS_PER_SEC,
            "events/sec at N=1000 below floor: {:.0} < {:.0}",
            large.events_per_sec,
            CHECK_FLOOR_EVENTS_PER_SEC
        );
        let cost_small = small.wall_secs / small.events.max(1) as f64;
        let cost_large = large.wall_secs / large.events.max(1) as f64;
        assert!(
            cost_large <= cost_small * CHECK_LINEARITY,
            "per-event cost grew {:.2}x from N=100 to N=1000 (bound {CHECK_LINEARITY}x)",
            cost_large / cost_small
        );
        // Telemetry plane: the in-run sampler must stay within its
        // overhead budget on the same N = 1000 federation.
        let overhead = e10_sampler_overhead(1000, SimDuration::from_secs(5), 3);
        assert!(
            overhead <= CHECK_SAMPLER_OVERHEAD,
            "telemetry sampler overhead x{overhead:.3} at N=1000 exceeds x{CHECK_SAMPLER_OVERHEAD}"
        );
        println!(
            "perf_sched --check: ok (N=1000 {:.0} events/s, per-event cost x{:.2} over 10x devices, sampler overhead x{:.3}, wheel {:.0} ns/op vs heap {:.0} ns/op)",
            large.events_per_sec,
            cost_large / cost_small,
            overhead,
            k.wheel_ns_per_op,
            k.heap_ns_per_op
        );
        return;
    }

    println!("scheduler kernel A/B (wall clock, pop+push cycles on a mixed schedule)");
    let mut kernel_lines = Vec::new();
    for pending in [1_000usize, 10_000, 100_000] {
        let k = sched_kernel(pending, 200_000);
        println!(
            "sched_kernel {pending:>7} pending: wheel {:>7.1} ns/op, heap {:>7.1} ns/op ({:.2}x)",
            k.wheel_ns_per_op,
            k.heap_ns_per_op,
            k.heap_ns_per_op / k.wheel_ns_per_op
        );
        kernel_lines.push(k);
    }

    let rows = e9_sched_scale(&[100, 250, 500, 1000], SimDuration::from_secs(15));
    println!("{}", render_e9(&rows));

    if let Some(file) = json_out {
        let mut out = String::from("{\n  \"sched_kernel\": [\n");
        let n = kernel_lines.len();
        for (i, k) in kernel_lines.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"pending\": {}, \"ops\": {}, \"wheel_ns_per_op\": {:.1}, \"heap_ns_per_op\": {:.1}}}{}\n",
                k.pending,
                k.ops,
                k.wheel_ns_per_op,
                k.heap_ns_per_op,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"e9_sched_scale\": [\n");
        let n = rows.len();
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"devices\": {}, \"events\": {}, \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}, \"p99_dispatch_ns\": {}, \"allocs_per_event\": {:.4}}}{}\n",
                r.devices,
                r.events,
                r.wall_secs,
                r.events_per_sec,
                r.p99_dispatch_ns,
                r.allocs_per_event,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&file, out).expect("write perf_sched json");
        println!("wrote {file}");
    }
}
