//! Lints the committed `BENCH_*.json` records at the repository root.
//!
//! Every benchmark record must parse as JSON and carry the four keys
//! the before/after convention requires — `name`, `before`, `after`,
//! `units` — so a reader (or a future regression gate) can always tell
//! what was measured, in what unit, and what it is being compared
//! against. Run by the CI lint stage (`./ci.sh lint`); exits non-zero
//! listing every malformed record.
//!
//! The parser is a minimal recursive-descent JSON reader written here
//! on purpose: the workspace builds offline with no serde dependency,
//! and the linter only needs well-formedness plus top-level key
//! extraction.

use std::fmt;

/// A parsed JSON value; only the shape the linter needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as text (the linter never does arithmetic).
    Number(String),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object; `None` for non-objects.
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug)]
struct ParseError {
    at: usize,
    msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn parse_document(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing content after JSON value"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates only appear in pairs; the linter
                            // doesn't need them, so reject rather than
                            // mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("number has no digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("number has no fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("number has no exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Ok(Json::Number(text.to_owned()))
    }
}

/// Keys every benchmark record must carry at the top level.
const REQUIRED_KEYS: [&str; 4] = ["name", "before", "after", "units"];

/// Numeric keys every row of a multi-row scaling curve
/// (`e9c_shard_scale`) must carry.
const CURVE_ROW_KEYS: [&str; 5] = [
    "shards",
    "devices",
    "events",
    "events_per_sec",
    "barrier_stall_ns",
];

/// Validates one `e9c_shard_scale` scaling-curve value, wherever it
/// appears in a record: it must be an array of at least two rows (one
/// point is not a curve), every row an object carrying the numeric
/// [`CURVE_ROW_KEYS`], with `shards` strictly increasing down the
/// sweep.
fn lint_scaling_curve(at: &str, curve: &Json) -> Vec<String> {
    let Json::Array(rows) = curve else {
        return vec![format!("{at}: e9c_shard_scale must be an array")];
    };
    let mut problems = Vec::new();
    if rows.len() < 2 {
        problems.push(format!(
            "{at}: e9c_shard_scale needs at least 2 rows to be a scaling curve (has {})",
            rows.len()
        ));
    }
    let mut prev_shards: Option<f64> = None;
    for (i, row) in rows.iter().enumerate() {
        if !matches!(row, Json::Object(_)) {
            problems.push(format!("{at}: e9c_shard_scale[{i}] is not an object"));
            continue;
        }
        for key in CURVE_ROW_KEYS {
            match row.get(key) {
                Some(Json::Number(_)) => {}
                Some(_) => problems.push(format!(
                    "{at}: e9c_shard_scale[{i}] key {key:?} is not a number"
                )),
                None => problems.push(format!(
                    "{at}: e9c_shard_scale[{i}] missing required key {key:?}"
                )),
            }
        }
        if let Some(Json::Number(text)) = row.get("shards") {
            if let Ok(shards) = text.parse::<f64>() {
                if prev_shards.is_some_and(|prev| shards <= prev) {
                    problems.push(format!(
                        "{at}: e9c_shard_scale[{i}] shard counts must be strictly increasing \
                         ({} after {})",
                        shards,
                        prev_shards.expect("checked")
                    ));
                }
                prev_shards = Some(shards);
            }
        }
    }
    problems
}

/// Validates one `trace_loss` value from the observability record: an
/// object carrying the retention policy name plus the retained/lost
/// span counts the before/after comparison is about.
fn lint_trace_loss(at: &str, loss: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    if !matches!(loss, Json::Object(_)) {
        return vec![format!("{at}: trace_loss must be an object")];
    }
    match loss.get("mode") {
        Some(Json::String(s)) if !s.is_empty() => {}
        Some(_) => problems.push(format!(
            "{at}: trace_loss \"mode\" must be a non-empty string"
        )),
        None => problems.push(format!("{at}: trace_loss missing required key \"mode\"")),
    }
    for key in ["retained", "lost"] {
        match loss.get(key) {
            Some(Json::Number(_)) => {}
            Some(_) => problems.push(format!("{at}: trace_loss key {key:?} is not a number")),
            None => problems.push(format!("{at}: trace_loss missing required key {key:?}")),
        }
    }
    problems
}

/// Validates one `attrib` value from the observability record: an
/// object carrying the side's mode label and the measured wall-clock
/// overhead ratio; the `after` side (attribution on) must also carry
/// the budget the perf gate enforces.
fn lint_attrib(at: &str, attrib: &Json, is_after: bool) -> Vec<String> {
    let mut problems = Vec::new();
    if !matches!(attrib, Json::Object(_)) {
        return vec![format!("{at}: attrib must be an object")];
    }
    match attrib.get("mode") {
        Some(Json::String(s)) if !s.is_empty() => {}
        Some(_) => problems.push(format!("{at}: attrib \"mode\" must be a non-empty string")),
        None => problems.push(format!("{at}: attrib missing required key \"mode\"")),
    }
    match attrib.get("overhead_ratio") {
        Some(Json::Number(_)) => {}
        Some(_) => problems.push(format!(
            "{at}: attrib key \"overhead_ratio\" is not a number"
        )),
        None => problems.push(format!(
            "{at}: attrib missing required key \"overhead_ratio\""
        )),
    }
    if is_after && !matches!(attrib.get("budget_ratio"), Some(Json::Number(_))) {
        problems.push(format!(
            "{at}: attrib \"after\" side must carry a numeric \"budget_ratio\""
        ));
    }
    problems
}

/// Numeric keys both sides of the perf_dir record's `e12_delta_gossip`
/// A/B row must carry.
const GOSSIP_ROW_KEYS: [&str; 5] = [
    "runtimes",
    "steady_bytes",
    "join_convergence_ms",
    "leave_convergence_ms",
    "final_entries",
];

/// Validates one side of the perf_dir record: an `e12_delta_gossip`
/// object with the A/B's numeric keys and a `mode` label; the `after`
/// side must additionally carry the headline `steady_bytes_ratio` and
/// the `e12_lookup_scale` object with the gated lookup numbers.
fn lint_dir_side(at: &str, side: &Json, is_after: bool) -> Vec<String> {
    let mut problems = Vec::new();
    match side.get("e12_delta_gossip") {
        Some(row @ Json::Object(_)) => {
            if !matches!(row.get("mode"), Some(Json::String(s)) if !s.is_empty()) {
                problems.push(format!(
                    "{at}: e12_delta_gossip \"mode\" must be a non-empty string"
                ));
            }
            for key in GOSSIP_ROW_KEYS {
                match row.get(key) {
                    Some(Json::Number(_)) => {}
                    Some(_) => problems.push(format!(
                        "{at}: e12_delta_gossip key {key:?} is not a number"
                    )),
                    None => problems.push(format!(
                        "{at}: e12_delta_gossip missing required key {key:?}"
                    )),
                }
            }
        }
        Some(_) => problems.push(format!("{at}: e12_delta_gossip must be an object")),
        None => problems.push(format!(
            "perf_dir record: {at:?} must carry an \"e12_delta_gossip\" object"
        )),
    }
    if is_after {
        if !matches!(side.get("steady_bytes_ratio"), Some(Json::Number(_))) {
            problems.push(format!(
                "{at}: perf_dir record must carry a numeric \"steady_bytes_ratio\""
            ));
        }
        match side.get("e12_lookup_scale") {
            Some(lk @ Json::Object(_)) => {
                for key in ["total_ports", "p99_ns", "scan_fallbacks"] {
                    match lk.get(key) {
                        Some(Json::Number(_)) => {}
                        Some(_) => problems.push(format!(
                            "{at}: e12_lookup_scale key {key:?} is not a number"
                        )),
                        None => problems.push(format!(
                            "{at}: e12_lookup_scale missing required key {key:?}"
                        )),
                    }
                }
            }
            Some(_) => problems.push(format!("{at}: e12_lookup_scale must be an object")),
            None => problems.push(format!(
                "perf_dir record: {at:?} must carry an \"e12_lookup_scale\" object"
            )),
        }
    }
    problems
}

/// Validates one record's content; returns every problem found.
fn lint_record(text: &str) -> Vec<String> {
    let doc = match Parser::new(text).parse_document() {
        Ok(doc) => doc,
        Err(e) => return vec![format!("does not parse as JSON ({e})")],
    };
    if !matches!(doc, Json::Object(_)) {
        return vec!["top level is not a JSON object".to_owned()];
    }
    let mut problems = Vec::new();
    for key in REQUIRED_KEYS {
        match doc.get(key) {
            None => problems.push(format!("missing required key {key:?}")),
            Some(Json::Null) => problems.push(format!("required key {key:?} is null")),
            Some(_) => {}
        }
    }
    if let Some(v) = doc.get("name") {
        if !matches!(v, Json::String(s) if !s.is_empty()) {
            problems.push("key \"name\" must be a non-empty string".to_owned());
        }
    }
    // Scaling-curve convention: wherever a record carries an
    // `e9c_shard_scale` value (top level or inside the before/after
    // snapshots), it must be shaped like a multi-row curve.
    let mut curve_sites = vec![("top level", &doc)];
    for key in ["before", "after"] {
        if let Some(v) = doc.get(key) {
            curve_sites.push((key, v));
        }
    }
    for (at, holder) in curve_sites {
        if let Some(curve) = holder.get("e9c_shard_scale") {
            problems.extend(lint_scaling_curve(at, curve));
        }
    }
    // Observability convention: the record's before/after comparison is
    // the trace-loss A/B (drop-on-full vs flight recorder) plus the
    // attribution-overhead A/B (fold off vs on), so both sides must
    // carry well-formed `trace_loss` and `attrib` objects.
    if matches!(doc.get("name"), Some(Json::String(s)) if s == "observability") {
        for key in ["before", "after"] {
            match doc.get(key).and_then(|side| side.get("trace_loss")) {
                Some(loss) => problems.extend(lint_trace_loss(key, loss)),
                None => problems.push(format!(
                    "observability record: {key:?} must carry a \"trace_loss\" object"
                )),
            }
            match doc.get(key).and_then(|side| side.get("attrib")) {
                Some(attrib) => problems.extend(lint_attrib(key, attrib, key == "after")),
                None => problems.push(format!(
                    "observability record: {key:?} must carry an \"attrib\" object"
                )),
            }
        }
    }
    // Directory-federation convention: the perf_dir record's before/after
    // comparison is the full-refresh vs delta-gossip A/B, and the gated
    // lookup numbers ride on the `after` side.
    if matches!(doc.get("name"), Some(Json::String(s)) if s == "perf_dir") {
        for key in ["before", "after"] {
            if let Some(side) = doc.get(key) {
                problems.extend(lint_dir_side(key, side, key == "after"));
            }
        }
    }
    problems
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let mut records: Vec<std::path::PathBuf> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("cannot read {root}: {e}"))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    records.sort();
    if records.is_empty() {
        eprintln!("bench_lint: no BENCH_*.json records found under {root}");
        std::process::exit(1);
    }

    let mut failures = 0usize;
    for path in &records {
        let display = path.display();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_lint: {display}: unreadable ({e})");
                failures += 1;
                continue;
            }
        };
        let problems = lint_record(&text);
        if problems.is_empty() {
            println!("bench_lint: {display}: ok");
        } else {
            for p in &problems {
                eprintln!("bench_lint: {display}: {p}");
            }
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_lint: {failures} of {} record(s) malformed",
            records.len()
        );
        std::process::exit(1);
    }
    println!("bench_lint: {} record(s) ok", records.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = Parser::new(
            r#"{"name": "x", "units": {"t": "ns"}, "before": [1, 2.5, -3e2], "after": {"a": null, "b": [true, false, "qA\n"]}}"#,
        )
        .parse_document()
        .expect("valid json");
        assert_eq!(doc.get("name"), Some(&Json::String("x".to_owned())));
        let Some(Json::Array(before)) = doc.get("before") else {
            panic!("before is an array");
        };
        assert_eq!(before.len(), 3);
        let after = doc.get("after").expect("after present");
        assert_eq!(after.get("a"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": 01x}",
            "\"unterminated",
            "{\"a\": 1} trailing",
        ] {
            assert!(
                Parser::new(bad).parse_document().is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn lint_requires_all_keys() {
        let ok = r#"{"name": "n", "units": "ns", "before": 1, "after": 2}"#;
        assert!(lint_record(ok).is_empty());
        let missing = r#"{"name": "n", "before": 1, "after": 2}"#;
        assert_eq!(
            lint_record(missing),
            vec!["missing required key \"units\"".to_owned()]
        );
        let null_key = r#"{"name": "n", "units": null, "before": 1, "after": 2}"#;
        assert_eq!(
            lint_record(null_key),
            vec!["required key \"units\" is null".to_owned()]
        );
        let bad_name = r#"{"name": "", "units": "ns", "before": 1, "after": 2}"#;
        assert_eq!(
            lint_record(bad_name),
            vec!["key \"name\" must be a non-empty string".to_owned()]
        );
    }

    #[test]
    fn lint_enforces_observability_trace_loss() {
        let ok = r#"{"name": "observability", "units": "spans",
            "before": {"trace_loss": {"mode": "drop-on-full", "retained": 256, "lost": 90, "tail_survives": false},
                       "attrib": {"mode": "attribution-off", "overhead_ratio": 1.0}},
            "after": {"trace_loss": {"mode": "flight-recorder", "retained": 256, "lost": 90, "tail_survives": true},
                      "attrib": {"mode": "attribution-on", "overhead_ratio": 1.004, "budget_ratio": 1.03}}}"#;
        assert_eq!(lint_record(ok), Vec::<String>::new());

        let missing_side = r#"{"name": "observability", "units": "spans",
            "before": {"trace_loss": {"mode": "drop-on-full", "retained": 1, "lost": 2},
                       "attrib": {"mode": "attribution-off", "overhead_ratio": 1.0}},
            "after": {"snapshot": {},
                      "attrib": {"mode": "attribution-on", "overhead_ratio": 1.0, "budget_ratio": 1.03}}}"#;
        assert_eq!(
            lint_record(missing_side),
            vec!["observability record: \"after\" must carry a \"trace_loss\" object".to_owned()]
        );

        let bad_fields = r#"{"name": "observability", "units": "spans",
            "before": {"trace_loss": {"mode": "", "retained": 1, "lost": 2},
                       "attrib": {"mode": "attribution-off", "overhead_ratio": 1.0}},
            "after": {"trace_loss": {"mode": "flight-recorder", "retained": "many"},
                      "attrib": {"mode": "attribution-on", "overhead_ratio": 1.0, "budget_ratio": 1.03}}}"#;
        assert_eq!(
            lint_record(bad_fields),
            vec![
                "before: trace_loss \"mode\" must be a non-empty string".to_owned(),
                "after: trace_loss key \"retained\" is not a number".to_owned(),
                "after: trace_loss missing required key \"lost\"".to_owned(),
            ]
        );

        // Non-observability records are exempt from the convention.
        let other = r#"{"name": "n", "units": "ns", "before": 1, "after": 2}"#;
        assert!(lint_record(other).is_empty());
    }

    #[test]
    fn lint_enforces_observability_attrib_shape() {
        let loss = r#""trace_loss": {"mode": "m", "retained": 1, "lost": 2}"#;

        let missing = format!(
            r#"{{"name": "observability", "units": "ns",
                "before": {{{loss}}}, "after": {{{loss}}}}}"#
        );
        assert_eq!(
            lint_record(&missing),
            vec![
                "observability record: \"before\" must carry an \"attrib\" object".to_owned(),
                "observability record: \"after\" must carry an \"attrib\" object".to_owned(),
            ]
        );

        let bad = format!(
            r#"{{"name": "observability", "units": "ns",
                "before": {{{loss}, "attrib": {{"mode": "", "overhead_ratio": "fast"}}}},
                "after": {{{loss}, "attrib": {{"overhead_ratio": 1.0}}}}}}"#
        );
        assert_eq!(
            lint_record(&bad),
            vec![
                "before: attrib \"mode\" must be a non-empty string".to_owned(),
                "before: attrib key \"overhead_ratio\" is not a number".to_owned(),
                "after: attrib missing required key \"mode\"".to_owned(),
                "after: attrib \"after\" side must carry a numeric \"budget_ratio\"".to_owned(),
            ]
        );

        let not_object = format!(
            r#"{{"name": "observability", "units": "ns",
                "before": {{{loss}, "attrib": 7}},
                "after": {{{loss}, "attrib": {{"mode": "on", "overhead_ratio": 1.0, "budget_ratio": 1.03}}}}}}"#
        );
        assert_eq!(
            lint_record(&not_object),
            vec!["before: attrib must be an object".to_owned()]
        );
    }

    #[test]
    fn lint_enforces_perf_dir_ab_shape() {
        let ok = r#"{"name": "perf_dir", "units": "bytes",
            "before": {"e12_delta_gossip": {"mode": "full-refresh", "runtimes": 100, "steady_bytes": 946800,
                       "join_convergence_ms": 0, "leave_convergence_ms": 192, "final_entries": 1000}},
            "after": {"e12_delta_gossip": {"mode": "delta", "runtimes": 100, "steady_bytes": 37200,
                      "join_convergence_ms": 0, "leave_convergence_ms": 15, "final_entries": 1000},
                      "steady_bytes_ratio": 25.5,
                      "e12_lookup_scale": {"total_ports": 1000000, "p99_ns": 441199, "scan_fallbacks": 0}}}"#;
        assert_eq!(lint_record(ok), Vec::<String>::new());

        let broken = r#"{"name": "perf_dir", "units": "bytes",
            "before": {"e12_delta_gossip": {"mode": "full-refresh", "runtimes": 100, "steady_bytes": 946800,
                       "join_convergence_ms": 0, "final_entries": 1000}},
            "after": {"e12_delta_gossip": {"mode": "", "runtimes": 100, "steady_bytes": 37200,
                      "join_convergence_ms": 0, "leave_convergence_ms": 15, "final_entries": 1000},
                      "e12_lookup_scale": {"total_ports": 1000000, "p99_ns": 441199}}}"#;
        assert_eq!(
            lint_record(broken),
            vec![
                "before: e12_delta_gossip missing required key \"leave_convergence_ms\"".to_owned(),
                "after: e12_delta_gossip \"mode\" must be a non-empty string".to_owned(),
                "after: perf_dir record must carry a numeric \"steady_bytes_ratio\"".to_owned(),
                "after: e12_lookup_scale missing required key \"scan_fallbacks\"".to_owned(),
            ]
        );

        // Non-perf_dir records are exempt from the convention.
        let other = r#"{"name": "n", "units": "ns", "before": 1, "after": 2}"#;
        assert!(lint_record(other).is_empty());
    }

    #[test]
    fn lint_accepts_well_formed_scaling_curve() {
        let ok = r#"{"name": "n", "units": "ns", "before": 1, "after": {
            "e9c_shard_scale": [
                {"shards": 1, "devices": 10000, "wings": 16, "events": 9, "wall_secs": 1.0,
                 "events_per_sec": 9.0, "p99_dispatch_ns": 5, "barrier_stall_ns": 0, "windows": 3},
                {"shards": 4, "devices": 10000, "wings": 16, "events": 9, "wall_secs": 0.5,
                 "events_per_sec": 18.0, "p99_dispatch_ns": 5, "barrier_stall_ns": 7, "windows": 3}
            ]}}"#;
        assert_eq!(lint_record(ok), Vec::<String>::new());
    }

    #[test]
    fn lint_rejects_malformed_scaling_curves() {
        let one_row = r#"{"name": "n", "units": "ns", "before": 1, "after": {
            "e9c_shard_scale": [{"shards": 1, "devices": 2, "events": 3,
                                 "events_per_sec": 4, "barrier_stall_ns": 5}]}}"#;
        assert_eq!(
            lint_record(one_row),
            vec![
                "after: e9c_shard_scale needs at least 2 rows to be a scaling curve (has 1)"
                    .to_owned()
            ]
        );

        let missing_key = r#"{"name": "n", "units": "ns", "before": 1, "after": {
            "e9c_shard_scale": [
                {"shards": 1, "devices": 2, "events": 3, "events_per_sec": 4, "barrier_stall_ns": 5},
                {"shards": 4, "devices": 2, "events": 3, "events_per_sec": 4}
            ]}}"#;
        assert_eq!(
            lint_record(missing_key),
            vec!["after: e9c_shard_scale[1] missing required key \"barrier_stall_ns\"".to_owned()]
        );

        let not_increasing = r#"{"name": "n", "units": "ns", "before": 1, "after": {
            "e9c_shard_scale": [
                {"shards": 4, "devices": 2, "events": 3, "events_per_sec": 4, "barrier_stall_ns": 5},
                {"shards": 2, "devices": 2, "events": 3, "events_per_sec": 4, "barrier_stall_ns": 5}
            ]}}"#;
        assert_eq!(
            lint_record(not_increasing),
            vec![
                "after: e9c_shard_scale[1] shard counts must be strictly increasing (2 after 4)"
                    .to_owned()
            ]
        );

        let not_array =
            r#"{"name": "n", "units": "ns", "before": {"e9c_shard_scale": 7}, "after": 2}"#;
        assert_eq!(
            lint_record(not_array),
            vec!["before: e9c_shard_scale must be an array".to_owned()]
        );
    }
}
