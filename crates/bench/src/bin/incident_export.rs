//! Exports the E11 sharded fault-injection run as a deterministic
//! incident-bundle artifact: the first bundle the light shard's trigger
//! plane snapshotted, plus the shard's final doctor report.
//!
//! Usage:
//!
//! ```text
//! incident_export [--bundle FILE] [--doctor FILE]
//! ```
//!
//! With no flags, writes `artifacts/E11_incident.json` and
//! `artifacts/E11_doctor.json` relative to the current directory. Both
//! outputs are byte-identical across runs (the `ci.sh` determinism gate
//! diffs two of them), and a journey/trigger summary is always printed
//! to stdout.

use bench::experiments::e11_sharded_incident;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut bundle_out = None;
    let mut doctor_out = None;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--bundle" => {
                bundle_out = raw.get(i + 1).cloned();
                i += 2;
            }
            "--doctor" => {
                doctor_out = raw.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: incident_export [--bundle FILE] [--doctor FILE]");
                std::process::exit(2);
            }
        }
    }
    if bundle_out.is_none() && doctor_out.is_none() {
        bundle_out = Some("artifacts/E11_incident.json".to_owned());
        doctor_out = Some("artifacts/E11_doctor.json".to_owned());
    }

    let r = e11_sharded_incident();
    println!(
        "E11 incident: {} xfer egress / {} ingress spans, {} orphans, \
         journey coverage {:.1}%",
        r.xfer_egress,
        r.xfer_ingress,
        r.orphan_xfer_hops,
        r.journey_coverage * 100.0
    );
    for b in &r.bundles {
        println!(
            "  bundle: {:?} on shard {:?} at {} ns",
            b.kind,
            b.shard,
            b.at.as_nanos()
        );
    }
    match &r.top_offender {
        Some(subject) => println!("  top offender: {subject}"),
        None => println!("  top offender: (none)"),
    }
    for (path, body, what) in [
        (&bundle_out, &r.bundle_json, "incident bundle"),
        (&doctor_out, &r.doctor_json, "doctor report"),
    ] {
        if let Some(path) = path {
            bench::report::write_artifact(path, body, what);
        }
    }
}
