//! CLI harness: runs every experiment and prints the paper-vs-measured
//! tables. Pass experiment ids (`e1 e3 ...`) to run a subset,
//! `--json FILE` to also dump the BENCH_observability record (the E11
//! trace-loss A/B and the E13 attribution-overhead A/B as
//! before/after, plus the E8 metrics snapshot), and
//! `--perfetto FILE` / `--folded FILE` to write the E8 trace exports
//! (see also the dedicated `trace_export`, `incident_export` and
//! `attrib_export` bins).

use bench::experiments::*;
use bench::report::*;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out = None;
    let mut perfetto_out = None;
    let mut folded_out = None;
    let mut ids = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--json" {
            json_out = raw.get(i + 1).cloned();
            i += 2;
        } else if raw[i] == "--perfetto" {
            perfetto_out = raw.get(i + 1).cloned();
            i += 2;
        } else if raw[i] == "--folded" {
            folded_out = raw.get(i + 1).cloned();
            i += 2;
        } else {
            ids.push(raw[i].clone());
            i += 1;
        }
    }
    let all = ids.is_empty();
    let want = |id: &str| all || ids.iter().any(|a| a == id);

    println!("uMiddle evaluation harness (simulated testbed)");
    if want("e1") {
        println!("{}", render_e1(&e1_service_level(5)));
    }
    if want("e2") {
        println!("{}", render_e2(&e2_device_level()));
    }
    if want("e3") {
        println!("{}", render_e3(&e3_transport_level(30)));
    }
    if want("e4") {
        println!("{}", render_e4(&e4_ablation_translation()));
    }
    if want("e5") {
        println!("{}", render_e5(&e5_ablation_qos()));
    }
    if want("e6") {
        println!("{}", render_e6(&e6_directory_scale(&[2, 4, 8, 12], 4)));
    }
    if want("e7") {
        println!("{}", render_e7(&e7_ablation_scatter()));
    }
    if want("e8") {
        let r = e8_observability();
        println!("{}", render_e8(&r));
        if let Some(path) = &json_out {
            // The dump doubles as the repo-recorded BENCH_observability
            // record, so it carries the bench_lint key convention
            // (name/before/after/units). The before/after comparison is
            // the trace-loss A/B (drop-on-full vs flight recorder) plus
            // the attribution-overhead A/B on the E9b busy-sink fixture
            // (telemetry alone vs telemetry + attribution fold); the E8
            // metrics snapshot rides along under "snapshot".
            let (drop_side, ring_side) = e11_trace_loss_ab();
            let loss = |s: &TraceLossSide| {
                format!(
                    "{{\"mode\": \"{}\", \"retained\": {}, \"lost\": {}, \
                     \"tail_survives\": {}}}",
                    s.mode, s.retained, s.lost, s.tail_survives
                )
            };
            let attrib_ratio = e13_attrib_overhead(1000, simnet::SimDuration::from_secs(2), 3);
            let attrib = |mode: &str, ratio: f64, budget: Option<f64>| {
                let budget = budget
                    .map(|b| format!(", \"budget_ratio\": {b:.2}"))
                    .unwrap_or_default();
                format!("{{\"mode\": \"{mode}\", \"overhead_ratio\": {ratio:.3}{budget}}}")
            };
            let after = r.snapshot.to_json();
            let record = format!(
                concat!(
                    "{{\n",
                    "  \"name\": \"observability\",\n",
                    "  \"units\": \"counters/gauges: dimensionless totals; ",
                    "histograms: event counts per bucket; ",
                    "bucket_bounds_ns: nanoseconds; ",
                    "trace_loss: span records at equal trace capacity; ",
                    "attrib: wall-clock overhead ratio at N=1000\",\n",
                    "  \"before\": {{\n    \"trace_loss\": {},\n    \"attrib\": {}\n  }},\n",
                    "  \"after\": {{\n    \"trace_loss\": {},\n    \"attrib\": {},\n    \"snapshot\": {}\n  }}\n",
                    "}}"
                ),
                loss(&drop_side),
                attrib("attribution-off", 1.0, None),
                loss(&ring_side),
                attrib("attribution-on", attrib_ratio, Some(1.03)),
                after.trim_end().replace('\n', "\n    ")
            );
            std::fs::write(path, record).expect("write metrics snapshot");
            println!("wrote metrics snapshot to {path}");
        }
        if let Some(path) = &perfetto_out {
            std::fs::write(path, &r.perfetto).expect("write perfetto trace");
            println!("wrote perfetto trace to {path}");
        }
        if let Some(path) = &folded_out {
            std::fs::write(path, &r.folded).expect("write folded stacks");
            println!("wrote folded stacks to {path}");
        }
    }
    if want("e10") {
        println!("{}", render_e10(&e10_telemetry_faults()));
    }
    if want("e11") {
        println!("{}", render_e11(&e11_sharded_incident()));
    }
    if want("e13") {
        println!("{}", render_e13(&e13_attribution()));
    }
    // Scheduler scaling sweep (opt-in: `cargo run -p bench -- e9`) —
    // a reduced version of the full `perf_sched --json` sweep, which
    // also covers N = 500 and N = 1000.
    if !all && ids.iter().any(|a| a == "e9") {
        println!(
            "{}",
            render_e9(&e9_sched_scale(
                &[100, 250],
                simnet::SimDuration::from_secs(10)
            ))
        );
    }
    // Data-path micro-benches (opt-in: `cargo run -p bench -- perf`) —
    // the same kernels the `perf_payload` binary measures.
    if !all && ids.iter().any(|a| a == "perf") {
        println!("data-path micro-benches (wall clock; see also `perf_payload --json`)");
        let run = bench::timing::wire_decode_bulk(1_000);
        println!(
            "wire_decode_bulk 1k: {:.1} ns/frame, {} B copied",
            run.ns_per_frame, run.payload.bytes_copied
        );
        let fanout = bench::timing::multicast_fanout(32, 50);
        println!(
            "multicast_fanout 32rx: {:.0} ns/send, {} B shared",
            fanout.ns_per_send, fanout.shared_bytes
        );
        let per_kib = bench::timing::stream_bulk_transfer(1_000_000, 0.0);
        println!("stream_bulk 1MB: {per_kib:.0} ns/KiB");
    }
}
