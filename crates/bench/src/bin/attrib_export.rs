//! Exports the E13 attribution run as deterministic artifacts: the
//! post-fault attribution snapshot, the differential doctor's ranked
//! diff, and the healthy-half baseline snapshot the `perf_sched
//! --check` differential doctor compares future runs against.
//!
//! Usage:
//!
//! ```text
//! attrib_export [--attrib FILE] [--diff FILE] [--baseline FILE]
//! ```
//!
//! With no flags, writes `artifacts/E13_attrib.json`,
//! `artifacts/E13_attrib_diff.json` and
//! `artifacts/E13_attrib_baseline.json` relative to the current
//! directory. All outputs are byte-identical across runs (the `ci.sh`
//! determinism gate diffs two of them), and the diff's ranked verdict
//! is always printed to stdout.

use bench::experiments::e13_attribution;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut attrib_out = None;
    let mut diff_out = None;
    let mut baseline_out = None;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--attrib" => {
                attrib_out = raw.get(i + 1).cloned();
                i += 2;
            }
            "--diff" => {
                diff_out = raw.get(i + 1).cloned();
                i += 2;
            }
            "--baseline" => {
                baseline_out = raw.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: attrib_export [--attrib FILE] [--diff FILE] [--baseline FILE]");
                std::process::exit(2);
            }
        }
    }
    if attrib_out.is_none() && diff_out.is_none() && baseline_out.is_none() {
        attrib_out = Some("artifacts/E13_attrib.json".to_owned());
        diff_out = Some("artifacts/E13_attrib_diff.json".to_owned());
        baseline_out = Some("artifacts/E13_attrib_baseline.json".to_owned());
    }

    let r = e13_attribution();
    println!(
        "E13 attribution: {} components, {} spans folded ({} lost), {} bundle(s)",
        r.after.components.len(),
        r.after.spans_folded,
        r.after.spans_lost,
        r.bundles.len()
    );
    print!("{}", r.diff_text);
    println!(
        "exemplar corr {:#x} -> {} span(s) in the incident bundle",
        r.exemplar_corr,
        r.exemplar_journey.len()
    );
    for (path, body, what) in [
        (&attrib_out, &r.attrib_json, "attribution snapshot"),
        (&diff_out, &r.diff_json, "attribution diff"),
        (&baseline_out, &r.before_json, "attribution baseline"),
    ] {
        if let Some(path) = path {
            bench::report::write_artifact(path, body, what);
        }
    }
}
