//! Data-path micro-benchmarks for the zero-copy payload work: bulk wire
//! frame decoding, multicast fan-out, and stream bulk transfer (see
//! [`bench::timing`] for the measured kernels).
//!
//! Run with `--check` for a fast smoke pass plus the deterministic
//! decode-linearity regression (CI), or with `--json FILE` to write the
//! measured numbers as deterministic-schema JSON (time values are
//! wall-clock and thus machine-dependent; the schema and the payload
//! copy counters are what golden files assert on). The full run also
//! replays the E8 observability federation and reports its end-to-end
//! path-latency histogram next to the payload copy counters.

use bench::experiments::e8_observability;
use bench::timing::{
    assert_decode_copies_linear, multicast_fanout, stream_bulk_transfer, wire_decode_bulk,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let json_out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    if check {
        // CI smoke: one small iteration of each case so the bench code
        // cannot rot, plus the deterministic linearity regression.
        let run = wire_decode_bulk(16);
        assert!(run.ns_per_frame > 0.0);
        let (small, large) = assert_decode_copies_linear(64);
        let fanout = multicast_fanout(4, 4);
        assert!(fanout.ns_per_send > 0.0);
        assert!(fanout.shared_bytes > 0, "fan-out must share buffers");
        let per_kib = stream_bulk_transfer(64 * 1024, 0.0);
        assert!(per_kib > 0.0);
        println!("perf_payload --check: ok (decode copies {small} -> {large} B, linear)");
        return;
    }

    println!("zero-copy payload path benches (wall clock)");
    let run_1k = wire_decode_bulk(1_000);
    let run_2k = wire_decode_bulk(2_000);
    println!(
        "wire_decode_bulk   1k frames: {:>10} ns total, {:>9.1} ns/frame, {} B copied",
        run_1k.ns_total, run_1k.ns_per_frame, run_1k.payload.bytes_copied
    );
    println!(
        "wire_decode_bulk   2k frames: {:>10} ns total, {:>9.1} ns/frame, {} B copied",
        run_2k.ns_total, run_2k.ns_per_frame, run_2k.payload.bytes_copied
    );
    println!(
        "wire_decode_bulk   per-frame ratio 2k/1k: {:.2} wall, {:.2} copied (linear ≈ 1.0)",
        run_2k.ns_per_frame / run_1k.ns_per_frame,
        run_2k.payload.bytes_copied as f64 / (2 * run_1k.payload.bytes_copied.max(1)) as f64
    );

    let mut fanout_lines = Vec::new();
    for receivers in [8usize, 32, 128] {
        let run = multicast_fanout(receivers, 50);
        println!(
            "multicast_fanout   {receivers:>3} receivers: {:>10.0} ns/send, {} B delivered, {} B shared, {} B copied",
            run.ns_per_send, run.delivered_bytes, run.shared_bytes, run.payload.bytes_copied
        );
        fanout_lines.push((receivers, run));
    }

    let mut stream_lines = Vec::new();
    for (total, loss) in [(1_000_000usize, 0.0), (500_000, 0.02)] {
        let per_kib = stream_bulk_transfer(total, loss);
        println!("stream_bulk        {total:>7} B loss {loss:>4}: {per_kib:>8.0} ns/KiB");
        stream_lines.push((total, loss, per_kib));
    }

    // E8: the two-runtime federation, with the payload copy counters now
    // part of its metrics snapshot.
    let e8 = e8_observability();
    let path = e8.snapshot.histograms.get("umiddle.path_latency");
    if let Some(h) = path {
        println!(
            "e8 path_latency    count {} mean {} min {} max {}",
            h.count(),
            h.mean(),
            h.min(),
            h.max()
        );
    }
    for name in [
        "payload.allocs",
        "payload.bytes_copied",
        "payload.shared_clones",
    ] {
        println!(
            "e8 {name:<24} {}",
            e8.snapshot.counters.get(name).copied().unwrap_or(0)
        );
    }

    if let Some(file) = json_out {
        let mut out = String::from("{\n");
        out.push_str("  \"wire_decode_bulk\": [\n");
        for (i, (frames, run)) in [(1_000usize, &run_1k), (2_000, &run_2k)].iter().enumerate() {
            out.push_str(&format!(
                "    {{\"frames\": {frames}, \"ns_total\": {}, \"ns_per_frame\": {:.1}, \"bytes_copied\": {}, \"allocs\": {}}}{}\n",
                run.ns_total,
                run.ns_per_frame,
                run.payload.bytes_copied,
                run.payload.allocs,
                if i == 0 { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"multicast_fanout\": [\n");
        let n = fanout_lines.len();
        for (i, (receivers, run)) in fanout_lines.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"receivers\": {receivers}, \"sends\": 50, \"ns_per_send\": {:.0}, \"delivered_bytes\": {}, \"shared_bytes\": {}, \"bytes_copied\": {}}}{}\n",
                run.ns_per_send,
                run.delivered_bytes,
                run.shared_bytes,
                run.payload.bytes_copied,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"stream_bulk_transfer\": [\n");
        let n = stream_lines.len();
        for (i, (total, loss, per_kib)) in stream_lines.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"total_bytes\": {total}, \"loss\": {loss}, \"ns_per_kib\": {per_kib:.0}}}{}\n",
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"e8_two_runtime_path\": {\n");
        if let Some(h) = path {
            out.push_str(&format!(
                "    \"path_latency\": {{\"count\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}},\n",
                h.count(),
                h.mean().as_nanos(),
                h.min().as_nanos(),
                h.max().as_nanos()
            ));
        }
        out.push_str("    \"payload_counters\": {");
        let names = [
            "payload.allocs",
            "payload.bytes_copied",
            "payload.shared_clones",
        ];
        for (i, name) in names.iter().enumerate() {
            out.push_str(&format!(
                "{}\"{name}\": {}",
                if i == 0 { "" } else { ", " },
                e8.snapshot.counters.get(*name).copied().unwrap_or(0)
            ));
        }
        out.push_str("}\n  }\n}\n");
        std::fs::write(&file, out).expect("write json");
        println!("wrote {file}");
    }
}
