//! Directory-federation benchmarks: the E12 full-refresh vs
//! delta-gossip A/B (steady-state directory-plane bytes, post-churn
//! convergence) and the E12 federation-lookup microbenchmark at the
//! ~1M-advertised-port scale point.
//!
//! Run with `--check` for the CI gate — a floor on the
//! full-refresh/delta steady-state bytes ratio, a post-churn
//! convergence ceiling, a lookup p99 budget, and the scan-free
//! invariant (no port query falls back to a full table scan at any
//! table size) — or with `--json FILE` to write the sweep as
//! deterministic-schema JSON (byte counts and convergence are
//! simulator-deterministic; lookup timings are wall-clock and
//! machine-dependent, the schema is what golden files assert on). The
//! committed `BENCH_perf_dir.json` records one full run.
//!
//! Tunable gate knobs (also settable from ci.sh):
//!
//! * `--ratio X` — floor on the full-refresh/delta steady-state bytes
//!   ratio at the check fixture (default 10; `PERF_DIR_RATIO` env).
//! * `--p99-budget-us N` — lookup p99 budget in µs (default 200;
//!   `PERF_DIR_P99_US` env).

use bench::experiments::{e12_delta_gossip, e12_lookup_scale, DeltaGossipRow};

/// Default `--ratio`: the full-refresh/delta steady-state bytes floor.
/// ISSUE 9's acceptance line. The check fixture (40 runtimes x 5
/// services) measures well above 100x — full refresh re-advertises
/// every entry every interval while a quiescent delta federation only
/// exchanges ~30-byte digests — so 10x is the regression line, not the
/// measured value.
const DEFAULT_BYTES_RATIO: f64 = 10.0;

/// Default `--p99-budget-us`: ceiling on the p99 wall cost of one
/// indexed federation lookup at the check fixture (100k ports).
/// Measured p99 is a few µs; 200 µs keeps the gate insensitive to CI
/// scheduling jitter while still catching an O(table) scan sneaking
/// back into the lookup path.
const DEFAULT_P99_BUDGET_US: u64 = 200;

/// `--check` ceiling on post-churn convergence (worst runtime, ms of
/// virtual time). Deltas propagate in one multicast (~ms); the bound
/// allows one anti-entropy round trip (digest interval + request) for
/// runtimes that missed the delta.
const CHECK_CONVERGENCE_MS: u64 = 5_000;

/// Federation shape of the `--check` A/B (full runs use 100 x 10).
const CHECK_RUNTIMES: usize = 40;
const CHECK_PER_RUNTIME: usize = 5;

/// Lookup-table shape of the `--check` gate (full runs use
/// 10 000 x 100 = 1M ports).
const CHECK_LOOKUP_PROFILES: usize = 2_000;
const CHECK_LOOKUP_PORTS: usize = 50;

/// Parses `--flag value` from the argument list, falling back to a
/// default; panics with a usable message on a malformed value.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return default;
    };
    let raw = args
        .get(i + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"));
    raw.parse()
        .unwrap_or_else(|_| panic!("{flag}: cannot parse {raw:?}"))
}

fn render_ab(rows: &[DeltaGossipRow]) -> String {
    let mut out = String::from(
        "E12 directory federation A/B (directory-plane bytes, virtual time)\n\
         mode          runtimes  ports  boot KiB  steady KiB  join-conv ms  leave-conv ms  deltas  repairs\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>8} {:>6} {:>9.1} {:>11.1} {:>13} {:>14} {:>7} {:>8}\n",
            r.mode,
            r.runtimes,
            r.final_entries,
            r.bootstrap_bytes as f64 / 1024.0,
            r.steady_bytes as f64 / 1024.0,
            r.join_convergence_ms,
            r.leave_convergence_ms,
            r.deltas_applied,
            r.antientropy_repairs,
        ));
    }
    out
}

/// The full-refresh/delta steady-state bytes ratio — the A/B's headline.
fn steady_ratio(rows: &[DeltaGossipRow]) -> f64 {
    rows[0].steady_bytes as f64 / rows[1].steady_bytes.max(1) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let json_out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    // Floor priority: --ratio flag, then PERF_DIR_RATIO env, then the
    // default; same for the p99 budget.
    let env_ratio = std::env::var("PERF_DIR_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let ratio_floor: f64 = flag_value(&args, "--ratio", env_ratio.unwrap_or(DEFAULT_BYTES_RATIO));
    let env_p99 = std::env::var("PERF_DIR_P99_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let p99_budget_us: u64 = flag_value(
        &args,
        "--p99-budget-us",
        env_p99.unwrap_or(DEFAULT_P99_BUDGET_US),
    );
    let p99_budget_ns = p99_budget_us * 1_000;

    if check {
        // A/B: delta gossip must keep paying for itself on the
        // steady-state directory plane, and churn must still converge
        // everywhere within the anti-entropy bound.
        let rows = e12_delta_gossip(CHECK_RUNTIMES, CHECK_PER_RUNTIME);
        let ratio = steady_ratio(&rows);
        assert!(
            ratio >= ratio_floor,
            "steady-state bytes ratio below floor: full-refresh/delta x{ratio:.1} < x{ratio_floor} \
             (full {} B, delta {} B over {} s)",
            rows[0].steady_bytes,
            rows[1].steady_bytes,
            rows[1].steady_secs
        );
        for r in &rows {
            assert!(
                r.join_convergence_ms <= CHECK_CONVERGENCE_MS
                    && r.leave_convergence_ms <= CHECK_CONVERGENCE_MS,
                "{} churn convergence over bound: join {} ms / leave {} ms > {} ms",
                r.mode,
                r.join_convergence_ms,
                r.leave_convergence_ms,
                CHECK_CONVERGENCE_MS
            );
        }

        // Lookup plane: p99 within budget and zero scan fallbacks —
        // the index must answer every port query at any table size.
        let lk = e12_lookup_scale(CHECK_LOOKUP_PROFILES, CHECK_LOOKUP_PORTS);
        assert!(
            lk.p99_ns <= p99_budget_ns,
            "lookup p99 at {} ports over budget: {} ns > {} ns",
            lk.total_ports,
            lk.p99_ns,
            p99_budget_ns
        );
        assert_eq!(
            lk.scan_fallbacks, 0,
            "port queries fell back to a full table scan {} time(s)",
            lk.scan_fallbacks
        );

        println!(
            "perf_dir --check: ok (steady bytes ratio x{ratio:.1} >= x{ratio_floor} at {} runtimes, \
             join conv {} ms / leave conv {} ms <= {} ms, lookup p99 {} ns <= {} ns at {} ports, \
             0 scan fallbacks)",
            CHECK_RUNTIMES,
            rows[1].join_convergence_ms,
            rows[1].leave_convergence_ms,
            CHECK_CONVERGENCE_MS,
            lk.p99_ns,
            p99_budget_ns,
            lk.total_ports
        );
        return;
    }

    let rows = e12_delta_gossip(100, 10);
    println!("{}", render_ab(&rows));
    println!(
        "steady-state bytes ratio (full-refresh / delta): x{:.1}\n",
        steady_ratio(&rows)
    );

    let lk = e12_lookup_scale(10_000, 100);
    println!("E12 federation lookup at scale (wall clock)");
    println!(
        "{} profiles x {} ports = {} advertised ports over {} MIME types, built in {:.0} ms",
        lk.profiles, lk.ports_per_profile, lk.total_ports, lk.distinct_mimes, lk.build_ms
    );
    println!(
        "{} indexed lookups: avg {} ns, p99 {} ns, scan fallbacks {}",
        lk.lookups, lk.avg_ns, lk.p99_ns, lk.scan_fallbacks
    );

    if let Some(file) = json_out {
        let gossip_row = |r: &DeltaGossipRow| {
            format!(
                "{{\"mode\": \"{}\", \"runtimes\": {}, \"per_runtime\": {}, \"bootstrap_bytes\": {}, \"steady_bytes\": {}, \"steady_secs\": {}, \"join_convergence_ms\": {}, \"leave_convergence_ms\": {}, \"deltas_applied\": {}, \"antientropy_repairs\": {}, \"final_entries\": {}}}",
                r.mode,
                r.runtimes,
                r.per_runtime,
                r.bootstrap_bytes,
                r.steady_bytes,
                r.steady_secs,
                r.join_convergence_ms,
                r.leave_convergence_ms,
                r.deltas_applied,
                r.antientropy_repairs,
                r.final_entries,
            )
        };
        let mut out = String::from("{\n  \"name\": \"perf_dir\",\n");
        out.push_str(
            "  \"units\": \"*_bytes: directory-plane bytes over the named window (virtual time, simulator-deterministic); steady_secs: virtual seconds; *_convergence_ms: milliseconds of virtual time, worst runtime; deltas_applied/antientropy_repairs/final_entries/total_ports/distinct_mimes/lookups/scan_fallbacks: counts; steady_bytes_ratio: dimensionless; build_ms: wall-clock milliseconds; avg_ns/p99_ns: wall-clock nanoseconds per lookup\",\n",
        );
        out.push_str(
            "  \"description\": \"E12 directory-federation A/B (DESIGN.md delta-gossip plane, EXPERIMENTS.md E12): 100 runtimes x 10 services on the 10 Mbps hub, 60 virtual seconds of steady state, then one join/leave churn cycle. 'before' is the legacy full-refresh protocol (every entry re-advertised every interval, TTL liveness); 'after' is delta-gossip (version-vectored deltas, digest anti-entropy, origin-level liveness) plus the federation lookup microbenchmark at 1M advertised ports. Byte counts and convergence are simulator-deterministic; lookup timings are wall-clock and machine-dependent. Regenerate with: cargo run --offline --release -p bench --bin perf_dir -- --json BENCH_perf_dir.json\",\n",
        );
        out.push_str(
            "  \"machine\": \"linux x86_64 container (shared); only e12_lookup_scale and build_ms depend on the host\",\n",
        );
        out.push_str(&format!(
            "  \"before\": {{\n    \"e12_delta_gossip\": {}\n  }},\n",
            gossip_row(&rows[0])
        ));
        out.push_str(&format!(
            "  \"after\": {{\n    \"e12_delta_gossip\": {},\n    \"steady_bytes_ratio\": {:.1},\n    \"e12_lookup_scale\": {{\"profiles\": {}, \"ports_per_profile\": {}, \"total_ports\": {}, \"distinct_mimes\": {}, \"build_ms\": {:.0}, \"lookups\": {}, \"avg_ns\": {}, \"p99_ns\": {}, \"scan_fallbacks\": {}}}\n  }}\n}}\n",
            gossip_row(&rows[1]),
            steady_ratio(&rows),
            lk.profiles,
            lk.ports_per_profile,
            lk.total_ports,
            lk.distinct_mimes,
            lk.build_ms,
            lk.lookups,
            lk.avg_ns,
            lk.p99_ns,
            lk.scan_fallbacks
        ));
        std::fs::write(&file, out).expect("write perf_dir json");
        println!("wrote {file}");
    }
}
