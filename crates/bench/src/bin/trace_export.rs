//! Exports the E8 observability run as deterministic trace artifacts:
//! a Chrome/Perfetto `trace_event` JSON (open in `ui.perfetto.dev`), a
//! folded-stack flamegraph file, and the metrics snapshot JSON.
//!
//! Usage:
//!
//! ```text
//! trace_export [--perfetto FILE] [--folded FILE] [--json FILE]
//! ```
//!
//! With no flags, writes `E8_trace.perfetto.json` and `E8_trace.folded`
//! in the current directory. All outputs are byte-identical across runs
//! (the `ci.sh` determinism gate diffs two of them), and the
//! critical-path breakdown of the bridged Bluetooth→UPnP path is always
//! printed to stdout.

use bench::experiments::e8_observability;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut perfetto_out = None;
    let mut folded_out = None;
    let mut json_out = None;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--perfetto" => {
                perfetto_out = raw.get(i + 1).cloned();
                i += 2;
            }
            "--folded" => {
                folded_out = raw.get(i + 1).cloned();
                i += 2;
            }
            "--json" => {
                json_out = raw.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: trace_export [--perfetto FILE] [--folded FILE] [--json FILE]");
                std::process::exit(2);
            }
        }
    }
    if perfetto_out.is_none() && folded_out.is_none() && json_out.is_none() {
        perfetto_out = Some("E8_trace.perfetto.json".to_owned());
        folded_out = Some("E8_trace.folded".to_owned());
    }

    let r = e8_observability();
    println!(
        "E8 trace: {} spans recorded ({} dropped)",
        r.span_count, r.spans_dropped
    );
    match &r.critical_path {
        Some(cp) => print!("{}", cp.render()),
        None => println!("no bridged path found"),
    }
    if let Some(path) = &perfetto_out {
        std::fs::write(path, &r.perfetto).expect("write perfetto trace");
        println!(
            "wrote {path} ({} B) — open in ui.perfetto.dev",
            r.perfetto.len()
        );
    }
    if let Some(path) = &folded_out {
        std::fs::write(path, &r.folded).expect("write folded stacks");
        println!(
            "wrote {path} ({} B) — feed to a flamegraph renderer",
            r.folded.len()
        );
    }
    if let Some(path) = &json_out {
        std::fs::write(path, r.snapshot.to_json()).expect("write metrics snapshot");
        println!("wrote {path}");
    }
}
