//! Shared world-building blocks for the experiment harness.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{
    Addr, Ctx, LocalMessage, NodeId, ProcId, Process, SegmentConfig, StreamEvent, StreamId, World,
};
use umiddle_core::{
    DirectoryEvent, PortRef, QosPolicy, Query, RuntimeClient, RuntimeConfig, RuntimeEvent,
    RuntimeId, RuntimeStats, UmiddleRuntime,
};

/// Adds a node attached to the given segments, with its own runtime.
pub fn runtime_node(
    world: &mut World,
    name: &str,
    id: u32,
    segments: &[simnet::SegmentId],
) -> (NodeId, ProcId) {
    let (node, rt, _stats) =
        runtime_node_cfg(world, name, RuntimeConfig::new(RuntimeId(id)), segments);
    (node, rt)
}

/// Like [`runtime_node`], but with an explicit runtime configuration
/// (E12 uses this for the full-refresh vs delta-gossip A/B) and the
/// runtime's stats handle, readable while the world runs.
pub fn runtime_node_cfg(
    world: &mut World,
    name: &str,
    cfg: RuntimeConfig,
    segments: &[simnet::SegmentId],
) -> (NodeId, ProcId, Rc<RefCell<RuntimeStats>>) {
    let node = world.add_node(name);
    for s in segments {
        world.attach(node, *s).expect("attach");
    }
    let runtime = UmiddleRuntime::new(cfg);
    let stats = runtime.stats_handle();
    let rt = world.add_process(node, Box::new(runtime));
    (node, rt, stats)
}

/// A wiring rule: connect `src` to `dst` (by name substring + port) when
/// both appear in the directory.
#[derive(Debug, Clone)]
pub struct WireRule {
    /// Source translator name substring.
    pub src_name: String,
    /// Source port name.
    pub src_port: String,
    /// Destination translator name substring.
    pub dst_name: String,
    /// Destination port name.
    pub dst_port: String,
    /// The path's QoS policy.
    pub qos: QosPolicy,
}

impl WireRule {
    /// A rule with unbounded QoS.
    pub fn new(src_name: &str, src_port: &str, dst_name: &str, dst_port: &str) -> WireRule {
        WireRule {
            src_name: src_name.to_owned(),
            src_port: src_port.to_owned(),
            dst_name: dst_name.to_owned(),
            dst_port: dst_port.to_owned(),
            qos: QosPolicy::unbounded(),
        }
    }

    /// Overrides the QoS policy.
    pub fn with_qos(mut self, qos: QosPolicy) -> WireRule {
        self.qos = qos;
        self
    }
}

/// An application that watches the directory and wires translators
/// together according to rules.
pub struct Wirer {
    runtime: ProcId,
    client: Option<RuntimeClient>,
    rules: Vec<WireRule>,
    srcs: Vec<Option<PortRef>>,
    dsts: Vec<Option<PortRef>>,
    wired: Vec<bool>,
    /// Connections established (shared).
    pub connected: Rc<RefCell<u32>>,
}

impl Wirer {
    /// Creates a wirer.
    pub fn new(runtime: ProcId, rules: Vec<WireRule>) -> Wirer {
        let n = rules.len();
        Wirer {
            runtime,
            client: None,
            rules,
            srcs: vec![None; n],
            dsts: vec![None; n],
            wired: vec![false; n],
            connected: Rc::new(RefCell::new(0)),
        }
    }

    fn try_wire(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.rules.len() {
            if self.wired[i] {
                continue;
            }
            if let (Some(src), Some(dst)) = (self.srcs[i], self.dsts[i]) {
                self.wired[i] = true;
                self.client.as_mut().expect("client set").connect_ports(
                    ctx,
                    src,
                    dst,
                    self.rules[i].qos.clone(),
                );
            }
        }
    }
}

impl Process for Wirer {
    fn name(&self) -> &str {
        "wirer"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let client = RuntimeClient::new(self.runtime);
        client.add_listener(ctx, Query::All);
        self.client = Some(client);
    }
    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                for (i, rule) in self.rules.iter().enumerate() {
                    if profile.name().contains(&rule.src_name) {
                        self.srcs[i] = Some(PortRef::new(profile.id(), rule.src_port.clone()));
                    }
                    if profile.name().contains(&rule.dst_name) {
                        self.dsts[i] = Some(PortRef::new(profile.id(), rule.dst_port.clone()));
                    }
                }
                self.try_wire(ctx);
            }
            RuntimeEvent::Connected { .. } => {
                *self.connected.borrow_mut() += 1;
            }
            RuntimeEvent::ConnectFailed { reason, .. } => {
                panic!("bench wiring failed: {reason}");
            }
            _ => {}
        }
    }
}

/// A MediaBroker producer for benchmarks: registers a channel and emits
/// fixed-size Data frames, either saturating (fills the send buffer and
/// refills on `Writable`) or paced by an interval.
///
/// The paced mode stands in for TCP congestion control, which the
/// simulated transport (fixed window, go-back-N) lacks: on the paper's
/// shared hub, competing TCP flows adapted to each other, while an
/// unpaced fixed-window flow would monopolize the medium.
pub struct MbSaturatingProducer {
    /// Broker address.
    pub broker: Addr,
    /// Channel name.
    pub channel: String,
    /// Payload bytes per frame.
    pub frame_size: usize,
    /// `None` = saturate; `Some(i)` = one frame every `i`.
    pub pace: Option<simnet::SimDuration>,
    stream: Option<StreamId>,
    acked: bool,
    acc: platform_mediabroker::MbAccumulator,
}

impl MbSaturatingProducer {
    /// Creates a saturating producer.
    pub fn new(broker: Addr, channel: &str, frame_size: usize) -> MbSaturatingProducer {
        MbSaturatingProducer {
            broker,
            channel: channel.to_owned(),
            frame_size,
            pace: None,
            stream: None,
            acked: false,
            acc: platform_mediabroker::MbAccumulator::new(),
        }
    }

    /// Creates a paced producer.
    pub fn paced(
        broker: Addr,
        channel: &str,
        frame_size: usize,
        interval: simnet::SimDuration,
    ) -> MbSaturatingProducer {
        let mut p = MbSaturatingProducer::new(broker, channel, frame_size);
        p.pace = Some(interval);
        p
    }

    fn frame(&self) -> simnet::Payload {
        platform_mediabroker::MbFrame::Data {
            payload: vec![0xAB; self.frame_size].into(),
        }
        .encode_framed()
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let Some(stream) = self.stream else { return };
        if !self.acked {
            return;
        }
        let frame = self.frame();
        // Fill the send buffer completely; the resulting buffer-full
        // rejection arms the Writable notification that resumes us.
        loop {
            if ctx.stream_send(stream, frame.clone()).is_err() {
                break;
            }
        }
    }
}

impl Process for MbSaturatingProducer {
    fn name(&self) -> &str {
        "mb-bench-producer"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.stream = ctx.connect(self.broker).ok();
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if let (Some(stream), Some(interval), true) = (self.stream, self.pace, self.acked) {
            let frame = self.frame();
            let _ = ctx.stream_send(stream, frame);
            ctx.set_timer(interval, 0);
        }
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if Some(stream) != self.stream {
            return;
        }
        match event {
            StreamEvent::Connected => {
                let _ = ctx.stream_send(
                    stream,
                    platform_mediabroker::MbFrame::Produce {
                        channel: self.channel.clone(),
                        media_type: "application/octet-stream".to_owned(),
                    }
                    .encode_framed(),
                );
            }
            StreamEvent::Data(data) => {
                self.acc.push(&data);
                while let Ok(Some(f)) = self.acc.next() {
                    if f == platform_mediabroker::MbFrame::Ack && !self.acked {
                        self.acked = true;
                        match self.pace {
                            Some(interval) => {
                                ctx.set_timer(interval, 0);
                            }
                            None => self.pump(ctx),
                        }
                    }
                }
            }
            StreamEvent::Writable if self.pace.is_none() => {
                self.pump(ctx);
            }
            _ => {}
        }
    }
}

/// A byte-counting native sink behaviour with timestamped totals,
/// readable from outside the world.
#[derive(Debug, Clone, Default)]
pub struct ByteMeter {
    /// `(virtual time nanos, cumulative bytes)` samples, one per message.
    pub samples: Rc<RefCell<Vec<(u64, u64)>>>,
}

impl ByteMeter {
    /// Creates a meter.
    pub fn new() -> ByteMeter {
        ByteMeter::default()
    }

    /// Goodput in Mbps between two virtual times.
    pub fn goodput_mbps(&self, from_nanos: u64, to_nanos: u64) -> f64 {
        let samples = self.samples.borrow();
        let bytes: u64 = {
            let at = |t: u64| -> u64 {
                samples
                    .iter()
                    .take_while(|(ts, _)| *ts <= t)
                    .last()
                    .map(|(_, b)| *b)
                    .unwrap_or(0)
            };
            at(to_nanos).saturating_sub(at(from_nanos))
        };
        let secs = (to_nanos - from_nanos) as f64 / 1e9;
        if secs <= 0.0 {
            0.0
        } else {
            bytes as f64 * 8.0 / secs / 1e6
        }
    }

    /// Total messages observed.
    pub fn count(&self) -> usize {
        self.samples.borrow().len()
    }
}

impl umiddle_bridges::NativeBehavior for ByteMeter {
    fn on_input(
        &mut self,
        env: &mut umiddle_bridges::NativeEnv<'_, '_>,
        _port: &str,
        msg: umiddle_core::UMessage,
    ) {
        let mut samples = self.samples.borrow_mut();
        let total = samples.last().map(|(_, b)| *b).unwrap_or(0) + msg.body().len() as u64;
        samples.push((env.now().as_nanos(), total));
    }
}

/// Builds a standard 10 Mbps hub world.
pub fn hub_world(seed: u64) -> (World, simnet::SegmentId) {
    let mut world = World::new(seed);
    world.trace_mut().set_log_enabled(false);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    (world, hub)
}
