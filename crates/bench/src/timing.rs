//! Minimal wall-clock micro-benchmark harness (criterion replacement,
//! dependency-free).
//!
//! Each benchmark is warmed up, then run in adaptively sized batches
//! until a fixed measurement budget elapses; the report prints the
//! best, median, and mean batch cost per iteration. Wall-clock numbers
//! are inherently noisy — the point is order-of-magnitude tracking of
//! the CPU-bound codecs, not statistical rigor.

use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::time::{Duration, Instant};

use simnet::{
    Addr, Ctx, PayloadStats, Process, SegmentConfig, SimDuration, SimTime, StreamEvent, StreamId,
    World,
};
use umiddle_core::{ConnectionId, PortRef, RuntimeId, TranslatorId, UMessage, WireMessage};

/// Re-export so benches read like the criterion originals.
pub use std::hint::black_box as bb;

const WARMUP: Duration = Duration::from_millis(50);
const BUDGET: Duration = Duration::from_millis(250);

/// One measured sample: a batch of iterations and its total duration.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    elapsed: Duration,
}

impl Sample {
    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// Times `f` and prints a one-line report: `name  best/median/mean ns`.
pub fn bench_function<R, F: FnMut() -> R>(name: &str, mut f: F) {
    // Warm-up: run until the warm-up budget elapses, sizing the batch.
    let mut batch: u64 = 1;
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP {
        for _ in 0..batch {
            black_box(f());
        }
        batch = (batch * 2).min(1 << 20);
    }

    // Pick a batch size that takes roughly 5 ms so timer overhead is
    // amortized but we still collect tens of samples.
    let probe_start = Instant::now();
    for _ in 0..batch {
        black_box(f());
    }
    let probe = probe_start.elapsed().max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let scale = target.as_nanos() as f64 / probe.as_nanos() as f64;
    let batch = ((batch as f64 * scale).max(1.0) as u64).min(1 << 24);

    let mut samples: Vec<Sample> = Vec::new();
    let run_start = Instant::now();
    while run_start.elapsed() < BUDGET {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(Sample {
            iters: batch,
            elapsed: t.elapsed(),
        });
    }

    let mut per_iter: Vec<f64> = samples.iter().map(Sample::ns_per_iter).collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let best = per_iter.first().copied().unwrap_or(f64::NAN);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<32} best {:>12}  median {:>12}  mean {:>12}  ({} samples x {batch} iters)",
        fmt_ns(best),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

// =====================================================================
// Data-path micro-benches (the zero-copy payload work)
// =====================================================================

/// Payload size used by the data-path benches (a JPEG-ish frame).
pub const PAYLOAD_BODY: usize = 1400;

fn path_message(body: usize) -> WireMessage {
    WireMessage::PathMessage {
        connection: ConnectionId::new(RuntimeId(0), 1),
        dst: PortRef::new(TranslatorId::new(RuntimeId(1), 7), "in"),
        msg: UMessage::new("image/jpeg".parse().expect("static mime"), vec![0xAB; body]),
    }
}

/// Result of one [`wire_decode_bulk`] run.
#[derive(Debug, Clone, Copy)]
pub struct WireDecodeRun {
    /// Wall-clock nanoseconds for the whole drain.
    pub ns_total: u128,
    /// Wall-clock nanoseconds per decoded frame.
    pub ns_per_frame: f64,
    /// Payload copy accounting for the run (deterministic).
    pub payload: PayloadStats,
}

/// Buffers `frames` length-prefixed messages into the decoder (in 4 KiB
/// chunks, as a stream would deliver them), then drains them all — the
/// worst case for a decoder that shifts its buffer per extracted frame.
pub fn wire_decode_bulk(frames: usize) -> WireDecodeRun {
    let msg = path_message(PAYLOAD_BODY);
    let one = msg.encode_framed();
    let mut stream = Vec::with_capacity(one.len() * frames);
    for _ in 0..frames {
        stream.extend_from_slice(&one);
    }
    simnet::payload::take_stats();
    let start = Instant::now();
    let mut dec = umiddle_core::FrameDecoder::new();
    for chunk in stream.chunks(4096) {
        dec.push(chunk);
    }
    let mut decoded = 0usize;
    while let Some(m) = dec.next().expect("well-formed frames") {
        black_box(&m);
        decoded += 1;
    }
    let ns = start.elapsed().as_nanos();
    assert_eq!(decoded, frames);
    WireDecodeRun {
        ns_total: ns,
        ns_per_frame: ns as f64 / frames as f64,
        payload: simnet::payload::take_stats(),
    }
}

/// Deterministic linearity regression: decoding `2 * frames` buffered
/// frames must copy at most ~2x the bytes of decoding `frames` — a
/// decoder that concatenates or shifts its buffer per frame copies
/// quadratically and trips this. Returns the two byte counts.
///
/// # Panics
///
/// Panics if the large run copies more than 2.5x the small run.
pub fn assert_decode_copies_linear(frames: usize) -> (u64, u64) {
    let small = wire_decode_bulk(frames).payload.bytes_copied;
    let large = wire_decode_bulk(frames * 2).payload.bytes_copied;
    assert!(
        (large as f64) <= (small as f64) * 2.5,
        "frame decode copies are superlinear: {frames} frames copy {small} B, \
         {} frames copy {large} B",
        frames * 2
    );
    (small, large)
}

struct FanoutReceiver {
    group: u16,
    bytes: Rc<RefCell<u64>>,
}
impl Process for FanoutReceiver {
    fn name(&self) -> &str {
        "fanout-rx"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.join_group(self.group).expect("join group");
    }
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, d: simnet::Datagram) {
        *self.bytes.borrow_mut() += d.data.len() as u64;
    }
}

struct FanoutSender {
    group: u16,
    sends: usize,
    body: usize,
}
impl Process for FanoutSender {
    fn name(&self) -> &str {
        "fanout-tx"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(5000).expect("bind");
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if self.sends == 0 {
            return;
        }
        self.sends -= 1;
        ctx.multicast(5000, self.group, vec![0x5A; self.body])
            .expect("multicast");
        ctx.set_timer(SimDuration::from_millis(5), 0);
    }
}

/// Result of one [`multicast_fanout`] run.
#[derive(Debug, Clone, Copy)]
pub struct FanoutRun {
    /// Wall-clock nanoseconds per multicast send.
    pub ns_per_send: f64,
    /// Application bytes delivered across all receivers.
    pub delivered_bytes: u64,
    /// Bytes delivered by sharing the sender's buffer instead of
    /// copying (the `payload.fanout_bytes_shared` counter).
    pub shared_bytes: u64,
    /// Payload copy accounting for the run (deterministic).
    pub payload: PayloadStats,
}

/// One sender multicasting `sends` datagrams of [`PAYLOAD_BODY`] bytes
/// to `receivers` group members.
pub fn multicast_fanout(receivers: usize, sends: usize) -> FanoutRun {
    let mut w = World::new(7);
    w.trace_mut().set_log_enabled(false);
    let seg = w.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let bytes = Rc::new(RefCell::new(0u64));
    for i in 0..receivers {
        let n = w.add_node(format!("rx{i}"));
        w.attach(n, seg).expect("attach");
        w.add_process(
            n,
            Box::new(FanoutReceiver {
                group: 1900,
                bytes: Rc::clone(&bytes),
            }),
        );
    }
    let tx = w.add_node("tx");
    w.attach(tx, seg).expect("attach");
    w.add_process(
        tx,
        Box::new(FanoutSender {
            group: 1900,
            sends,
            body: PAYLOAD_BODY,
        }),
    );
    simnet::payload::take_stats();
    let start = Instant::now();
    w.run_until_idle();
    let ns = start.elapsed().as_nanos();
    let delivered = *bytes.borrow();
    assert_eq!(delivered, (PAYLOAD_BODY * receivers * sends) as u64);
    FanoutRun {
        ns_per_send: ns as f64 / sends as f64,
        delivered_bytes: delivered,
        shared_bytes: w.trace().counter("payload.fanout_bytes_shared"),
        payload: PayloadStats {
            allocs: w.trace().counter("payload.allocs"),
            bytes_copied: w.trace().counter("payload.bytes_copied"),
            shared_clones: w.trace().counter("payload.shared_clones"),
        },
    }
}

struct BulkSink {
    received: Rc<RefCell<usize>>,
}
impl Process for BulkSink {
    fn name(&self) -> &str {
        "bulk-sink"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(80).expect("listen");
    }
    fn on_stream(&mut self, _ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
        if let StreamEvent::Data(d) = ev {
            *self.received.borrow_mut() += d.len();
        }
    }
}

struct BulkTx {
    target: Addr,
    total: usize,
    sent: usize,
    stream: Option<StreamId>,
}
impl BulkTx {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let stream = self.stream.expect("connected");
        while self.sent < self.total {
            let n = (self.total - self.sent).min(8192);
            match ctx.stream_send(stream, vec![0xC3; n]) {
                Ok(()) => self.sent += n,
                Err(_) => break,
            }
        }
        if self.sent >= self.total {
            ctx.stream_close(stream);
        }
    }
}
impl Process for BulkTx {
    fn name(&self) -> &str {
        "bulk-tx"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.stream = Some(ctx.connect(self.target).expect("connect"));
    }
    fn on_stream(&mut self, ctx: &mut Ctx<'_>, _s: StreamId, ev: StreamEvent) {
        match ev {
            StreamEvent::Connected | StreamEvent::Writable => self.pump(ctx),
            _ => {}
        }
    }
}

/// One-way bulk transfer of `total` bytes over the 10 Mbps hub with
/// `loss` frame loss (exercising retransmission buffers). Returns wall
/// nanoseconds per transferred KiB.
pub fn stream_bulk_transfer(total: usize, loss: f64) -> f64 {
    let mut w = World::new(99);
    w.trace_mut().set_log_enabled(false);
    let seg = w.add_segment(SegmentConfig::ethernet_10mbps_hub().with_loss(loss));
    let a = w.add_node("a");
    let b = w.add_node("b");
    w.attach(a, seg).expect("attach");
    w.attach(b, seg).expect("attach");
    let received = Rc::new(RefCell::new(0usize));
    w.add_process(
        b,
        Box::new(BulkSink {
            received: Rc::clone(&received),
        }),
    );
    w.add_process(
        a,
        Box::new(BulkTx {
            target: Addr::new(b, 80),
            total,
            sent: 0,
            stream: None,
        }),
    );
    let start = Instant::now();
    w.run_until(SimTime::from_secs(600));
    let ns = start.elapsed().as_nanos();
    assert_eq!(*received.borrow(), total);
    ns as f64 / (total as f64 / 1024.0)
}

// =====================================================================
// Scheduler micro-benches (timer wheel vs reference heap)
// =====================================================================

/// Result of one [`sched_kernel`] run.
#[derive(Debug, Clone, Copy)]
pub struct SchedKernelRun {
    /// Mean nanoseconds per pop+push cycle on the timer wheel.
    pub wheel_ns_per_op: f64,
    /// Mean nanoseconds per pop+push cycle on the reference min-heap.
    pub heap_ns_per_op: f64,
    /// Steady-state pending entries during the run.
    pub pending: usize,
    /// Pop+push cycles measured per structure.
    pub ops: usize,
}

/// Replays an identical synthetic simulator schedule through the
/// [`simnet::TimerWheel`] and the [`simnet::ReferenceHeap`] it
/// replaced, and reports the mean cost of one pop+push cycle.
///
/// The schedule mimics a busy federation: mostly near-future events
/// (frame arrivals, drain timers within ~65 µs), a slice of mid-range
/// timers, a tail of 30-second directory TTL re-announcements, and
/// same-tick bursts. Offsets are drawn once from a seeded RNG so both
/// structures see byte-identical input.
pub fn sched_kernel(pending: usize, ops: usize) -> SchedKernelRun {
    use simnet::{ReferenceHeap, SimRng, TimerWheel};

    let offsets: Vec<u64> = {
        let mut rng = SimRng::seed_from_u64(0x5eed_5c4e_d01e);
        (0..pending + ops)
            .map(|_| match rng.gen_range(0..10u32) {
                0 => 0,                                // same-tick burst
                1..=6 => rng.gen_range(1..1u64 << 16), // near window
                7 | 8 => rng.gen_range(1..1u64 << 24), // mid-range timer
                _ => 30_000_000_000,                   // directory TTL
            })
            .collect()
    };

    fn run<Q>(
        offsets: &[u64],
        pending: usize,
        ops: usize,
        mut push: impl FnMut(&mut Q, SimTime, u32),
        mut pop: impl FnMut(&mut Q) -> Option<(SimTime, u32)>,
        q: &mut Q,
    ) -> f64 {
        let mut now = 0u64;
        for (i, off) in offsets.iter().take(pending).enumerate() {
            push(q, SimTime::from_nanos(now + off), i as u32);
        }
        let start = Instant::now();
        for (i, off) in offsets.iter().skip(pending).enumerate() {
            let (t, id) = pop(q).expect("queue stays non-empty");
            black_box(id);
            now = t.as_nanos();
            push(q, SimTime::from_nanos(now + off), i as u32);
        }
        start.elapsed().as_nanos() as f64 / ops as f64
    }

    let mut wheel: TimerWheel<u32> = TimerWheel::new();
    let wheel_ns = run(
        &offsets,
        pending,
        ops,
        |q, t, id| q.push(t, id),
        |q| q.pop(),
        &mut wheel,
    );
    let mut heap: ReferenceHeap<u32> = ReferenceHeap::new();
    let heap_ns = run(
        &offsets,
        pending,
        ops,
        |q, t, id| q.push(t, id),
        |q| q.pop(),
        &mut heap,
    );
    SchedKernelRun {
        wheel_ns_per_op: wheel_ns,
        heap_ns_per_op: heap_ns,
        pending,
        ops,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs() {
        // Smoke: the harness terminates and doesn't panic on a fast fn.
        super::bench_function("noop_add", || 1u64.wrapping_add(2));
    }

    #[test]
    fn decode_copies_stay_linear() {
        let (small, large) = super::assert_decode_copies_linear(64);
        assert!(small > 0, "instrumentation must observe the decode");
        assert!(large > small);
    }

    #[test]
    fn fanout_shares_the_sent_buffer() {
        let run = super::multicast_fanout(8, 4);
        // 7 of 8 deliveries per send reuse the sender's buffer.
        assert_eq!(
            run.shared_bytes,
            (super::PAYLOAD_BODY * 7 * 4) as u64,
            "fan-out must share, not copy, the multicast buffer"
        );
    }
}
