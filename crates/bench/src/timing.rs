//! Minimal wall-clock micro-benchmark harness (criterion replacement,
//! dependency-free).
//!
//! Each benchmark is warmed up, then run in adaptively sized batches
//! until a fixed measurement budget elapses; the report prints the
//! best, median, and mean batch cost per iteration. Wall-clock numbers
//! are inherently noisy — the point is order-of-magnitude tracking of
//! the CPU-bound codecs, not statistical rigor.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-export so benches read like the criterion originals.
pub use std::hint::black_box as bb;

const WARMUP: Duration = Duration::from_millis(50);
const BUDGET: Duration = Duration::from_millis(250);

/// One measured sample: a batch of iterations and its total duration.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    elapsed: Duration,
}

impl Sample {
    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

/// Times `f` and prints a one-line report: `name  best/median/mean ns`.
pub fn bench_function<R, F: FnMut() -> R>(name: &str, mut f: F) {
    // Warm-up: run until the warm-up budget elapses, sizing the batch.
    let mut batch: u64 = 1;
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP {
        for _ in 0..batch {
            black_box(f());
        }
        batch = (batch * 2).min(1 << 20);
    }

    // Pick a batch size that takes roughly 5 ms so timer overhead is
    // amortized but we still collect tens of samples.
    let probe_start = Instant::now();
    for _ in 0..batch {
        black_box(f());
    }
    let probe = probe_start.elapsed().max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let scale = target.as_nanos() as f64 / probe.as_nanos() as f64;
    let batch = ((batch as f64 * scale).max(1.0) as u64).min(1 << 24);

    let mut samples: Vec<Sample> = Vec::new();
    let run_start = Instant::now();
    while run_start.elapsed() < BUDGET {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(Sample {
            iters: batch,
            elapsed: t.elapsed(),
        });
    }

    let mut per_iter: Vec<f64> = samples.iter().map(Sample::ns_per_iter).collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let best = per_iter.first().copied().unwrap_or(f64::NAN);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<32} best {:>12}  median {:>12}  mean {:>12}  ({} samples x {batch} iters)",
        fmt_ns(best),
        fmt_ns(median),
        fmt_ns(mean),
        samples.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs() {
        // Smoke: the harness terminates and doesn't panic on a fast fn.
        super::bench_function("noop_add", || 1u64.wrapping_add(2));
    }
}
